//! The paper's headline experiment: detect the watermark on both test-chip
//! models while they run the Dhrystone-like benchmark (Fig. 5).
//!
//! ```sh
//! cargo run --release --example dhrystone_detection           # reduced scale
//! cargo run --release --example dhrystone_detection -- --full # paper scale
//! ```
//!
//! `--full` uses the paper's parameters: 12-bit LFSR (4,095 rotations),
//! 300,000 cycles, full-noise measurement chain. The reduced default keeps
//! the same pipeline with a 10-bit LFSR, 60,000 cycles and a quieter probe
//! so it finishes in seconds even without optimisation.

use clockmark::prelude::*;

fn main() -> Result<(), clockmark::ClockmarkError> {
    let full = std::env::args().any(|a| a == "--full");

    let (architecture, chip_i, chip_ii) = if full {
        (
            ClockModulationWatermark::paper(),
            Experiment::paper_chip_i(),
            Experiment::paper_chip_ii(),
        )
    } else {
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 10, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let mut chip_i = Experiment::quick(60_000, 1);
        chip_i.phase_offset = 380; // scaled-down version of Fig. 5a's 3,800
        let mut chip_ii = chip_i.clone();
        chip_ii.chip = clockmark::ChipModel::ChipII;
        chip_ii.phase_offset = 240; // Fig. 5c's 2,400, scaled
        (arch, chip_i, chip_ii)
    };

    for (name, experiment) in [("chip I", chip_i), ("chip II", chip_ii)] {
        println!("==== {name}: watermark active ====");
        let active = experiment.run(&architecture)?;
        println!("{active}\n");

        println!("==== {name}: watermark inactive ====");
        let inactive = experiment.clone().disabled().run(&architecture)?;
        println!("{inactive}\n");

        assert!(active.detection.detected, "{name} active run must detect");
        assert!(
            !inactive.detection.detected,
            "{name} inactive run must not detect"
        );
    }
    println!("both chips: single clean peak when active, none when disabled — Fig. 5 reproduced");
    Ok(())
}
