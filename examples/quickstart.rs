//! Quickstart: embed the proposed clock-modulation watermark in a design,
//! run the measurement pipeline and detect it with CPA.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clockmark::prelude::*;

fn main() -> Result<(), clockmark::ClockmarkError> {
    // The watermark: an 8-bit maximal LFSR (period 255) gating a block of
    // 1,024 redundant registers in 32 clock-gated words — a scaled-down
    // version of the paper's test-chip circuit (which uses a 12-bit LFSR).
    let architecture = ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ..ClockModulationWatermark::paper()
    };

    // A quick experiment: 20,000 cycles on the chip-I model (Cortex-M0
    // class SoC running a Dhrystone-like workload) with a low-noise probe.
    let experiment = Experiment::quick(20_000, 42);

    println!("== watermark active ==");
    let outcome = experiment.run(&architecture)?;
    println!("{outcome}\n");

    println!("== watermark disabled (control) ==");
    let control = experiment.clone().disabled().run(&architecture)?;
    println!("{control}\n");

    assert!(outcome.detection.detected, "active watermark must be found");
    assert!(
        !control.detection.detected,
        "disabled watermark must not be"
    );

    // A slice of the spread spectrum around the peak, Fig. 5 style.
    let peak = outcome.detection.peak_rotation;
    println!("spread spectrum around the peak (rotation: rho):");
    for r in peak.saturating_sub(3)..=(peak + 3).min(outcome.spectrum.period() - 1) {
        let marker = if r == peak { "  <-- peak" } else { "" };
        println!("  {r:4}: {:+.5}{marker}", outcome.spectrum.rho()[r]);
    }
    Ok(())
}
