//! Compare watermark sequence generators: maximal LFSRs of several widths,
//! a circular shift register, and a Gold code — their statistics and their
//! end-to-end detection margins.
//!
//! The paper fixes a 12-bit maximal LFSR; this example is the ablation
//! behind that choice: m-sequences buy a flat −1 autocorrelation floor,
//! circular patterns buy duty-cycle control at the cost of spectrum
//! ambiguity.
//!
//! ```sh
//! cargo run --release --example sequence_zoo
//! ```

use clockmark::prelude::*;
use clockmark_seq::{linear_complexity, BitSequence, GoldCode, Lfsr, SequenceGenerator};

fn describe(name: &str, generator: &mut dyn SequenceGenerator, period: usize) {
    generator.reset();
    let seq = BitSequence::from_generator(&mut *generator, period);
    let worst_sidelobe = (1..period)
        .map(|s| seq.periodic_autocorrelation(s).abs())
        .max()
        .unwrap_or(0);
    generator.reset();
    // Bits an eavesdropper needs to clone the generator (Berlekamp–Massey
    // recovers an L-complexity sequence from 2L observed bits).
    let forging_bits = 2 * linear_complexity(&mut *generator, period.min(512));
    println!(
        "{name:<28} period {period:>5}  duty {:>5.3}  worst |autocorr| {worst_sidelobe:>4} ({:.3} of peak)  forgeable after {forging_bits:>4} bits",
        seq.duty_cycle(),
        worst_sidelobe as f64 / period as f64,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== sequence statistics ==");
    for width in [6u32, 8, 10, 12] {
        let mut lfsr = Lfsr::maximal(width)?;
        let period = (1usize << width) - 1;
        describe(&format!("maximal LFSR, {width}-bit"), &mut lfsr, period);
    }
    let mut gold = GoldCode::preferred(9, 1, 5)?;
    describe("Gold code, 9-bit pair", &mut gold, 511);
    let pattern: Vec<bool> = (0..32).map(|i| i % 4 == 0).collect();
    let mut csr = clockmark_seq::CircularShiftRegister::new(&pattern)?;
    describe("circular 32-bit, duty 1/4", &mut csr, 32);

    println!("\n== end-to-end detection margin (same block, same noise) ==");
    let configs: Vec<(&str, WgcConfig)> = vec![
        (
            "maximal LFSR, 6-bit",
            WgcConfig::MaxLengthLfsr { width: 6, seed: 1 },
        ),
        (
            "maximal LFSR, 8-bit",
            WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ),
        (
            "maximal LFSR, 10-bit",
            WgcConfig::MaxLengthLfsr { width: 10, seed: 1 },
        ),
        (
            "circular 32-bit, duty 1/2",
            WgcConfig::CircularShift {
                pattern: (0..32).map(|i| i % 2 == 0).collect(),
            },
        ),
    ];
    for (name, wgc) in configs {
        let arch = ClockModulationWatermark {
            wgc,
            ..ClockModulationWatermark::paper()
        };
        let outcome = Experiment::quick(20_000, 9).run(&arch)?;
        println!(
            "{name:<28} peak rho {:+.4}  z {:>6.1}  ratio {:>5.2}  detected: {}",
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.ratio,
            outcome.detection.detected,
        );
    }
    println!(
        "\nnote the circular pattern: strong rho but an ambiguous spectrum — its \
         autocorrelation sidelobes produce secondary peaks, which is why the paper \
         uses a maximal-length sequence"
    );
    Ok(())
}
