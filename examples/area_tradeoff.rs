//! The area/power trade-off of Section V: what the load circuit costs at
//! each target power level, and what the proposed technique saves
//! (Tables I and II).
//!
//! ```sh
//! cargo run --release --example area_tradeoff
//! ```

use clockmark::overhead::{area_reduction_pct, equal_power_comparison, AreaReport};
use clockmark::prelude::*;
use clockmark_power::tables::TableModel;
use clockmark_power::{EnergyLibrary, Frequency, Power, PowerModel};

fn main() {
    let table_model = TableModel::paper();
    let power_model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));

    println!("== Table I: power of the clock-gated 1,024-register block ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "switching", "dynamic", "static", "total", "share"
    );
    for row in table_model.table1() {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>7.1}%",
            row.switching_registers, row.dynamic, row.static_power, row.total, row.load_share_pct
        );
    }

    println!("\n== Table II: load-circuit cost per target power ==");
    println!("{:>10} {:>10} {:>12}", "P_load", "registers", "area saved");
    for row in table_model.table2() {
        println!(
            "{:>10} {:>10} {:>11.1}%",
            row.p_load, row.registers_needed, row.area_reduction_pct
        );
    }

    println!("\n== equal-power architecture comparison ==");
    let targets: Vec<Power> = [0.25, 0.5, 1.0, 1.5, 5.0, 10.0]
        .into_iter()
        .map(Power::from_milliwatts)
        .collect();
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "P_load", "baseline (regs)", "proposed (regs)", "saved"
    );
    for row in equal_power_comparison(&table_model, &targets) {
        println!(
            "{:>10} {:>18} {:>18} {:>9.1}%",
            row.p_load, row.baseline_registers, row.proposed_registers, row.reduction_pct
        );
    }

    println!("\n== the paper's headline comparison ==");
    let baseline = LoadCircuitWatermark::paper_equivalent();
    let proposed = ClockModulationWatermark::paper();
    let baseline_report = AreaReport::for_architecture(&baseline, &power_model);
    println!(
        "baseline  : {} — {} + {} registers, amplitude {}",
        baseline.name(),
        baseline_report.wgc_registers,
        baseline_report.dedicated_registers,
        baseline_report.signal_amplitude,
    );
    println!(
        "proposed  : {} — {} registers (reusing existing logic), amplitude {}",
        proposed.name(),
        proposed.wgc_registers(),
        proposed.signal_amplitude(&power_model),
    );
    println!(
        "area overhead reduction: {:.1} % (paper: 98 %)",
        area_reduction_pct(&baseline_report, 0)
    );

    println!("\n== in silicon terms (typical 65 nm LP footprints) ==");
    let cell_lib = clockmark_netlist::CellAreaLibrary::tsmc65_typical();
    {
        let mut netlist = clockmark_netlist::Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let wm = LoadCircuitWatermark::paper_equivalent()
            .embed(&mut netlist, clk.into())
            .expect("embeds");
        let area = netlist.group_area(wm.group, &cell_lib);
        println!("  baseline load circuit        : {area}");
    }
    {
        let mut netlist = clockmark_netlist::Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let wm = ClockModulationWatermark::paper()
            .embed(&mut netlist, clk.into())
            .expect("embeds");
        let area = netlist.group_area(wm.group, &cell_lib);
        println!("  proposed (redundant block)   : {area}");
    }
    println!(
        "  proposed (reusing IP logic)  : {:.1} um2 (12 WGC registers only)",
        12.0 * cell_lib.register_um2
    );
}
