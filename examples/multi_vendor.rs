//! Multi-vendor watermarking with Gold codes: two IP vendors watermark
//! their blocks on one die; each detector resolves only its own sequence.
//!
//! This is the natural extension of the paper's technique for the SoC
//! reality it motivates — chips integrating IP from several suppliers, all
//! of whom want to audit finished silicon independently.
//!
//! ```sh
//! cargo run --release --example multi_vendor
//! ```

use clockmark::prelude::*;
use clockmark_netlist::Netlist;
use clockmark_power::PowerModel;
use clockmark_sim::{CycleSim, SignalDriver};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three members of the 9-bit Gold family (period 511): A and B are
    // embedded, C is a vendor whose IP is NOT on this die.
    let vendor_a = WgcConfig::Gold {
        width: 9,
        seed_a: 1,
        seed_b: 5,
    };
    let vendor_b = WgcConfig::Gold {
        width: 9,
        seed_a: 1,
        seed_b: 200,
    };
    let vendor_c = WgcConfig::Gold {
        width: 9,
        seed_a: 1,
        seed_b: 77,
    };

    // One die, two watermarked blocks.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch_a = ClockModulationWatermark {
        wgc: vendor_a.clone(),
        ..ClockModulationWatermark::paper()
    };
    let arch_b = ClockModulationWatermark {
        wgc: vendor_b.clone(),
        ..ClockModulationWatermark::paper()
    };
    let wm_a = arch_a.embed(&mut netlist, clk.into())?;
    let wm_b = arch_b.embed(&mut netlist, clk.into())?;
    println!(
        "die carries {} registers of watermark A and {} of watermark B (WGCs: {} + {})",
        wm_a.body_cells.len(),
        wm_b.body_cells.len(),
        wm_a.wgc_cells.len(),
        wm_b.wgc_cells.len()
    );

    // One shared measurement of the whole die.
    let experiment = Experiment::quick(25_000, 77);
    let mut sim = CycleSim::new(&netlist)?;
    sim.drive(wm_a.enable, SignalDriver::Constant(true))?;
    sim.drive(wm_b.enable, SignalDriver::Constant(true))?;
    for _ in 0..experiment.phase_offset {
        sim.step();
    }
    let activity = sim.run(experiment.cycles)?;
    let model = PowerModel::new(experiment.library, experiment.f_clk);
    let mut power = model.trace(&activity);
    power.add_offset(model.static_power(netlist.register_count()));
    let mut rng = rand::rngs::StdRng::seed_from_u64(experiment.seed);
    let mut soc = clockmark_soc::Soc::chip_i()?;
    let background = soc.run(experiment.cycles, &mut rng)?;
    let total = power.checked_add(&background)?;
    let y = experiment.acquisition.acquire(&total, &mut rng);

    // Each vendor correlates against their own family member.
    for (name, config, embedded) in [
        ("vendor A", &vendor_a, true),
        ("vendor B", &vendor_b, true),
        ("vendor C (not on die)", &vendor_c, false),
    ] {
        let pattern = config.expected_pattern()?;
        let result = Detector::new(&pattern)?.detect(y.as_watts())?;
        println!("{name:<22} {result}");
        assert_eq!(result.detected, embedded, "{name} detection mismatch");
    }
    println!(
        "\neach embedded vendor resolves a single clean peak; the absent vendor sees only floor"
    );
    Ok(())
}
