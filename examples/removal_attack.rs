//! The Section VI robustness argument, executed: attempt a structural
//! removal attack against three embeddings and report what breaks.
//!
//! ```sh
//! cargo run --release --example removal_attack
//! ```

use clockmark::prelude::*;
use clockmark::{removal_attack, FunctionalBlock};
use clockmark_netlist::{DataSource, GroupId, Netlist, RegisterConfig};

fn wgc() -> WgcConfig {
    WgcConfig::MaxLengthLfsr { width: 12, seed: 1 }
}

/// Some unrelated system logic so the attack report has context.
fn add_system_logic(netlist: &mut Netlist, clk: clockmark_netlist::ClockRootId, n: u32) {
    for _ in 0..n {
        netlist
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Toggle),
            )
            .expect("system register");
    }
}

fn main() -> Result<(), clockmark::ClockmarkError> {
    // Scenario 1: the state-of-the-art load circuit. Highly visible in the
    // RTL (hundreds of registers doing nothing functional) and stand-alone.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let baseline = LoadCircuitWatermark {
        wgc: wgc(),
        ..LoadCircuitWatermark::paper_equivalent()
    };
    let wm = baseline.embed(&mut netlist, clk.into())?;
    let report = removal_attack(&netlist, &wm)?;
    println!("1. {}:\n   {report}\n", baseline.name());

    // Scenario 2: the test chips' redundant clock-gated block. Cheap, but
    // still a stand-alone circuit — the paper acknowledges this and points
    // to scenario 3 for production.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let redundant = ClockModulationWatermark {
        wgc: wgc(),
        ..ClockModulationWatermark::paper()
    };
    let wm = redundant.embed(&mut netlist, clk.into())?;
    let report = removal_attack(&netlist, &wm)?;
    println!("2. {} (redundant block):\n   {report}\n", redundant.name());

    // Scenario 3: the production deployment — the WGC modulates the clock
    // gates of a real IP sub-module. Removing the 12 WGC registers
    // de-clocks the whole block.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let block = FunctionalBlock::synthesize(&mut netlist, "dsp", clk.into(), 32, 32)?;
    let wm = redundant.embed_reusing(&mut netlist, clk.into(), &block)?;
    let report = removal_attack(&netlist, &wm)?;
    println!(
        "3. {} (reusing the dsp block's clock gates):\n   {report}\n",
        redundant.name()
    );
    println!(
        "scenario 3 adds only {} registers and cannot be removed without breaking \
         {:.0} % of the dsp block — the robustness claim of Section VI",
        wm.wgc_cells.len(),
        report.impact_fraction() * 100.0
    );
    Ok(())
}
