//! Early-stopping detection with the streaming CPA detector: instead of
//! the paper's fixed 300,000 cycles, stop as soon as a single significant
//! peak resolves — and see how the required trace length moves with the
//! watermark's amplitude.
//!
//! ```sh
//! cargo run --release --example early_stopping
//! ```

use clockmark::prelude::*;
use clockmark_measure::Acquisition;
use clockmark_netlist::Netlist;
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
use clockmark_sim::{CycleSim, SignalDriver};
use clockmark_soc::Soc;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_CYCLES: usize = 120_000;
const CHUNK: usize = 1_000;

fn cycles_to_detect(words: u32, seed: u64) -> Result<Option<u64>, Box<dyn std::error::Error>> {
    let arch = ClockModulationWatermark {
        words,
        regs_per_word: 32,
        switching_registers: 0,
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
    };

    // Build and prime the simulation.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let wm = arch.embed(&mut netlist, clk.into())?;
    let mut sim = CycleSim::new(&netlist)?;
    sim.drive(wm.enable, SignalDriver::Constant(true))?;

    let f_clk = Frequency::from_megahertz(10.0);
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), f_clk);
    let mut chain = Acquisition::paper_chain(f_clk);
    chain.scope = chain.scope.with_vertical_noise(15e-3);
    let mut soc = Soc::chip_i()?;
    let mut rng = StdRng::seed_from_u64(seed);

    // Stream chunks of measured cycles into a detection session.
    let mut session = Detector::new(&wm.pattern)?.detect_streaming();
    while session.cycles() < MAX_CYCLES as u64 {
        let activity = sim.run(CHUNK)?;
        let mut power = model.trace(&activity);
        power.add_offset(model.static_power(netlist.register_count()));
        let background = soc.run(CHUNK, &mut rng)?;
        let total = power.checked_add(&background)?;
        let measured = chain.acquire(&total, &mut rng);
        session.push_chunk(measured.as_watts());
        if session.result().detected {
            return Ok(Some(session.cycles()));
        }
    }
    Ok(None)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    println!("early-stopping detection (streaming CPA, chip-I background, quiet probe)\n");
    println!(
        "{:>10} {:>12} {:>18}",
        "registers", "amplitude", "cycles to detect"
    );
    for words in [4u32, 8, 16, 32, 64] {
        let arch = ClockModulationWatermark {
            words,
            regs_per_word: 32,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        };
        let amplitude = arch.signal_amplitude(&model);
        let cycles = cycles_to_detect(words, 7 + words as u64)?;
        match cycles {
            Some(n) => println!("{:>10} {:>12} {:>18}", words * 32, amplitude.to_string(), n),
            None => println!(
                "{:>10} {:>12} {:>18}",
                words * 32,
                amplitude.to_string(),
                format!("> {MAX_CYCLES}")
            ),
        }
    }
    println!(
        "\ndetection cost scales ~1/amplitude^2 (the correlation z-score grows with \
         amplitude · sqrt(N)); the paper's fixed 300,000 cycles covers its 1.5 mW \
         watermark with generous margin on the noisier real measurement chain"
    );
    Ok(())
}
