//! Cross-crate integration tests: the full embed → simulate → digitise →
//! correlate pipeline, at reduced scale (see `Experiment::quick`), on both
//! chip models.

use clockmark::{ChipModel, ClockModulationWatermark, Experiment, WgcConfig};
use clockmark_cpa::{DetectionCriterion, RotationEnsemble};

fn small_arch() -> ClockModulationWatermark {
    ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ..ClockModulationWatermark::paper()
    }
}

#[test]
fn chip_i_active_watermark_is_detected_at_the_trigger_phase() {
    let experiment = Experiment::quick(15_000, 100);
    let outcome = experiment.run(&small_arch()).expect("pipeline runs");
    assert!(outcome.detection.detected, "{outcome}");
    assert_eq!(
        outcome.detection.peak_rotation,
        outcome.expected_peak_rotation
    );
    // The peak is positive and well clear of the floor.
    assert!(outcome.detection.peak_rho > 0.0);
    assert!(outcome.detection.zscore > 5.0);
}

#[test]
fn chip_i_inactive_watermark_is_not_detected() {
    let experiment = Experiment::quick(15_000, 101).disabled();
    let outcome = experiment.run(&small_arch()).expect("pipeline runs");
    assert!(!outcome.detection.detected, "{outcome}");
    // Fig. 5b: the whole spectrum sits in a narrow band around zero.
    assert!(outcome.detection.peak_rho < 0.05);
}

#[test]
fn chip_ii_detects_despite_heavier_background() {
    let mut experiment = Experiment::quick(15_000, 102);
    experiment.chip = ChipModel::ChipII;
    let outcome = experiment.run(&small_arch()).expect("pipeline runs");
    assert!(outcome.detection.detected, "{outcome}");
    // Chip II's background is much larger than chip I's…
    assert!(outcome.background_mean.milliwatts() > 5.0);

    let mut control = experiment.clone().disabled();
    control.seed = 103;
    let control = control.run(&small_arch()).expect("pipeline runs");
    assert!(!control.detection.detected, "{control}");
}

#[test]
fn repeated_runs_all_detect_like_fig6() {
    // A miniature Fig. 6: several seeds, ensemble statistics, every run
    // resolves the peak at the same rotation.
    let mut ensemble = RotationEnsemble::new(255);
    let mut peak_rotations = Vec::new();
    for seed in 0..6u64 {
        let outcome = Experiment::quick(12_000, 200 + seed)
            .run(&small_arch())
            .expect("pipeline runs");
        peak_rotations.push(outcome.detection.peak_rotation);
        ensemble.add(&outcome.spectrum).expect("same period");
    }
    assert_eq!(ensemble.detection_count(&DetectionCriterion::default()), 6);
    assert!(peak_rotations.windows(2).all(|w| w[0] == w[1]));

    let (peak_rot, peak_stats) = ensemble.peak_rotation().expect("has runs");
    assert_eq!(peak_rot, peak_rotations[0]);
    let floor = ensemble.floor_stats().expect("has runs");
    assert!(
        peak_stats.min > floor.q_high,
        "worst peak {} must clear the floor's 97.5th percentile {}",
        peak_stats.min,
        floor.q_high
    );
    assert!(floor.median.abs() < 0.01, "floor median near zero");
}

#[test]
fn detection_is_workload_agnostic() {
    // The paper detects while Dhrystone runs; the detector must not care
    // what the processor happens to execute.
    for workload in [
        clockmark_soc::Workload::Dhrystone,
        clockmark_soc::Workload::Crc32,
    ] {
        let mut experiment = Experiment::quick(15_000, 104);
        experiment.chip = ChipModel::ChipIWith(workload);
        let outcome = experiment.run(&small_arch()).expect("pipeline runs");
        assert!(outcome.detection.detected, "{workload:?}: {outcome}");
    }
}

#[test]
fn longer_traces_strengthen_detection() {
    // The √N law behind the paper's choice of 300,000 cycles.
    let short = Experiment::quick(6_000, 300)
        .run(&small_arch())
        .expect("runs");
    let long = Experiment::quick(24_000, 300)
        .run(&small_arch())
        .expect("runs");
    assert!(
        long.detection.zscore > short.detection.zscore,
        "z {} (24k) vs {} (6k)",
        long.detection.zscore,
        short.detection.zscore
    );
}

#[test]
fn watermark_is_a_small_fraction_of_total_power() {
    // Fig. 3: the watermark is deeply embedded in the device total.
    let outcome = Experiment::quick(10_000, 400)
        .run(&small_arch())
        .expect("runs");
    let fraction = outcome.watermark_mean / outcome.total_mean;
    assert!(fraction < 0.5, "watermark fraction {fraction}");
    assert!(outcome.watermark_mean.watts() > 0.0);
}
