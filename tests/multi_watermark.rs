//! Multi-vendor watermark coexistence — the Gold-code extension.
//!
//! Two IP vendors watermark their blocks on the same die with members of
//! one Gold family. The bounded cross-correlation of Gold codes lets each
//! vendor's detector resolve its own peak against the other's watermark,
//! while a non-embedded family member finds nothing.

use clockmark::prelude::*;
use clockmark_netlist::Netlist;
use clockmark_power::PowerModel;
use clockmark_sim::{CycleSim, SignalDriver};

const WIDTH: u32 = 9; // Gold family of period 511

fn vendor_a() -> WgcConfig {
    WgcConfig::Gold {
        width: WIDTH,
        seed_a: 1,
        seed_b: 5,
    }
}

fn vendor_b() -> WgcConfig {
    WgcConfig::Gold {
        width: WIDTH,
        seed_a: 1,
        seed_b: 200,
    }
}

fn vendor_c_not_embedded() -> WgcConfig {
    WgcConfig::Gold {
        width: WIDTH,
        seed_a: 1,
        seed_b: 77,
    }
}

/// Builds a die carrying both vendors' watermarks and returns the measured
/// trace.
fn measure_two_vendor_die(cycles: usize, seed: u64) -> Vec<f64> {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");

    let arch_a = ClockModulationWatermark {
        wgc: vendor_a(),
        ..ClockModulationWatermark::paper()
    };
    let arch_b = ClockModulationWatermark {
        wgc: vendor_b(),
        ..ClockModulationWatermark::paper()
    };
    let wm_a = arch_a.embed(&mut netlist, clk.into()).expect("embeds A");
    let wm_b = arch_b.embed(&mut netlist, clk.into()).expect("embeds B");

    // Both detectors must analyse the SAME measured trace, so acquire Y
    // once by hand (the Experiment pipeline returns only its own
    // spectrum).
    let experiment = Experiment::quick(cycles, seed);
    let mut sim = CycleSim::new(&netlist).expect("valid");
    sim.drive(wm_a.enable, SignalDriver::Constant(true))
        .expect("external");
    sim.drive(wm_b.enable, SignalDriver::Constant(true))
        .expect("external");
    for _ in 0..experiment.phase_offset {
        sim.step();
    }
    let activity = sim.run(cycles).expect("runs");
    let model = PowerModel::new(experiment.library, experiment.f_clk);
    let mut power = model.trace(&activity);
    power.add_offset(model.static_power(netlist.register_count()));

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let mut soc = clockmark_soc::Soc::chip_i().expect("builds");
    let background = soc.run(cycles, &mut rng).expect("runs");
    let total = power.checked_add(&background).expect("lengths match");
    experiment
        .acquisition
        .acquire(&total, &mut rng)
        .as_watts()
        .to_vec()
}

#[test]
fn each_vendor_resolves_its_own_watermark() {
    let y = measure_two_vendor_die(25_000, 900);

    let pattern_a = vendor_a().expected_pattern().expect("valid");
    let result_a = Detector::new(&pattern_a)
        .expect("valid")
        .detect(&y)
        .expect("valid");
    assert!(result_a.detected, "vendor A: {result_a}");

    let pattern_b = vendor_b().expected_pattern().expect("valid");
    let result_b = Detector::new(&pattern_b)
        .expect("valid")
        .detect(&y)
        .expect("valid");
    assert!(result_b.detected, "vendor B: {result_b}");
}

#[test]
fn non_embedded_family_member_finds_nothing() {
    let y = measure_two_vendor_die(25_000, 901);
    let pattern_c = vendor_c_not_embedded().expected_pattern().expect("valid");
    let result_c = Detector::new(&pattern_c)
        .expect("valid")
        .detect(&y)
        .expect("valid");
    assert!(
        !result_c.detected,
        "vendor C must not see a watermark: {result_c}"
    );
}

#[test]
fn gold_cross_correlation_keeps_peaks_separable() {
    // The structural property behind the experiment: the two embedded
    // sequences' cyclic cross-correlation is bounded by the Gold bound
    // t(9) = 2^5 + 1 = 33 out of 511.
    let a = vendor_a().expected_pattern().expect("valid");
    let b = vendor_b().expected_pattern().expect("valid");
    let p = a.len();
    let bound = 33i64;
    for shift in 0..p {
        let mut acc = 0i64;
        for i in 0..p {
            let x = if a[i] { 1i64 } else { -1 };
            let y = if b[(i + shift) % p] { 1i64 } else { -1 };
            acc += x * y;
        }
        assert!(
            acc.abs() <= bound,
            "cross-correlation {acc} at shift {shift} exceeds the Gold bound {bound}"
        );
    }
}
