//! Table I and Table II reproduced two independent ways: the analytic
//! roll-up in `clockmark_power::tables` and the cycle-accurate simulator.
//! The two must agree, which cross-checks the simulator's activity
//! accounting against the paper's published constants.

use clockmark::{ClockModulationWatermark, WatermarkArchitecture, WgcConfig};
use clockmark_netlist::Netlist;
use clockmark_power::tables::TableModel;
use clockmark_power::{EnergyLibrary, Frequency, Power, PowerModel};
use clockmark_sim::{CycleSim, SignalDriver};

/// Simulates the gated block with `WMARK` pinned high and measures the
/// per-cycle dynamic power of the watermark body (excluding the WGC).
fn simulated_active_power(switching: u32) -> Power {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        switching_registers: switching,
        // A constant-1 "sequence" so the block is always gated on: one-bit
        // circular pattern.
        wgc: WgcConfig::CircularShift {
            pattern: vec![true],
        },
        ..ClockModulationWatermark::paper()
    };
    let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
    let mut sim = CycleSim::new(&netlist).expect("valid");
    sim.drive(wm.enable, SignalDriver::Constant(true))
        .expect("external");

    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    // Skip the first cycle (Toggle registers switching out of reset) and
    // average a steady window.
    sim.step();
    let activity = sim.run(8).expect("runs");
    let trace = model.group_trace(&activity, wm.group);
    // Subtract the WGC's own contribution (1 always-on register with
    // constant data → clock power only).
    let wgc_power = model.library().reg_clock_power(model.clock_frequency());
    Power::from_watts(trace.mean().watts()) - wgc_power
}

#[test]
fn simulated_table1_matches_the_analytic_model() {
    let table = TableModel::paper();
    for switching in [0u32, 256, 512, 1024] {
        let analytic = table.load_dynamic(switching);
        let simulated = simulated_active_power(switching);
        assert!(
            (simulated.watts() - analytic.watts()).abs() / analytic.watts() < 1e-9,
            "{switching} switching: simulated {simulated} vs analytic {analytic}"
        );
    }
}

#[test]
fn simulated_table1_matches_the_paper_column() {
    let expected_mw = [(0u32, 1.51), (256, 1.80), (512, 2.09), (1024, 2.66)];
    for (switching, mw) in expected_mw {
        let simulated = simulated_active_power(switching);
        assert!(
            (simulated.milliwatts() - mw).abs() < 0.01,
            "{switching} switching: simulated {simulated}, paper {mw} mW"
        );
    }
}

#[test]
fn gated_block_simulates_to_zero_power_when_wmark_low() {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        wgc: WgcConfig::CircularShift {
            pattern: vec![true],
        },
        ..ClockModulationWatermark::paper()
    };
    let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
    let mut sim = CycleSim::new(&netlist).expect("valid");
    // Watermark disabled → enable low → block never clocks.
    sim.drive(wm.enable, SignalDriver::Constant(false))
        .expect("external");
    let activity = sim.run(10).expect("runs");
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let trace = model.group_trace(&activity, wm.group);
    // Only the single WGC register's clock power remains.
    let wgc_only = model.library().reg_clock_power(model.clock_frequency());
    assert!(
        (trace.mean().watts() - wgc_only.watts()).abs() < 1e-12,
        "got {}, expected bare WGC {}",
        trace.mean(),
        wgc_only
    );
}

#[test]
fn table2_register_counts_are_exact() {
    let rows = TableModel::paper().table2();
    let expected: [(f64, u64, f64); 6] = [
        (0.25, 96, 88.9),
        (0.5, 192, 94.1),
        (1.0, 384, 96.9),
        (1.5, 576, 98.0),
        (5.0, 1921, 99.4),
        (10.0, 3843, 99.7),
    ];
    for (row, (mw, regs, pct)) in rows.iter().zip(expected) {
        assert!((row.p_load.milliwatts() - mw).abs() < 1e-12);
        assert_eq!(row.registers_needed, regs, "at {mw} mW");
        assert!(
            (row.area_reduction_pct - pct).abs() < 0.1,
            "at {mw} mW: {}",
            row.area_reduction_pct
        );
    }
}

#[test]
fn architecture_amplitude_agrees_with_table_model() {
    // The architecture's signal_amplitude and the table model's
    // load_dynamic are two paths to the same number.
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let table = TableModel::paper();
    for switching in [0u32, 256, 512, 1024] {
        let arch = ClockModulationWatermark {
            switching_registers: switching,
            ..ClockModulationWatermark::paper()
        };
        let a = arch.signal_amplitude(&model);
        let b = table.load_dynamic(switching);
        assert!(
            (a.watts() - b.watts()).abs() < 1e-15,
            "{switching}: {a} vs {b}"
        );
    }
}
