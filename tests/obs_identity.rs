//! Property test: observability must be a pure observer. Running the
//! pipeline with a recorder installed has to produce outcomes that are
//! bit-for-bit identical to the disabled path — spans and metrics may
//! time and count, but never perturb a single f64.
//!
//! The global recorder cannot be uninstalled once resolved, so the
//! disabled baseline is taken under [`clockmark_obs::suppressed`] (the
//! per-thread escape hatch that exists for exactly this test) and the
//! recorded run uses a process-global recorder writing into memory.
//! Quick-scale experiments stay under the CPA parallel-work threshold,
//! so the whole pipeline runs on this thread and suppression covers it.

use clockmark::{ClockModulationWatermark, Experiment, WgcConfig};
use clockmark_obs::{JsonLinesExporter, Recorder, SharedBuffer};
use proptest::prelude::*;
use std::sync::OnceLock;

fn small_arch() -> ClockModulationWatermark {
    ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ..ClockModulationWatermark::paper()
    }
}

/// Installs an in-memory recorder once for the whole test process and
/// reports whether this process's global really is ours (it is not if
/// the environment pre-configured one first).
fn test_recorder() -> &'static (SharedBuffer, bool) {
    static RECORDER: OnceLock<(SharedBuffer, bool)> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let buffer = SharedBuffer::new();
        let installed = clockmark_obs::install(Recorder::new(vec![Box::new(
            JsonLinesExporter::new(buffer.clone()),
        )]));
        (buffer, installed)
    })
}

fn assert_outcomes_bit_identical(
    a: &clockmark::ExperimentOutcome,
    b: &clockmark::ExperimentOutcome,
) {
    assert_eq!(a.detection.detected, b.detection.detected);
    assert_eq!(a.detection.peak_rotation, b.detection.peak_rotation);
    assert_eq!(
        a.detection.peak_rho.to_bits(),
        b.detection.peak_rho.to_bits()
    );
    assert_eq!(a.detection.zscore.to_bits(), b.detection.zscore.to_bits());
    assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
    assert_eq!(a.spectrum.period(), b.spectrum.period());
    for (x, y) in a.spectrum.rho().iter().zip(b.spectrum.rho()) {
        assert_eq!(x.to_bits(), y.to_bits(), "spectrum diverged: {x} vs {y}");
    }
    assert_eq!(
        a.watermark_mean.watts().to_bits(),
        b.watermark_mean.watts().to_bits()
    );
    assert_eq!(
        a.background_mean.watts().to_bits(),
        b.background_mean.watts().to_bits()
    );
    assert_eq!(
        a.total_mean.watts().to_bits(),
        b.total_mean.watts().to_bits()
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.expected_peak_rotation, b.expected_peak_rotation);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn instrumentation_never_changes_an_outcome(
        seed in 0u64..10_000,
        phase in 0usize..255,
        cycles in 4_000usize..8_000,
    ) {
        let arch = small_arch();
        let mut experiment = Experiment::quick(cycles, seed);
        experiment.phase_offset = phase;

        let baseline = clockmark_obs::suppressed(|| experiment.run(&arch))
            .expect("baseline runs");

        let (buffer, installed) = test_recorder();
        let recorded = experiment.run(&arch).expect("recorded run runs");

        assert_outcomes_bit_identical(&baseline, &recorded);
        if *installed {
            // The recorded run really was recorded — this test must not
            // silently compare disabled-vs-disabled.
            let contents = buffer.contents();
            prop_assert!(
                contents.contains("\"name\":\"experiment.run\""),
                "recorder captured no pipeline spans"
            );
        }
    }
}

#[test]
fn disabled_and_recorded_batches_match_too() {
    let arch = small_arch();
    let base = Experiment::quick(5_000, 7);

    let baseline = clockmark_obs::suppressed(|| {
        clockmark::ExperimentBatch::repeat_with_seeds(&base, 0..4)
            .with_threads(1)
            .run(&arch)
    })
    .expect("baseline batch runs");

    let _ = test_recorder();
    let recorded = clockmark::ExperimentBatch::repeat_with_seeds(&base, 0..4)
        .with_threads(2)
        .run(&arch)
        .expect("recorded batch runs");

    assert_eq!(baseline.len(), recorded.len());
    for (a, b) in baseline.iter().zip(&recorded) {
        assert_outcomes_bit_identical(a, b);
    }
}
