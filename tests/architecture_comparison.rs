//! Integration comparison of the two watermark architectures at equal
//! power and at equal register count — the quantitative core of the
//! paper's argument.

use clockmark::{
    ClockModulationWatermark, Experiment, LoadCircuitWatermark, WatermarkArchitecture, WgcConfig,
};
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};

fn wgc() -> WgcConfig {
    WgcConfig::MaxLengthLfsr { width: 8, seed: 1 }
}

fn model() -> PowerModel {
    PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0))
}

#[test]
fn equal_power_architectures_detect_equally_well() {
    // 576 gated load registers ≈ 1,024 clock-modulated registers in
    // amplitude (Table II's equivalence); their detection statistics
    // should be comparable.
    let load = LoadCircuitWatermark {
        load_registers: 576,
        regs_per_gate: 32,
        clock_gated: true,
        wgc: wgc(),
    };
    let proposed = ClockModulationWatermark {
        wgc: wgc(),
        ..ClockModulationWatermark::paper()
    };

    let m = model();
    let amp_ratio = load.signal_amplitude(&m) / proposed.signal_amplitude(&m);
    assert!(
        (amp_ratio - 1.0).abs() < 0.02,
        "amplitude ratio {amp_ratio}"
    );

    let experiment = Experiment::quick(15_000, 500);
    let load_outcome = experiment.run(&load).expect("runs");
    let proposed_outcome = experiment.run(&proposed).expect("runs");
    assert!(load_outcome.detection.detected);
    assert!(proposed_outcome.detection.detected);
    let rho_ratio = load_outcome.detection.peak_rho / proposed_outcome.detection.peak_rho;
    assert!(
        (0.8..1.25).contains(&rho_ratio),
        "peak rho ratio {rho_ratio} (load {}, proposed {})",
        load_outcome.detection.peak_rho,
        proposed_outcome.detection.peak_rho
    );
}

#[test]
fn per_register_clock_modulation_beats_data_switching() {
    // The core physical claim: at the SAME register count, gating clocks
    // (1.476 µW/reg) yields a stronger signal than an ungated load circuit
    // switching data (1.126 µW/reg).
    let n = 1024;
    let clock_mod = ClockModulationWatermark {
        words: 32,
        regs_per_word: 32,
        switching_registers: 0,
        wgc: wgc(),
    };
    let ungated_load = LoadCircuitWatermark {
        load_registers: n,
        regs_per_gate: 32,
        clock_gated: false,
        wgc: wgc(),
    };
    let m = model();
    let ratio = clock_mod.signal_amplitude(&m) / ungated_load.signal_amplitude(&m);
    assert!(
        (ratio - 1.476 / 1.126).abs() < 0.01,
        "per-register advantage {ratio} should equal the energy ratio"
    );

    let experiment = Experiment::quick(15_000, 501);
    let cm = experiment.run(&clock_mod).expect("runs");
    let lc = experiment.run(&ungated_load).expect("runs");
    assert!(
        cm.detection.peak_rho > lc.detection.peak_rho,
        "clock modulation {} must out-correlate data switching {}",
        cm.detection.peak_rho,
        lc.detection.peak_rho
    );
}

#[test]
fn switching_registers_increase_the_signal() {
    // Table I as a detection experiment: adding data-switching registers
    // raises the amplitude and hence the correlation peak.
    let experiment = Experiment::quick(15_000, 502);
    let mut last_rho = 0.0;
    for switching in [0u32, 512, 1024] {
        let arch = ClockModulationWatermark {
            switching_registers: switching,
            wgc: wgc(),
            ..ClockModulationWatermark::paper()
        };
        let outcome = experiment.run(&arch).expect("runs");
        assert!(
            outcome.detection.detected,
            "{switching} switching: {outcome}"
        );
        assert!(
            outcome.detection.peak_rho > last_rho,
            "{switching} switching: rho {} must exceed previous {last_rho}",
            outcome.detection.peak_rho
        );
        last_rho = outcome.detection.peak_rho;
    }
}

#[test]
fn smaller_gated_blocks_are_harder_to_detect() {
    // Section V's scaling argument, inverted: the signal shrinks with the
    // modulated block, so tiny blocks need longer traces.
    let experiment = Experiment::quick(15_000, 503);
    let big = ClockModulationWatermark {
        words: 32,
        regs_per_word: 32,
        switching_registers: 0,
        wgc: wgc(),
    };
    let small = ClockModulationWatermark {
        words: 4,
        ..big.clone()
    };
    let big_outcome = experiment.run(&big).expect("runs");
    let small_outcome = experiment.run(&small).expect("runs");
    assert!(
        big_outcome.detection.peak_rho > 2.0 * small_outcome.detection.peak_rho,
        "big {} vs small {}",
        big_outcome.detection.peak_rho,
        small_outcome.detection.peak_rho
    );
}

#[test]
fn both_architectures_report_consistent_area_numbers() {
    let load = LoadCircuitWatermark::paper_equivalent();
    assert_eq!(load.dedicated_registers(), 576);
    assert_eq!(load.wgc_registers(), 12);

    let proposed = ClockModulationWatermark::paper();
    assert_eq!(proposed.dedicated_registers(), 1024);
    assert_eq!(proposed.wgc_registers(), 12);
}
