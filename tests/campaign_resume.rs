//! Property tests: interruption must be invisible. A [`StreamingCpa`]
//! fold serialised mid-stream, restored, and finished has to produce a
//! [`DetectionResult`] bit-for-bit identical to the uninterrupted fold —
//! and a whole campaign killed at arbitrary points has to resume to a
//! byte-identical `report.json`. This is the invariant the checkpoint
//! subsystem is built on: a checkpoint may be taken (or lost) anywhere
//! without perturbing a single f64.

use clockmark::corpus::{Corpus, TraceHeader};
use clockmark::{Campaign, CampaignLimits, CampaignSpec};
use clockmark_cpa::{DetectionCriterion, DetectionResult, StreamingCpa};
use clockmark_seq::{Lfsr, SequenceGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn pattern(width: u32) -> Vec<bool> {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    (0..period).map(|_| lfsr.next_bit()).collect()
}

fn synth(pattern: &[bool], cycles: usize, phase: usize, amp: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + phase) % pattern.len()] {
                amp
            } else {
                0.0
            };
            wm + rng.random_range(-2.0..2.0)
        })
        .collect()
}

fn assert_results_bit_identical(a: &DetectionResult, b: &DetectionResult) {
    assert_eq!(a.detected, b.detected);
    assert_eq!(a.peak_rotation, b.peak_rotation);
    assert_eq!(a.peak_rho.to_bits(), b.peak_rho.to_bits());
    assert_eq!(a.floor_max_abs.to_bits(), b.floor_max_abs.to_bits());
    assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
    assert_eq!(a.zscore.to_bits(), b.zscore.to_bits());
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cm_resume_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mid_stream_serialisation_is_invisible_to_detection(
        seed in 0u64..10_000,
        split_frac in 0.0f64..1.0,
        phase in 0usize..63,
        amp in prop_oneof![Just(0.0f64), 0.5f64..2.0],
    ) {
        let pattern = pattern(6);
        let y = synth(&pattern, 4_000, phase, amp, seed);
        let criterion = DetectionCriterion::default();

        // Uninterrupted reference fold.
        let mut direct = StreamingCpa::new(&pattern).expect("valid");
        direct.push_chunk(&y);
        let expected = direct.detect(&criterion);

        // Fold to an arbitrary split point, serialise, restore, finish.
        let split = ((y.len() as f64) * split_frac) as usize;
        let mut first = StreamingCpa::new(&pattern).expect("valid");
        first.push_chunk(&y[..split]);
        let state = first.state();
        drop(first);

        let mut resumed = StreamingCpa::from_state(state).expect("restores");
        prop_assert_eq!(resumed.cycles(), split as u64);
        resumed.push_chunk(&y[split..]);
        assert_results_bit_identical(&resumed.detect(&criterion), &expected);
    }

    #[test]
    fn a_campaign_killed_anywhere_resumes_to_identical_report_bytes(
        seed in 0u64..1_000,
        interrupt in 300u64..2_500,
        checkpoint in 200u64..1_500,
    ) {
        let dir = TempDir::new("campaign");
        let pattern = pattern(6);
        let cycles = 3_000;

        let corpus_dir = dir.0.join("corpus");
        let mut corpus = Corpus::create(&corpus_dir).expect("creates");
        let mut names = Vec::new();
        for (i, amp) in [1.0, 0.0, 0.8].into_iter().enumerate() {
            let name = format!("t{i}");
            let y = synth(&pattern, cycles, 5 * i + 3, amp, seed * 31 + i as u64);
            corpus.add(&name, TraceHeader::bare(0), &y).expect("adds");
            names.push(name);
        }

        let mut spec = CampaignSpec::new(&corpus_dir, pattern.clone(), names);
        spec.checkpoint_cycles = checkpoint;
        spec.chunk_cycles = 128;

        let reference = Campaign::create(dir.0.join("reference"), spec.clone()).expect("creates");
        let status = reference.run(&CampaignLimits::none()).expect("runs");
        prop_assert!(status.is_complete());

        let interrupted = Campaign::create(dir.0.join("interrupted"), spec).expect("creates");
        let limits = CampaignLimits {
            max_jobs: Some(2),
            interrupt_job_after_cycles: Some(interrupt),
        };
        let mut passes = 0;
        loop {
            passes += 1;
            prop_assert!(passes < 200, "campaign failed to converge");
            if interrupted.run(&limits).expect("runs").is_complete() {
                break;
            }
        }

        let reference_bytes = std::fs::read(dir.0.join("reference/report.json")).expect("report");
        let interrupted_bytes =
            std::fs::read(dir.0.join("interrupted/report.json")).expect("report");
        prop_assert_eq!(reference_bytes, interrupted_bytes);
    }
}
