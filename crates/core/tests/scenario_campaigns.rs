//! Black-box integration tests for the adversarial scenario engine: the
//! identity cell of a scenario campaign must reproduce a plain campaign's
//! `report.json` byte-for-byte, interrupted scenario campaigns must resume
//! to byte-identical reports, and every attacked cell must be
//! deterministic across independent runs of the same matrix.

use clockmark::corpus::{Corpus, TraceHeader};
use clockmark::{
    AttackSpec, Campaign, CampaignLimits, CampaignSpec, DefenseSpec, ScenarioCampaign,
    ScenarioMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cm_scncmp_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&path).ok();
        fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if std::env::var_os("CM_KEEP_TMP").is_none() {
            fs::remove_dir_all(&self.0).ok();
        }
    }
}

fn pattern() -> Vec<bool> {
    use clockmark::seq::{Lfsr, SequenceGenerator};
    let mut lfsr = Lfsr::maximal(6).expect("valid");
    (0..63).map(|_| lfsr.next_bit()).collect()
}

fn trace(pattern: &[bool], n: usize, phase: usize, amp: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let wm = if pattern[(i + phase) % pattern.len()] {
                amp
            } else {
                0.0
            };
            wm + rng.random_range(-2.0..2.0)
        })
        .collect()
}

/// A corpus of `marked` watermarked traces plus one unmarked trace;
/// returns the corpus directory and the trace names.
fn build_corpus(
    dir: &Path,
    pattern: &[bool],
    marked: usize,
    cycles: usize,
    seed: u64,
) -> (PathBuf, Vec<String>) {
    let corpus_dir = dir.join("corpus");
    let mut corpus = Corpus::create(&corpus_dir).expect("creates");
    let mut names = Vec::new();
    for i in 0..marked {
        let name = format!("marked_{i}");
        let w = trace(pattern, cycles, 7 + i, 1.0, seed + i as u64);
        corpus.add(&name, TraceHeader::bare(0), &w).expect("adds");
        names.push(name);
    }
    let w = trace(pattern, cycles, 0, 0.0, seed + 999);
    corpus
        .add("unmarked", TraceHeader::bare(0), &w)
        .expect("adds");
    names.push("unmarked".to_owned());
    (corpus_dir, names)
}

/// The shared matrix fixture: full default attack and defense axes over
/// the corpus, sized so a whole run stays fast.
fn matrix(corpus_dir: &Path, pattern: &[bool], names: &[String], seed: u64) -> ScenarioMatrix {
    let mut matrix = ScenarioMatrix::new(corpus_dir, pattern.to_vec(), names.to_vec());
    matrix.seed = seed;
    matrix.checkpoint_cycles = 1_000;
    matrix.chunk_cycles = 256;
    // Amplitudes on the synthetic fixture's scale, not the chip's.
    matrix.amplitude_watts = 1.0;
    matrix.noise_watts = 0.5;
    matrix
}

fn read_report(dir: &Path) -> Vec<u8> {
    fs::read(dir.join("report.json")).expect("report.json exists")
}

/// ISSUE 10 acceptance: a scenario whose only cell is the identity
/// (no attack, no defense, snr 1.0) routes through the plain streaming
/// job path, so the cell's `report.json` is byte-for-byte the report a
/// plain campaign over the same corpus produces.
fn assert_identity_reproduces_plain(
    cycles: usize,
    marked: usize,
    corpus_seed: u64,
    matrix_seed: u64,
) {
    let dir = TempDir::new("identity");
    let pattern = pattern();
    let (corpus_dir, names) = build_corpus(&dir.0, &pattern, marked, cycles, corpus_seed);

    let mut matrix = matrix(&corpus_dir, &pattern, &names, matrix_seed);
    matrix.attacks = vec![AttackSpec::None];
    matrix.defenses = vec![DefenseSpec::None];
    matrix.snrs = vec![1.0];

    let mut plain_spec = CampaignSpec::new(&corpus_dir, pattern.clone(), names.clone());
    plain_spec.checkpoint_cycles = matrix.checkpoint_cycles;
    plain_spec.chunk_cycles = matrix.chunk_cycles;
    plain_spec.criterion = matrix.criterion;
    plain_spec.algo = matrix.algo;
    let plain = Campaign::create(dir.0.join("plain"), plain_spec).expect("creates");
    plain.run(&CampaignLimits::none()).expect("runs");

    let scenario = ScenarioCampaign::create(dir.0.join("scenario"), matrix).expect("creates");
    let status = scenario.run(&CampaignLimits::none()).expect("runs");
    assert!(status.is_complete());

    let want = read_report(&dir.0.join("plain"));
    let got = read_report(&dir.0.join("scenario/cells/c000_none_none"));
    assert_eq!(got, want, "identity cell diverged from the plain campaign");
}

#[test]
fn identity_scenario_cell_reproduces_the_plain_campaign_report() {
    assert_identity_reproduces_plain(700, 2, 100, 77);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The identity equivalence holds across trace lengths, corpus
    /// shapes and matrix seeds — the matrix seed in particular must not
    /// leak into the identity path.
    #[test]
    fn identity_equivalence_holds_across_corpora(
        cycles in 200usize..900,
        marked in 1usize..4,
        corpus_seed in 0u64..1_000,
        matrix_seed in 0u64..1_000,
    ) {
        assert_identity_reproduces_plain(cycles, marked, corpus_seed, matrix_seed);
    }
}

/// Every cell — attacked and defended alike — is a pure function of the
/// matrix, so two independent runs of the same `scenarios.json` produce
/// byte-identical merged reports and byte-identical per-cell reports.
#[test]
fn attacked_cells_are_deterministic_across_independent_runs() {
    let dir = TempDir::new("determinism");
    let pattern = pattern();
    let (corpus_dir, names) = build_corpus(&dir.0, &pattern, 1, 600, 42);
    let matrix = matrix(&corpus_dir, &pattern, &names, 9);
    // Re-decode the encoded form so the runs start from the exact bytes
    // a `scenarios.json` on disk would hold.
    let decoded = ScenarioMatrix::decode(&matrix.encode()).expect("round-trips");

    let a = ScenarioCampaign::create(dir.0.join("a"), matrix).expect("creates");
    let b = ScenarioCampaign::create(dir.0.join("b"), decoded).expect("creates");
    assert!(a.run(&CampaignLimits::none()).expect("runs").is_complete());
    assert!(b.run(&CampaignLimits::none()).expect("runs").is_complete());

    assert_eq!(read_report(&dir.0.join("a")), read_report(&dir.0.join("b")));
    for cell in a.matrix().cells() {
        let cell_rel = Path::new("cells").join(&cell.id);
        assert_eq!(
            read_report(&dir.0.join("a").join(&cell_rel)),
            read_report(&dir.0.join("b").join(&cell_rel)),
            "cell {} diverged between runs",
            cell.id
        );
    }
}

/// ISSUE 10 acceptance: killing a scenario campaign anywhere and
/// resuming produces a merged report byte-identical to an uninterrupted
/// run. The interruption schedule alternates job-budget exhaustion with
/// mid-trace cuts (what a `SIGKILL` between checkpoints leaves behind).
#[test]
fn interrupted_scenario_campaign_resumes_byte_identically() {
    let dir = TempDir::new("resume");
    let pattern = pattern();
    let (corpus_dir, names) = build_corpus(&dir.0, &pattern, 1, 600, 7);
    let matrix = matrix(&corpus_dir, &pattern, &names, 3);

    let reference =
        ScenarioCampaign::create(dir.0.join("reference"), matrix.clone()).expect("creates");
    assert!(reference
        .run(&CampaignLimits::none())
        .expect("runs")
        .is_complete());

    let interrupted = ScenarioCampaign::create(dir.0.join("interrupted"), matrix).expect("creates");
    let schedule = [
        CampaignLimits {
            max_jobs: Some(1),
            interrupt_job_after_cycles: None,
        },
        CampaignLimits {
            max_jobs: Some(2),
            interrupt_job_after_cycles: Some(300),
        },
        CampaignLimits {
            max_jobs: Some(3),
            interrupt_job_after_cycles: Some(100),
        },
    ];
    let mut step = 0usize;
    for round in 0.. {
        assert!(round < 200, "campaign failed to converge");
        // Re-open each round: resumption must rebuild all state from disk.
        let campaign = ScenarioCampaign::open(dir.0.join("interrupted")).expect("opens");
        let status = campaign
            .run(&schedule[step % schedule.len()])
            .expect("runs");
        step += 1;
        if status.is_complete() {
            break;
        }
    }
    drop(interrupted);

    let got = read_report(&dir.0.join("interrupted"));
    let want = read_report(&dir.0.join("reference"));
    assert_eq!(
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(&want),
        "resumed merged report diverged from the uninterrupted run"
    );
}
