use std::error::Error;
use std::fmt;

/// The unified error type of the `clockmark` crate.
///
/// Wraps the errors of every substrate — including the corpus store, the
/// campaign engine and (via the `clockmark-serve` crate's `From` impl)
/// the detection server — plus the configuration errors of the watermark
/// layer itself, so callers propagate one type with `?` end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClockmarkError {
    /// Sequence-generator configuration failed.
    Seq(clockmark_seq::SeqError),
    /// Netlist construction failed.
    Netlist(clockmark_netlist::NetlistError),
    /// Simulation failed.
    Sim(clockmark_sim::SimError),
    /// Power-trace arithmetic failed.
    Power(clockmark_power::PowerError),
    /// SoC background simulation failed.
    Soc(clockmark_soc::SocError),
    /// Correlation power analysis failed.
    Cpa(clockmark_cpa::CpaError),
    /// Trace corpus I/O or integrity failed.
    Corpus(clockmark_corpus::CorpusError),
    /// A detection campaign failed.
    Campaign(crate::campaign::CampaignError),
    /// The detection server (or its client) failed. The variant carries a
    /// rendered message because `clockmark-serve` sits above this crate
    /// in the dependency graph; the server crate provides the
    /// `From<ServeError>` conversion.
    Serve {
        /// What went wrong, already rendered.
        message: String,
    },
    /// A watermark architecture was configured with no body registers.
    EmptyWatermarkBody,
    /// More switching registers were requested than the body holds.
    TooManySwitchingRegisters {
        /// Requested switching registers.
        requested: u32,
        /// Registers available in the body.
        available: u32,
    },
    /// The experiment was configured with zero measurement cycles.
    ZeroCycles,
}

impl fmt::Display for ClockmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockmarkError::Seq(e) => write!(f, "sequence generator: {e}"),
            ClockmarkError::Netlist(e) => write!(f, "netlist: {e}"),
            ClockmarkError::Sim(e) => write!(f, "simulation: {e}"),
            ClockmarkError::Power(e) => write!(f, "power model: {e}"),
            ClockmarkError::Soc(e) => write!(f, "soc model: {e}"),
            ClockmarkError::Cpa(e) => write!(f, "cpa: {e}"),
            ClockmarkError::Corpus(e) => write!(f, "corpus: {e}"),
            ClockmarkError::Campaign(e) => write!(f, "campaign: {e}"),
            ClockmarkError::Serve { message } => write!(f, "serve: {message}"),
            ClockmarkError::EmptyWatermarkBody => {
                write!(f, "watermark body must contain at least one register")
            }
            ClockmarkError::TooManySwitchingRegisters {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} switching registers but the body holds {available}"
                )
            }
            ClockmarkError::ZeroCycles => {
                write!(f, "experiment needs at least one measurement cycle")
            }
        }
    }
}

impl Error for ClockmarkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClockmarkError::Seq(e) => Some(e),
            ClockmarkError::Netlist(e) => Some(e),
            ClockmarkError::Sim(e) => Some(e),
            ClockmarkError::Power(e) => Some(e),
            ClockmarkError::Soc(e) => Some(e),
            ClockmarkError::Cpa(e) => Some(e),
            ClockmarkError::Corpus(e) => Some(e),
            ClockmarkError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_sub_error {
    ($sub:ty => $variant:ident) => {
        impl From<$sub> for ClockmarkError {
            fn from(e: $sub) -> Self {
                ClockmarkError::$variant(e)
            }
        }
    };
}

from_sub_error!(clockmark_seq::SeqError => Seq);
from_sub_error!(clockmark_netlist::NetlistError => Netlist);
from_sub_error!(clockmark_sim::SimError => Sim);
from_sub_error!(clockmark_power::PowerError => Power);
from_sub_error!(clockmark_soc::SocError => Soc);
from_sub_error!(clockmark_cpa::CpaError => Cpa);
from_sub_error!(clockmark_corpus::CorpusError => Corpus);
from_sub_error!(crate::campaign::CampaignError => Campaign);

/// Trace-driven detection over a corpus reader surfaces either a CPA
/// failure or a corpus I/O/integrity failure; both fold into the unified
/// error so `Detector::detect_trace(reader)?` works at the top level.
impl From<clockmark_cpa::TraceInputError<clockmark_corpus::CorpusError>> for ClockmarkError {
    fn from(e: clockmark_cpa::TraceInputError<clockmark_corpus::CorpusError>) -> Self {
        match e {
            clockmark_cpa::TraceInputError::Cpa(e) => ClockmarkError::Cpa(e),
            clockmark_cpa::TraceInputError::Input(e) => ClockmarkError::Corpus(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_errors_convert_and_chain() {
        let err: ClockmarkError = clockmark_seq::SeqError::ZeroSeed.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("sequence generator"));

        let err: ClockmarkError = clockmark_cpa::CpaError::ConstantPattern.into();
        assert!(err.to_string().contains("cpa"));

        let err: ClockmarkError = clockmark_corpus::CorpusError::Corrupt {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("corpus"));

        let err: ClockmarkError =
            crate::campaign::CampaignError::Cpa(clockmark_cpa::CpaError::ConstantPattern).into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("campaign"));
    }

    #[test]
    fn trace_input_error_splits_into_cpa_and_corpus() {
        let err: ClockmarkError =
            clockmark_cpa::TraceInputError::<clockmark_corpus::CorpusError>::Cpa(
                clockmark_cpa::CpaError::ConstantPattern,
            )
            .into();
        assert!(matches!(err, ClockmarkError::Cpa(_)));

        let err: ClockmarkError =
            clockmark_cpa::TraceInputError::Input(clockmark_corpus::CorpusError::Format {
                message: "truncated".into(),
            })
            .into();
        assert!(matches!(err, ClockmarkError::Corpus(_)));
    }

    #[test]
    fn serve_variant_renders_message() {
        let err = ClockmarkError::Serve {
            message: "pool exhausted".into(),
        };
        assert_eq!(err.to_string(), "serve: pool exhausted");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClockmarkError>();
    }
}
