use std::error::Error;
use std::fmt;

/// The unified error type of the `clockmark` crate.
///
/// Wraps the errors of every substrate plus the configuration errors of
/// the watermark layer itself.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClockmarkError {
    /// Sequence-generator configuration failed.
    Seq(clockmark_seq::SeqError),
    /// Netlist construction failed.
    Netlist(clockmark_netlist::NetlistError),
    /// Simulation failed.
    Sim(clockmark_sim::SimError),
    /// Power-trace arithmetic failed.
    Power(clockmark_power::PowerError),
    /// SoC background simulation failed.
    Soc(clockmark_soc::SocError),
    /// Correlation power analysis failed.
    Cpa(clockmark_cpa::CpaError),
    /// A watermark architecture was configured with no body registers.
    EmptyWatermarkBody,
    /// More switching registers were requested than the body holds.
    TooManySwitchingRegisters {
        /// Requested switching registers.
        requested: u32,
        /// Registers available in the body.
        available: u32,
    },
    /// The experiment was configured with zero measurement cycles.
    ZeroCycles,
}

impl fmt::Display for ClockmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockmarkError::Seq(e) => write!(f, "sequence generator: {e}"),
            ClockmarkError::Netlist(e) => write!(f, "netlist: {e}"),
            ClockmarkError::Sim(e) => write!(f, "simulation: {e}"),
            ClockmarkError::Power(e) => write!(f, "power model: {e}"),
            ClockmarkError::Soc(e) => write!(f, "soc model: {e}"),
            ClockmarkError::Cpa(e) => write!(f, "cpa: {e}"),
            ClockmarkError::EmptyWatermarkBody => {
                write!(f, "watermark body must contain at least one register")
            }
            ClockmarkError::TooManySwitchingRegisters {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} switching registers but the body holds {available}"
                )
            }
            ClockmarkError::ZeroCycles => {
                write!(f, "experiment needs at least one measurement cycle")
            }
        }
    }
}

impl Error for ClockmarkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClockmarkError::Seq(e) => Some(e),
            ClockmarkError::Netlist(e) => Some(e),
            ClockmarkError::Sim(e) => Some(e),
            ClockmarkError::Power(e) => Some(e),
            ClockmarkError::Soc(e) => Some(e),
            ClockmarkError::Cpa(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_sub_error {
    ($sub:ty => $variant:ident) => {
        impl From<$sub> for ClockmarkError {
            fn from(e: $sub) -> Self {
                ClockmarkError::$variant(e)
            }
        }
    };
}

from_sub_error!(clockmark_seq::SeqError => Seq);
from_sub_error!(clockmark_netlist::NetlistError => Netlist);
from_sub_error!(clockmark_sim::SimError => Sim);
from_sub_error!(clockmark_power::PowerError => Power);
from_sub_error!(clockmark_soc::SocError => Soc);
from_sub_error!(clockmark_cpa::CpaError => Cpa);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_errors_convert_and_chain() {
        let err: ClockmarkError = clockmark_seq::SeqError::ZeroSeed.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("sequence generator"));

        let err: ClockmarkError = clockmark_cpa::CpaError::ConstantPattern.into();
        assert!(err.to_string().contains("cpa"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClockmarkError>();
    }
}
