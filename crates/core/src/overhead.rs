//! Area and power overhead analysis (Section V of the paper).
//!
//! The headline claim — a **98 % area-overhead reduction** — compares the
//! register count of the state-of-the-art watermark (WGC + dedicated load
//! circuit sized for a detectable power level) against the proposed
//! technique (WGC only, reusing existing clock-gated logic as the load).

use crate::WatermarkArchitecture;
use clockmark_power::tables::TableModel;
use clockmark_power::{Power, PowerModel};

/// Register/area accounting of one architecture instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Architecture name.
    pub name: &'static str,
    /// WGC registers (present in every architecture).
    pub wgc_registers: u32,
    /// Registers added exclusively for the watermark body.
    pub dedicated_registers: u32,
    /// Watermark signal amplitude (power while `WMARK = 1`).
    pub signal_amplitude: Power,
}

impl AreaReport {
    /// Builds the report for an architecture.
    pub fn for_architecture<A: WatermarkArchitecture + ?Sized>(
        architecture: &A,
        model: &PowerModel,
    ) -> Self {
        AreaReport {
            name: architecture.name(),
            wgc_registers: architecture.wgc_registers(),
            dedicated_registers: architecture.dedicated_registers(),
            signal_amplitude: architecture.signal_amplitude(model),
        }
    }

    /// Total registers the watermark costs.
    pub fn total_registers(&self) -> u32 {
        self.wgc_registers + self.dedicated_registers
    }
}

/// The area reduction achieved by replacing `baseline` with `proposed`,
/// in percent of the baseline's register count.
///
/// For the paper's numbers (WGC 12 + load 576 vs WGC 12, reusing logic):
/// `576 / 588 ≈ 98 %`.
pub fn area_reduction_pct(baseline: &AreaReport, proposed_extra_registers: u32) -> f64 {
    let baseline_total = baseline.total_registers() as f64;
    if baseline_total == 0.0 {
        return 0.0;
    }
    let removed = baseline_total - (baseline.wgc_registers + proposed_extra_registers) as f64;
    removed / baseline_total * 100.0
}

/// One row of the equal-power architecture comparison: for a target
/// detectable power, how many registers does each approach cost?
#[derive(Debug, Clone, PartialEq)]
pub struct EqualPowerRow {
    /// The target load power.
    pub p_load: Power,
    /// Baseline: WGC + N load registers.
    pub baseline_registers: u32,
    /// Proposed (reusing existing logic): WGC only.
    pub proposed_registers: u32,
    /// Area reduction in percent.
    pub reduction_pct: f64,
}

/// Builds the equal-power comparison for a set of target powers — the
/// scaling argument of Table II, expressed as an architecture comparison.
pub fn equal_power_comparison(model: &TableModel, targets: &[Power]) -> Vec<EqualPowerRow> {
    targets
        .iter()
        .map(|&p_load| {
            let row = model.table2_row(p_load);
            EqualPowerRow {
                p_load,
                baseline_registers: row.registers_needed as u32 + model.wgc_registers,
                proposed_registers: model.wgc_registers,
                reduction_pct: row.area_reduction_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockModulationWatermark, LoadCircuitWatermark};
    use clockmark_power::{EnergyLibrary, Frequency};

    fn model() -> PowerModel {
        PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0))
    }

    #[test]
    fn paper_headline_98_pct_reduction() {
        let baseline =
            AreaReport::for_architecture(&LoadCircuitWatermark::paper_equivalent(), &model());
        assert_eq!(baseline.total_registers(), 576 + 12);
        // Proposed technique reuses existing logic: zero extra registers.
        let reduction = area_reduction_pct(&baseline, 0);
        assert!((reduction - 97.96).abs() < 0.1, "got {reduction:.2} %");
    }

    #[test]
    fn redundant_block_variant_reports_its_own_registers() {
        let proposed = AreaReport::for_architecture(&ClockModulationWatermark::paper(), &model());
        // The test chips do add a redundant block (for isolation); the
        // production deployment would reuse an IP block instead.
        assert_eq!(proposed.dedicated_registers, 1024);
        assert_eq!(proposed.wgc_registers, 12);
    }

    #[test]
    fn equal_power_rows_match_table2() {
        let rows = equal_power_comparison(
            &TableModel::paper(),
            &[Power::from_milliwatts(0.25), Power::from_milliwatts(10.0)],
        );
        assert_eq!(rows[0].baseline_registers, 96 + 12);
        assert_eq!(rows[0].proposed_registers, 12);
        assert!((rows[0].reduction_pct - 88.9).abs() < 0.1);
        assert_eq!(rows[1].baseline_registers, 3843 + 12);
        assert!((rows[1].reduction_pct - 99.7).abs() < 0.1);
    }

    #[test]
    fn reduction_handles_degenerate_baseline() {
        let degenerate = AreaReport {
            name: "empty",
            wgc_registers: 0,
            dedicated_registers: 0,
            signal_amplitude: Power::ZERO,
        };
        assert_eq!(area_reduction_pct(&degenerate, 0), 0.0);
    }
}
