//! One-stop imports for the types almost every caller touches.
//!
//! The workspace grew one crate per substrate (sequence generation,
//! netlist, simulation, power, measurement, CPA, corpus), and callers
//! ended up importing from four or five paths to run a single
//! experiment. The prelude flattens the caller-facing surface:
//!
//! ```
//! use clockmark::prelude::*;
//!
//! # fn main() -> Result<(), ClockmarkError> {
//! let architecture = ClockModulationWatermark {
//!     wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
//!     ..ClockModulationWatermark::paper()
//! };
//! let outcome = Experiment::quick(15_000, 42).run(&architecture)?;
//! assert!(outcome.detection.detected);
//! # Ok(())
//! # }
//! ```
//!
//! Detection-side callers get the unified [`Detector`] facade and its
//! options here too, so `use clockmark::prelude::*;` is enough to build
//! a watermark, run it through the measurement pipeline, and analyse a
//! trace — in-process or over the wire via `clockmark-serve` (which
//! speaks the same types).

pub use crate::{
    AttackSpec, Campaign, CampaignLimits, CampaignReport, CampaignSpec, ChipModel,
    ClockModulationWatermark, ClockmarkError, DefenseSpec, Experiment, ExperimentBatch,
    ExperimentOutcome, LoadCircuitWatermark, ScenarioCampaign, ScenarioMatrix, ScenarioReport,
    ScenarioSpec, WatermarkArchitecture, WgcConfig,
};
pub use clockmark_corpus::{Corpus, CorpusError, TraceReader};
pub use clockmark_cpa::{
    CandidatePattern, CandidateScore, CpaAlgo, DetectOptions, DetectionCriterion, DetectionResult,
    Detector, Identification, SequentialOptions, SequentialResult, SpreadSpectrum,
    StreamingDetection, TraceDetection,
};
