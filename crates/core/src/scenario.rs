//! The attack↔defense scenario engine: a matrix of adversarial cells run
//! as resumable campaigns.
//!
//! A [`ScenarioMatrix`] is the cross-product `attacks × defenses × snrs`
//! over one corpus. [`ScenarioCampaign`] materialises each cell as a
//! standard [`Campaign`] under `cells/`, so every cell inherits the whole
//! checkpoint/resume machinery for free:
//!
//! ```text
//! scenario/
//!   scenarios.json            # the matrix, written once (tmp+rename)
//!   cells/
//!     c000_none_none/         # one standard campaign per cell
//!       campaign.json         #   (spec carries the cell's ScenarioSpec)
//!       results.jsonl
//!       report.json
//!     c001_none_multi_watermark/
//!     ...
//!   report.json               # merged detection-rate-under-attack report
//! ```
//!
//! Determinism contract: every cell's seed is counter-hashed from the
//! matrix seed, every job's seed from the cell's, and every draw inside a
//! job from the job's — so the merged `report.json` is a pure function of
//! the matrix and the corpus bytes, and kill-anywhere resume reproduces
//! it byte-for-byte (the identity cell through the streaming checkpoint
//! proof, every other cell through whole-job replay).
//!
//! ## How one scenario job runs
//!
//! 1. **Defense embedding** — the defense overlays its own watermark
//!    signal onto the stored trace at `amplitude_watts × snr` (the
//!    defended device's emission); [`DefenseSpec::None`] overlays nothing
//!    and later verifies the trace's native watermark.
//! 2. **Attack** — the cell's [`AttackSpec`] transform runs over the
//!    samples (the adversary sits between device and verifier).
//! 3. **SNR degradation** — deterministic white noise of
//!    `noise_watts × (1/snr − 1)` is added (zero at nominal SNR).
//! 4. **Verification** — the defense's decision procedure runs. Plain
//!    detection scans all rotations; the active defenses are *informed*
//!    verifiers: they know their own schedule, so they check the
//!    correlation z-score at each **expected** rotation (a decoy peak
//!    elsewhere in the spectrum cannot fool them, which is exactly why
//!    jamming loses to them in the matrix).

use crate::attack::{
    hash_gaussian, mix_seed, AttackContext, AttackSpec, DefenseSpec, ScenarioSpec,
};
use crate::campaign::{
    write_atomic, Campaign, CampaignError, CampaignLimits, CampaignReport, CampaignSpec,
};
use clockmark_cpa::{
    CpaAlgo, CpaError, DetectOptions, DetectionCriterion, DetectionResult, Detector,
};
use clockmark_obs::json::{self, Json};
use clockmark_seq::{Lfsr, SequenceGenerator};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// The serializable cross-product: which attacks, which defenses, at
/// which SNRs, over which corpus traces.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    /// Root of the trace corpus every cell reads from.
    pub corpus: PathBuf,
    /// One period of the primary watermark pattern.
    pub pattern: Vec<bool>,
    /// Corpus trace names; every cell runs one job per trace.
    pub traces: Vec<String>,
    /// The attack axis.
    pub attacks: Vec<AttackSpec>,
    /// The defense axis.
    pub defenses: Vec<DefenseSpec>,
    /// The SNR axis.
    pub snrs: Vec<f64>,
    /// Overlay watermark amplitude at `snr = 1`, in watts.
    pub amplitude_watts: f64,
    /// Reference measurement-noise σ for the SNR axis, in watts.
    pub noise_watts: f64,
    /// Root seed; cell seeds are counter-hashed from it.
    pub seed: u64,
    /// Detection criterion every cell applies.
    pub criterion: DetectionCriterion,
    /// Checkpoint cadence for identity-cell streaming jobs.
    pub checkpoint_cycles: u64,
    /// Read-chunk size for every cell.
    pub chunk_cycles: usize,
    /// The spectrum kernel, resolved once and persisted (same pinning
    /// policy as a plain campaign).
    pub algo: CpaAlgo,
}

impl ScenarioMatrix {
    /// A matrix over the default attack and defense axes at nominal SNR.
    pub fn new(corpus: impl Into<PathBuf>, pattern: Vec<bool>, traces: Vec<String>) -> Self {
        let algo = clockmark_cpa::algo_override()
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&pattern));
        let defaults = ScenarioSpec::default();
        ScenarioMatrix {
            corpus: corpus.into(),
            pattern,
            traces,
            attacks: AttackSpec::all_defaults(),
            defenses: DefenseSpec::all_defaults(),
            snrs: vec![1.0],
            amplitude_watts: defaults.amplitude_watts,
            noise_watts: defaults.noise_watts,
            seed: 0,
            criterion: DetectionCriterion::default(),
            checkpoint_cycles: 65_536,
            chunk_cycles: 8_192,
            algo,
        }
    }

    /// Serialises the matrix as one JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"corpus\":");
        json::write_str(&mut out, &self.corpus.to_string_lossy());
        out.push_str(",\"pattern\":\"");
        for &bit in &self.pattern {
            out.push(if bit { '1' } else { '0' });
        }
        out.push_str("\",\"traces\":[");
        for (i, trace) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, trace);
        }
        out.push_str("],\"attacks\":[");
        for (i, attack) in self.attacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            attack.encode_into(&mut out);
        }
        out.push_str("],\"defenses\":[");
        for (i, defense) in self.defenses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            defense.encode_into(&mut out);
        }
        out.push_str("],\"snrs\":[");
        for (i, snr) in self.snrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *snr);
        }
        out.push_str("],\"amplitude_watts\":");
        json::write_f64(&mut out, self.amplitude_watts);
        out.push_str(",\"noise_watts\":");
        json::write_f64(&mut out, self.noise_watts);
        // As in [`ScenarioSpec`]: a decimal string, because the JSON
        // model's f64 numbers cannot hold a full-range u64 exactly.
        let _ = write!(out, ",\"seed\":\"{}\"", self.seed);
        out.push_str(",\"min_peak_ratio\":");
        json::write_f64(&mut out, self.criterion.min_peak_ratio);
        out.push_str(",\"min_zscore\":");
        json::write_f64(&mut out, self.criterion.min_zscore);
        let _ = write!(
            out,
            ",\"checkpoint_cycles\":{},\"chunk_cycles\":{},\"algo\":\"{}\"}}",
            self.checkpoint_cycles,
            self.chunk_cycles,
            self.algo.as_str()
        );
        out
    }

    /// Parses a matrix serialised by [`encode`](ScenarioMatrix::encode)
    /// (or hand-written: every field except `corpus`, `pattern` and
    /// `traces` is optional and falls back to the defaults of
    /// [`ScenarioMatrix::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] for malformed JSON, missing
    /// required fields, or unknown attack/defense kinds.
    pub fn decode(text: &str) -> Result<Self, CampaignError> {
        let value =
            json::parse(text).map_err(|e| CampaignError::spec(format!("invalid JSON: {e}")))?;
        let str_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| CampaignError::spec(format!("missing string field `{key}`")))
        };
        let pattern = str_field("pattern")?
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(CampaignError::spec(format!(
                    "pattern contains `{other}`; only 0/1 allowed"
                ))),
            })
            .collect::<Result<Vec<bool>, _>>()?;
        let traces = match value.get("traces") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| CampaignError::spec("non-string trace name".to_owned()))
                })
                .collect::<Result<Vec<String>, _>>()?,
            _ => return Err(CampaignError::spec("missing array field `traces`")),
        };
        let mut matrix = ScenarioMatrix::new(PathBuf::from(str_field("corpus")?), pattern, traces);
        if let Some(Json::Array(items)) = value.get("attacks") {
            matrix.attacks = items
                .iter()
                .map(AttackSpec::decode_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| CampaignError::spec(e.message))?;
        }
        if let Some(Json::Array(items)) = value.get("defenses") {
            matrix.defenses = items
                .iter()
                .map(DefenseSpec::decode_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| CampaignError::spec(e.message))?;
        }
        if let Some(Json::Array(items)) = value.get("snrs") {
            matrix.snrs = items.iter().filter_map(Json::as_f64).collect();
        }
        let num = |key: &str| value.get(key).and_then(Json::as_f64);
        if let Some(v) = num("amplitude_watts") {
            matrix.amplitude_watts = v;
        }
        if let Some(v) = num("noise_watts") {
            matrix.noise_watts = v;
        }
        if let Some(v) = value.get("seed") {
            matrix.seed =
                crate::attack::decode_seed(v).map_err(|e| CampaignError::spec(e.message))?;
        }
        if let Some(v) = num("min_peak_ratio") {
            matrix.criterion.min_peak_ratio = v;
        }
        if let Some(v) = num("min_zscore") {
            matrix.criterion.min_zscore = v;
        }
        if let Some(v) = num("checkpoint_cycles") {
            matrix.checkpoint_cycles = v as u64;
        }
        if let Some(v) = num("chunk_cycles") {
            matrix.chunk_cycles = v as usize;
        }
        if let Some(algo) = value.get("algo").and_then(Json::as_str) {
            matrix.algo = CpaAlgo::parse(algo)
                .ok_or_else(|| CampaignError::spec(format!("unknown algo `{algo}`")))?;
        }
        Ok(matrix)
    }

    /// Validates the matrix: usable pattern and traces, non-empty axes,
    /// every axis entry in range, hopping dwells long enough to detect a
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] naming the offending entry.
    pub fn validate(&self) -> Result<(), CampaignError> {
        Detector::new(&self.pattern)?;
        if self.traces.is_empty() {
            return Err(CampaignError::spec("matrix has no traces"));
        }
        if self.attacks.is_empty() || self.defenses.is_empty() || self.snrs.is_empty() {
            return Err(CampaignError::spec(
                "matrix axes must all be non-empty (attacks, defenses, snrs)",
            ));
        }
        for cell in self.cells() {
            cell.spec
                .validate()
                .map_err(|e| CampaignError::spec(format!("cell {}: {e}", cell.id)))?;
        }
        for defense in &self.defenses {
            if let DefenseSpec::SeedHopping { dwell_cycles } = defense {
                if (*dwell_cycles as usize) < 2 * self.pattern.len() {
                    return Err(CampaignError::spec(format!(
                        "seed_hopping dwell_cycles {} is shorter than two pattern periods ({})",
                        dwell_cycles,
                        2 * self.pattern.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Expands the cross-product into cells, in a stable order (attack
    /// major, then defense, then SNR). Cell seeds are counter-hashed from
    /// the matrix seed, so reordering the axes reshuffles *which* seed
    /// each combination gets but never reuses one.
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let mut cells =
            Vec::with_capacity(self.attacks.len() * self.defenses.len() * self.snrs.len());
        let mut index = 0usize;
        for attack in &self.attacks {
            for defense in &self.defenses {
                for &snr in &self.snrs {
                    let spec = ScenarioSpec {
                        attack: attack.clone(),
                        defense: defense.clone(),
                        snr,
                        amplitude_watts: self.amplitude_watts,
                        noise_watts: self.noise_watts,
                        seed: mix_seed(self.seed, index as u64),
                    };
                    cells.push(ScenarioCell {
                        id: format!("c{index:03}_{}_{}", attack.kind(), defense.kind()),
                        index,
                        spec,
                    });
                    index += 1;
                }
            }
        }
        cells
    }
}

/// One materialised cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Directory name under `cells/` (stable across resumes).
    pub id: String,
    /// Position in the cross-product expansion.
    pub index: usize,
    /// The cell's full scenario spec (cell seed already mixed in).
    pub spec: ScenarioSpec,
}

/// Where a scenario campaign currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioStatus {
    /// Cells in the matrix.
    pub cells_total: usize,
    /// Cells whose every job has completed.
    pub cells_complete: usize,
    /// Jobs across all cells.
    pub jobs_total: usize,
    /// Jobs with a persisted outcome.
    pub jobs_completed: usize,
    /// Completed jobs whose watermark was detected.
    pub detected: usize,
}

impl ScenarioStatus {
    /// Whether every cell has completed.
    pub fn is_complete(&self) -> bool {
        self.cells_complete == self.cells_total
    }
}

impl std::fmt::Display for ScenarioStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} cells done ({}/{} jobs, {} detected)",
            self.cells_complete,
            self.cells_total,
            self.jobs_completed,
            self.jobs_total,
            self.detected
        )
    }
}

/// One row of the merged report: a cell and its detection rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCellReport {
    /// Cell directory name.
    pub cell: String,
    /// Attack kind tag.
    pub attack: String,
    /// Defense kind tag.
    pub defense: String,
    /// The cell's SNR.
    pub snr: f64,
    /// Jobs in the cell.
    pub total: usize,
    /// Jobs whose watermark was detected.
    pub detected: usize,
}

impl ScenarioCellReport {
    /// Detection rate of the cell (0 for an empty cell).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// The merged detection-rate-under-attack report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The spectrum kernel every cell ran.
    pub algo: CpaAlgo,
    /// One row per cell, in cross-product order.
    pub cells: Vec<ScenarioCellReport>,
}

impl ScenarioReport {
    /// Serialises the report deterministically: same cell reports in,
    /// same bytes out — what the kill-and-resume smoke test compares.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(128 + self.cells.len() * 128);
        let jobs: usize = self.cells.iter().map(|c| c.total).sum();
        let _ = write!(
            out,
            "{{\"cells\":{},\"jobs\":{},\"algo\":\"{}\",\"results\":[",
            self.cells.len(),
            jobs,
            self.algo.as_str()
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cell\":");
            json::write_str(&mut out, &cell.cell);
            out.push_str(",\"attack\":");
            json::write_str(&mut out, &cell.attack);
            out.push_str(",\"defense\":");
            json::write_str(&mut out, &cell.defense);
            out.push_str(",\"snr\":");
            json::write_f64(&mut out, cell.snr);
            let _ = write!(
                out,
                ",\"total\":{},\"detected\":{}",
                cell.total, cell.detected
            );
            out.push_str(",\"rate\":");
            json::write_f64(&mut out, cell.rate());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The report row for an attack/defense pair at a given SNR, if the
    /// matrix ran that cell.
    pub fn cell(&self, attack: &str, defense: &str, snr: f64) -> Option<&ScenarioCellReport> {
        self.cells
            .iter()
            .find(|c| c.attack == attack && c.defense == defense && c.snr == snr)
    }
}

/// A scenario campaign rooted at a directory: the matrix plus one
/// standard [`Campaign`] per cell under `cells/`.
#[derive(Debug)]
pub struct ScenarioCampaign {
    dir: PathBuf,
    matrix: ScenarioMatrix,
    threads: usize,
}

impl ScenarioCampaign {
    /// Creates the scenario directory and persists the matrix. Cells are
    /// materialised lazily by [`run`](ScenarioCampaign::run) — a kill
    /// between creation and the first run loses nothing, because the
    /// cells are a pure function of the persisted matrix.
    ///
    /// # Errors
    ///
    /// Returns the matrix's [`validate`](ScenarioMatrix::validate) errors
    /// and [`CampaignError::Io`] on filesystem failure (including an
    /// existing scenario at `dir`).
    pub fn create(dir: impl Into<PathBuf>, matrix: ScenarioMatrix) -> Result<Self, CampaignError> {
        let dir = dir.into();
        matrix.validate()?;
        let spec_path = dir.join("scenarios.json");
        if spec_path.exists() {
            return Err(CampaignError::Io {
                context: format!("creating scenario campaign at {}", dir.display()),
                source: std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "scenarios.json already exists",
                ),
            });
        }
        fs::create_dir_all(dir.join("cells")).map_err(|e| CampaignError::Io {
            context: format!("creating {}", dir.display()),
            source: e,
        })?;
        write_atomic(&spec_path, format!("{}\n", matrix.encode()).as_bytes())?;
        Ok(ScenarioCampaign {
            dir,
            matrix,
            threads: clockmark_cpa::thread_count(),
        })
    }

    /// Opens an existing scenario campaign by reading its matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] when `scenarios.json` cannot be read
    /// and [`CampaignError::Spec`] when it is malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let dir = dir.into();
        let spec_path = dir.join("scenarios.json");
        let text = fs::read_to_string(&spec_path).map_err(|e| CampaignError::Io {
            context: format!("reading {}", spec_path.display()),
            source: e,
        })?;
        let matrix = ScenarioMatrix::decode(text.trim())?;
        matrix.validate()?;
        Ok(ScenarioCampaign {
            dir,
            matrix,
            threads: clockmark_cpa::thread_count(),
        })
    }

    /// The scenario directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The persisted matrix.
    pub fn matrix(&self) -> &ScenarioMatrix {
        &self.matrix
    }

    /// Overrides the per-cell worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The matrix's cells, in cross-product order.
    pub fn cells(&self) -> Vec<ScenarioCell> {
        self.matrix.cells()
    }

    fn cell_dir(&self, cell: &ScenarioCell) -> PathBuf {
        self.dir.join("cells").join(&cell.id)
    }

    fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    /// The [`CampaignSpec`] a cell runs: the matrix's corpus, pattern,
    /// traces and tuning, with the cell's [`ScenarioSpec`] pinned in.
    fn cell_spec(&self, cell: &ScenarioCell) -> CampaignSpec {
        CampaignSpec {
            corpus: self.matrix.corpus.clone(),
            pattern: self.matrix.pattern.clone(),
            traces: self.matrix.traces.clone(),
            criterion: self.matrix.criterion,
            checkpoint_cycles: self.matrix.checkpoint_cycles,
            chunk_cycles: self.matrix.chunk_cycles,
            algo: self.matrix.algo,
            sequential: None,
            scenario: Some(cell.spec.clone()),
        }
    }

    /// Opens a cell's campaign, materialising it on first touch. The
    /// spec is a pure function of the persisted matrix, so a cell created
    /// during a later resume is identical to one created up front.
    fn cell_campaign(&self, cell: &ScenarioCell) -> Result<Campaign, CampaignError> {
        let dir = self.cell_dir(cell);
        let campaign = if dir.join("campaign.json").exists() {
            Campaign::open(dir)?
        } else {
            Campaign::create(dir, self.cell_spec(cell))?
        };
        Ok(campaign.with_threads(self.threads))
    }

    /// Runs pending cells (subject to `limits`, whose `max_jobs` bounds
    /// the total jobs landed across cells in this call) and returns the
    /// status afterwards. When the last cell completes, the merged
    /// detection-rate report is written to `report.json`.
    ///
    /// Kill-anywhere resume: call again after any interruption and the
    /// campaign continues; the eventual merged report is byte-identical
    /// to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error, plus persistence errors of
    /// the scenario directory itself.
    pub fn run(&self, limits: &CampaignLimits) -> Result<ScenarioStatus, CampaignError> {
        let _span = clockmark_obs::span("scenario.run")
            .field("cells", self.cells().len())
            .field("jobs", self.cells().len() * self.matrix.traces.len());
        let mut budget = limits.max_jobs;
        for cell in self.cells() {
            if budget == Some(0) {
                break;
            }
            let campaign = self.cell_campaign(&cell)?;
            let before = campaign.status()?.completed;
            if before == self.matrix.traces.len() {
                continue;
            }
            let cell_limits = CampaignLimits {
                max_jobs: budget,
                interrupt_job_after_cycles: limits.interrupt_job_after_cycles,
            };
            let status = campaign.run(&cell_limits)?;
            if let Some(remaining) = budget {
                budget = Some(remaining.saturating_sub(status.completed - before));
            }
        }

        let status = self.status()?;
        if status.is_complete() {
            let report = self.report()?;
            write_atomic(
                &self.report_path(),
                format!("{}\n", report.encode()).as_bytes(),
            )?;
        }
        Ok(status)
    }

    /// Computes the current status from disk. Cells not yet materialised
    /// count as fully pending.
    ///
    /// # Errors
    ///
    /// Returns the persistence errors of any materialised cell.
    pub fn status(&self) -> Result<ScenarioStatus, CampaignError> {
        let cells = self.cells();
        let per_cell = self.matrix.traces.len();
        let mut status = ScenarioStatus {
            cells_total: cells.len(),
            cells_complete: 0,
            jobs_total: cells.len() * per_cell,
            jobs_completed: 0,
            detected: 0,
        };
        for cell in &cells {
            let dir = self.cell_dir(cell);
            if !dir.join("campaign.json").exists() {
                continue;
            }
            let campaign = Campaign::open(dir)?;
            let cell_status = campaign.status()?;
            status.jobs_completed += cell_status.completed;
            status.detected += cell_status.detected;
            if cell_status.is_complete() {
                status.cells_complete += 1;
            }
        }
        Ok(status)
    }

    /// Builds the merged report. Fails until every cell has completed.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Incomplete`] while cells are pending,
    /// plus the persistence errors of the cell campaigns.
    pub fn report(&self) -> Result<ScenarioReport, CampaignError> {
        let mut rows = Vec::new();
        for cell in self.cells() {
            let dir = self.cell_dir(&cell);
            if !dir.join("campaign.json").exists() {
                return Err(CampaignError::Incomplete {
                    completed: rows.len(),
                    total: self.cells().len(),
                });
            }
            let campaign = Campaign::open(dir)?;
            let report: CampaignReport = campaign.report()?;
            rows.push(ScenarioCellReport {
                cell: cell.id.clone(),
                attack: cell.spec.attack.kind().to_owned(),
                defense: cell.spec.defense.kind().to_owned(),
                snr: cell.spec.snr,
                total: report.outcomes.len(),
                detected: report.detected(),
            });
        }
        Ok(ScenarioReport {
            algo: self.matrix.algo,
            cells: rows,
        })
    }
}

// ---------------------------------------------------------------------------
// The per-job pipeline: defense embedding, attack, SNR noise, verification.
// ---------------------------------------------------------------------------

/// The verdict of one informed spectrum check: the correlation at the
/// *expected* rotation, z-scored against the whole spectrum.
struct InformedCheck {
    detected: bool,
    expected: usize,
    rho: f64,
    floor: f64,
    ratio: f64,
    zscore: f64,
}

fn informed_check(rho: &[f64], expected: usize, min_zscore: f64) -> InformedCheck {
    // Robust z-score: centre and spread come from the median and the MAD
    // (scaled to σ-equivalent) rather than mean/std, so an attacker who
    // plants decoy peaks elsewhere in the spectrum cannot inflate the
    // dispersion estimate and drown a genuine peak.
    let mut sorted = rho.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<f64> = rho.iter().map(|r| (r - median).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let mad = deviations[deviations.len() / 2];
    let spread = if mad > 0.0 {
        1.4826 * mad
    } else {
        let n = rho.len() as f64;
        let mean = rho.iter().sum::<f64>() / n;
        (rho.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n).sqrt()
    };
    let peak = rho[expected];
    let zscore = if spread > 0.0 {
        (peak - median) / spread
    } else {
        0.0
    };
    let floor = rho
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != expected)
        .map(|(_, r)| r.abs())
        .fold(0.0f64, f64::max);
    InformedCheck {
        detected: peak > 0.0 && zscore >= min_zscore,
        expected,
        rho: peak,
        floor,
        ratio: peak / floor.max(1e-12),
        zscore,
    }
}

impl InformedCheck {
    /// Folds the check into a [`DetectionResult`] with an overriding
    /// composite verdict (majority vote, challenge agreement, …).
    fn into_result(self, detected: bool) -> DetectionResult {
        DetectionResult {
            detected,
            peak_rotation: self.expected,
            peak_rho: self.rho,
            floor_max_abs: self.floor,
            ratio: self.ratio,
            zscore: self.zscore,
        }
    }
}

/// One period of the extra m-sequence a [`DefenseSpec::MultiWatermark`]
/// width contributes.
fn extra_pattern(width: u32) -> Result<Vec<bool>, CpaError> {
    let mut lfsr = Lfsr::maximal(width).map_err(|_| CpaError::ConstantPattern)?;
    let period = lfsr.period_hint().unwrap_or(0) as usize;
    Ok((0..period).map(|_| lfsr.next_bit()).collect())
}

/// The deterministic embed/verify schedule a defense expands to for one
/// job of `len` cycles.
enum DefensePlan {
    /// Plain detection of the native watermark; nothing embedded.
    Undefended,
    /// Coexisting watermarks: `(pattern, phase)` pairs, primary first.
    Multi { marks: Vec<(Vec<bool>, usize)> },
    /// Phase-hopping overlay of the primary pattern: per-dwell phases.
    Hopping { dwell: usize, phases: Vec<usize> },
    /// Challenge-response: base phase, commanded delta, split point.
    Challenge {
        phase: usize,
        delta: usize,
        split: usize,
    },
}

impl DefensePlan {
    fn new(
        defense: &DefenseSpec,
        pattern: &[bool],
        seed: u64,
        len: usize,
    ) -> Result<Self, CpaError> {
        let period = pattern.len().max(1);
        Ok(match defense {
            DefenseSpec::None => DefensePlan::Undefended,
            DefenseSpec::MultiWatermark { extra_widths } => {
                let mut marks = vec![(
                    pattern.to_vec(),
                    (mix_seed(seed, 0) % period as u64) as usize,
                )];
                for (k, &width) in extra_widths.iter().enumerate() {
                    let extra = extra_pattern(width)?;
                    let phase = (mix_seed(seed, 1 + k as u64) % extra.len().max(1) as u64) as usize;
                    marks.push((extra, phase));
                }
                DefensePlan::Multi { marks }
            }
            DefenseSpec::SeedHopping { dwell_cycles } => {
                let dwell = (*dwell_cycles as usize).max(1);
                let segments = len.div_ceil(dwell).max(1);
                let phases = (0..segments)
                    .map(|s| (mix_seed(seed, s as u64) % period as u64) as usize)
                    .collect();
                DefensePlan::Hopping { dwell, phases }
            }
            DefenseSpec::ChallengeResponse { phase_delta } => DefensePlan::Challenge {
                phase: (mix_seed(seed, 0) % period as u64) as usize,
                delta: (*phase_delta as usize) % period,
                split: len / 2,
            },
        })
    }

    /// Overlays the defended device's emission onto the stored trace.
    fn embed(&self, pattern: &[bool], amplitude: f64, samples: &mut [f64]) {
        let period = pattern.len().max(1);
        match self {
            DefensePlan::Undefended => {}
            DefensePlan::Multi { marks } => {
                for (mark, phase) in marks {
                    let p = mark.len().max(1);
                    for (i, w) in samples.iter_mut().enumerate() {
                        if mark[(i + phase) % p] {
                            *w += amplitude;
                        }
                    }
                }
            }
            DefensePlan::Hopping { dwell, phases } => {
                for (i, w) in samples.iter_mut().enumerate() {
                    let phase = phases[(i / dwell).min(phases.len() - 1)];
                    if pattern[(i + phase) % period] {
                        *w += amplitude;
                    }
                }
            }
            DefensePlan::Challenge {
                phase,
                delta,
                split,
            } => {
                for (i, w) in samples.iter_mut().enumerate() {
                    let shift = if i < *split { *phase } else { phase + delta };
                    if pattern[(i + shift) % period] {
                        *w += amplitude;
                    }
                }
            }
        }
    }

    /// Runs the defense's decision procedure over the (attacked, noisy)
    /// samples.
    fn verify(
        &self,
        pattern: &[bool],
        criterion: &DetectionCriterion,
        algo: CpaAlgo,
        samples: &[f64],
    ) -> Result<DetectionResult, CpaError> {
        let period = pattern.len().max(1);
        let facade = |p: &[bool]| {
            Detector::with_options(
                p,
                DetectOptions::default()
                    .with_algo(algo)
                    .with_criterion(*criterion),
            )
        };
        match self {
            // The undefended verifier scans all rotations with the plain
            // criterion — peak ratio and z-score — like any campaign job.
            DefensePlan::Undefended => facade(pattern)?.detect(samples),
            // Majority vote over the coexisting watermarks, each checked
            // at its own (known) embedding phase. The reported statistics
            // are the primary watermark's.
            DefensePlan::Multi { marks } => {
                let mut votes = 0usize;
                let mut primary = None;
                for (mark, phase) in marks {
                    let spectrum = facade(mark)?.spectrum(samples)?;
                    // Embedding `mark[(i + phase) % P]` is exactly the
                    // detector's rotation-`phase` hypothesis.
                    let expected = phase % mark.len().max(1);
                    let check = informed_check(spectrum.rho(), expected, criterion.min_zscore);
                    if check.detected {
                        votes += 1;
                    }
                    if primary.is_none() {
                        primary = Some(check);
                    }
                }
                let majority = votes >= marks.len().div_ceil(2);
                Ok(primary
                    .expect("at least the primary mark")
                    .into_result(majority))
            }
            // Every dwell segment is detected independently at its own
            // scheduled phase; majority of segments must agree. A decoy
            // peak at any fixed rotation cannot track the hops.
            DefensePlan::Hopping { dwell, phases } => {
                let mut votes = 0usize;
                let mut counted = 0usize;
                let mut first = None;
                let det = facade(pattern)?;
                for (s, &phase) in phases.iter().enumerate() {
                    let start = s * dwell;
                    let end = ((s + 1) * dwell).min(samples.len());
                    if end.saturating_sub(start) < period {
                        continue; // tail shorter than one period: no vote
                    }
                    let spectrum = det.spectrum(&samples[start..end])?;
                    let expected = (start + phase) % period;
                    let check = informed_check(spectrum.rho(), expected, criterion.min_zscore);
                    counted += 1;
                    if check.detected {
                        votes += 1;
                    }
                    if first.is_none() {
                        first = Some(check);
                    }
                }
                match first {
                    Some(check) => {
                        let majority = counted > 0 && votes >= counted.div_ceil(2);
                        Ok(check.into_result(majority))
                    }
                    // Trace shorter than one dwell period: fall back to a
                    // single whole-trace window at the first phase.
                    None => {
                        let spectrum = det.spectrum(samples)?;
                        let expected = phases.first().copied().unwrap_or(0) % period;
                        let check = informed_check(spectrum.rho(), expected, criterion.min_zscore);
                        let detected = check.detected;
                        Ok(check.into_result(detected))
                    }
                }
            }
            // SIGNED-style interrogation: the response window must show
            // exactly the commanded phase change. A forged trace replays
            // the pre-challenge phase and fails the second check.
            DefensePlan::Challenge {
                phase,
                delta,
                split,
            } => {
                let det = facade(pattern)?;
                let (challenge, response) = samples.split_at((*split).min(samples.len()));
                if challenge.len() < period || response.len() < period {
                    // Too short to interrogate: report undetected with
                    // whatever the challenge window shows.
                    let spectrum = det.spectrum(samples)?;
                    let expected = phase % period;
                    let check = informed_check(spectrum.rho(), expected, criterion.min_zscore);
                    return Ok(check.into_result(false));
                }
                // Window 1 carries pattern[(i + phase) % P] from offset 0:
                // the detector reports rotation `phase`. Window 2 starts
                // at `split` with shift `phase + delta`, so its rotation
                // is `(split + phase + delta) % P`.
                let s1 = det.spectrum(challenge)?;
                let e1 = phase % period;
                let c1 = informed_check(s1.rho(), e1, criterion.min_zscore);
                let s2 = det.spectrum(response)?;
                let e2 = (split + phase + delta) % period;
                let c2 = informed_check(s2.rho(), e2, criterion.min_zscore);
                let answered = c1.detected && c2.detected;
                Ok(c1.into_result(answered))
            }
        }
    }
}

/// Runs the full per-job scenario pipeline over a buffered trace and
/// returns the defense's verdict. Pure in `(spec, pattern, criterion,
/// algo, job_index, samples)` — the property every resume guarantee in
/// this module rests on.
pub(crate) fn run_scenario_detection(
    spec: &ScenarioSpec,
    pattern: &[bool],
    criterion: &DetectionCriterion,
    algo: CpaAlgo,
    job_index: usize,
    samples: &mut Vec<f64>,
) -> Result<DetectionResult, CpaError> {
    let job_seed = mix_seed(spec.seed, job_index as u64);
    let overlay_seed = mix_seed(job_seed, 1);
    let attack_seed = mix_seed(job_seed, 2);
    let noise_seed = mix_seed(job_seed, 3);

    // 1. The defended device emits its overlay watermark(s).
    let plan = DefensePlan::new(&spec.defense, pattern, overlay_seed, samples.len())?;
    plan.embed(pattern, spec.overlay_amplitude(), samples);

    // 2. The adversary transforms the capture.
    let attack = spec.attack.build();
    attack.apply(
        &AttackContext {
            seed: attack_seed,
            pattern,
        },
        samples,
    );

    // 3. The SNR axis degrades the measurement.
    let sigma = spec.added_noise_sigma();
    if sigma > 0.0 {
        for (i, w) in samples.iter_mut().enumerate() {
            *w += sigma * hash_gaussian(noise_seed, i as u64);
        }
    }

    // 4. The verifier decides.
    plan.verify(pattern, criterion, algo, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern() -> Vec<bool> {
        let mut lfsr = Lfsr::maximal(6).expect("width 6");
        (0..lfsr.period_hint().expect("maximal period"))
            .map(|_| lfsr.next_bit())
            .collect()
    }

    /// A native-marked trace like the corpus builder writes: pattern at a
    /// phase, amplitude, deterministic noise.
    fn marked(
        pattern: &[bool],
        cycles: usize,
        phase: usize,
        amp: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        (0..cycles)
            .map(|i| {
                let base = if pattern[(i + phase) % pattern.len()] {
                    amp
                } else {
                    0.0
                };
                1.0 + base + noise * hash_gaussian(seed, i as u64)
            })
            .collect()
    }

    fn spec(attack: AttackSpec, defense: DefenseSpec) -> ScenarioSpec {
        ScenarioSpec {
            attack,
            defense,
            snr: 1.0,
            amplitude_watts: 0.4,
            noise_watts: 0.05,
            seed: 77,
        }
    }

    fn detect(spec: &ScenarioSpec, samples: &[f64]) -> DetectionResult {
        let pattern = pattern();
        let mut buffered = samples.to_vec();
        run_scenario_detection(
            spec,
            &pattern,
            &DetectionCriterion::default(),
            CpaAlgo::Folded,
            0,
            &mut buffered,
        )
        .expect("pipeline runs")
    }

    #[test]
    fn pipeline_is_deterministic() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 64, 3, 0.4, 0.05, 5);
        for attack in AttackSpec::all_defaults() {
            for defense in DefenseSpec::all_defaults() {
                let s = spec(attack.clone(), defense.clone());
                let a = detect(&s, &trace);
                let b = detect(&s, &trace);
                assert_eq!(a, b, "{attack:?} x {defense:?}");
            }
        }
    }

    #[test]
    fn undefended_marked_trace_detects_without_attack() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 128, 3, 0.4, 0.05, 5);
        let result = detect(&spec(AttackSpec::None, DefenseSpec::None), &trace);
        assert!(result.detected);
    }

    #[test]
    fn jamming_defeats_plain_detection_but_not_informed_defenses() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 128, 3, 0.4, 0.05, 5);
        let jam = AttackSpec::Jamming {
            amplitude_watts: 0.4,
        };
        let plain = detect(&spec(jam.clone(), DefenseSpec::None), &trace);
        assert!(!plain.detected, "decoy peak kills the ratio criterion");
        let hopping = detect(
            &spec(
                jam.clone(),
                DefenseSpec::SeedHopping {
                    dwell_cycles: 63 * 16,
                },
            ),
            &trace,
        );
        assert!(hopping.detected, "a fixed decoy cannot track the hops");
        let multi = detect(
            &spec(
                jam,
                DefenseSpec::MultiWatermark {
                    extra_widths: vec![5, 7],
                },
            ),
            &trace,
        );
        assert!(multi.detected, "informed phase checks see past the decoy");
    }

    #[test]
    fn replay_fools_plain_detection_but_fails_the_challenge() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 128, 3, 0.4, 0.05, 5);
        let replay = AttackSpec::Replay {
            estimate_cycles: 63 * 64,
            noise_watts: 0.02,
        };
        let plain = detect(&spec(replay.clone(), DefenseSpec::None), &trace);
        assert!(
            plain.detected,
            "the forgery carries the estimated watermark"
        );
        let challenged = detect(
            &spec(replay, DefenseSpec::ChallengeResponse { phase_delta: 17 }),
            &trace,
        );
        assert!(
            !challenged.detected,
            "a frozen-phase forgery cannot answer the phase command"
        );
    }

    #[test]
    fn challenge_response_accepts_an_honest_device() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 128, 3, 0.4, 0.05, 5);
        let result = detect(
            &spec(
                AttackSpec::None,
                DefenseSpec::ChallengeResponse { phase_delta: 17 },
            ),
            &trace,
        );
        assert!(
            result.detected,
            "the defended device answers its own challenge"
        );
    }

    #[test]
    fn gate_disable_strips_the_primary_but_multi_watermark_survives() {
        let pattern = pattern();
        let trace = marked(&pattern, 63 * 128, 3, 0.4, 0.05, 5);
        let strip = AttackSpec::GateDisable {
            fraction: 1.0,
            estimate_cycles: u64::MAX,
        };
        let plain = detect(&spec(strip.clone(), DefenseSpec::None), &trace);
        assert!(!plain.detected, "full disable removes the period-P profile");
        let multi = detect(
            &spec(
                strip,
                DefenseSpec::MultiWatermark {
                    extra_widths: vec![5, 7],
                },
            ),
            &trace,
        );
        assert!(
            multi.detected,
            "watermarks at other periods survive a period-P subtraction"
        );
    }

    #[test]
    fn matrix_round_trips_and_expands_deterministically() {
        let mut matrix =
            ScenarioMatrix::new("/tmp/corpus", pattern(), vec!["a".into(), "b".into()]);
        // Full-range u64: the seed must survive the JSON round-trip
        // without being squeezed through an f64.
        matrix.seed = u64::MAX - 12;
        let text = matrix.encode();
        let back = ScenarioMatrix::decode(&text).expect("round trips");
        assert_eq!(back, matrix);
        let cells = matrix.cells();
        assert_eq!(
            cells.len(),
            matrix.attacks.len() * matrix.defenses.len() * matrix.snrs.len()
        );
        // Cell seeds are all distinct.
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.spec.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len());
        // Ids are unique and stable.
        assert_eq!(cells[0].id, "c000_none_none");
        assert!(cells.iter().any(|c| c.spec.is_identity()));
    }

    #[test]
    fn matrix_decode_is_tolerant_of_minimal_input() {
        let minimal = r#"{"corpus":"/c","pattern":"101","traces":["t0"]}"#;
        let matrix = ScenarioMatrix::decode(minimal).expect("tolerant");
        assert_eq!(matrix.attacks, AttackSpec::all_defaults());
        assert_eq!(matrix.defenses, DefenseSpec::all_defaults());
        assert_eq!(matrix.snrs, vec![1.0]);
    }

    #[test]
    fn matrix_validation_rejects_empty_axes_and_short_dwells() {
        let mut matrix = ScenarioMatrix::new("/c", pattern(), vec!["t".into()]);
        matrix.attacks.clear();
        assert!(matrix.validate().is_err());
        let mut matrix = ScenarioMatrix::new("/c", pattern(), vec!["t".into()]);
        matrix.defenses = vec![DefenseSpec::SeedHopping { dwell_cycles: 3 }];
        assert!(matrix.validate().is_err());
    }

    #[test]
    fn scenario_report_encoding_is_deterministic_and_queryable() {
        let report = ScenarioReport {
            algo: CpaAlgo::Folded,
            cells: vec![
                ScenarioCellReport {
                    cell: "c000_none_none".into(),
                    attack: "none".into(),
                    defense: "none".into(),
                    snr: 1.0,
                    total: 4,
                    detected: 3,
                },
                ScenarioCellReport {
                    cell: "c001_jamming_none".into(),
                    attack: "jamming".into(),
                    defense: "none".into(),
                    snr: 0.5,
                    total: 4,
                    detected: 0,
                },
            ],
        };
        assert_eq!(report.encode(), report.encode());
        assert!(report.encode().contains("\"rate\":0.75"));
        let row = report.cell("jamming", "none", 0.5).expect("row exists");
        assert_eq!(row.detected, 0);
        assert!(report.cell("dvfs", "none", 1.0).is_none());
    }
}
