use crate::ClockmarkError;
use clockmark_netlist::{
    CellId, ClockInput, DataSource, GroupId, Netlist, RegisterConfig, SignalExpr, SignalId,
};
use clockmark_seq::{maximal_taps, CircularShiftRegister, GoldCode, Lfsr, SequenceGenerator};

/// Configuration of the watermark generation circuit (WGC).
///
/// The test chips contain "two sequence generators which can be configured
/// as either 32-bit Linear Feedback Shift Registers or simple 32-bit
/// circular shift registers"; the silicon experiments used a single 12-bit
/// maximal LFSR ([`WgcConfig::paper`]).
///
/// A `WgcConfig` can be materialised two ways, guaranteed bit-identical:
///
/// - [`software_generator`](WgcConfig::software_generator) — the detector's
///   model of the sequence (used to build the CPA vector `X`), and
/// - [`build_structural`](WgcConfig::build_structural) — actual registers
///   and XOR feedback inside a [`Netlist`], whose power and removability
///   the experiments measure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WgcConfig {
    /// A maximal-length LFSR of the given width, seeded with `seed`.
    MaxLengthLfsr {
        /// Register width in bits (2..=32).
        width: u32,
        /// Non-zero initial state.
        seed: u32,
    },
    /// A circular shift register rotating `pattern`.
    CircularShift {
        /// The rotated pattern (the output repeats it verbatim).
        pattern: Vec<bool>,
    },
    /// A Gold code: the XOR of a tabulated preferred pair of LFSRs.
    ///
    /// Gold families have bounded cross-correlation, so several vendors can
    /// watermark blocks on the same die and each detector still resolves
    /// only its own peak — the multi-watermark extension experiment.
    Gold {
        /// Pair width (only widths tabulated by
        /// [`GoldCode::preferred`](clockmark_seq::GoldCode::preferred)).
        width: u32,
        /// Seed of the first component.
        seed_a: u32,
        /// Seed of the second component (distinct phases select distinct
        /// family members).
        seed_b: u32,
    },
}

/// The structural realisation of a WGC inside a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralWgc {
    /// The raw `WMARK` output signal (pre-edge value of the output
    /// register).
    pub output: SignalId,
    /// The WGC's state registers.
    pub cells: Vec<CellId>,
}

impl WgcConfig {
    /// The paper's configuration: a 12-bit maximal LFSR (period 4,095).
    pub fn paper() -> Self {
        WgcConfig::MaxLengthLfsr { width: 12, seed: 1 }
    }

    /// The sequence period.
    ///
    /// # Errors
    ///
    /// Returns [`ClockmarkError::Seq`] for an invalid configuration.
    pub fn period(&self) -> Result<usize, ClockmarkError> {
        match self {
            WgcConfig::MaxLengthLfsr { width, seed } => {
                let _ = Lfsr::maximal_with_seed(*width, *seed)?;
                Ok(((1u64 << width) - 1) as usize)
            }
            WgcConfig::CircularShift { pattern } => {
                if pattern.is_empty() {
                    return Err(ClockmarkError::Seq(clockmark_seq::SeqError::EmptyPattern));
                }
                Ok(pattern.len())
            }
            WgcConfig::Gold {
                width,
                seed_a,
                seed_b,
            } => {
                let _ = GoldCode::preferred(*width, *seed_a, *seed_b)?;
                Ok(((1u64 << width) - 1) as usize)
            }
        }
    }

    /// Registers the WGC occupies (12 for the paper configuration — the
    /// basis of the "98 % area reduction" headline).
    pub fn register_count(&self) -> u32 {
        match self {
            WgcConfig::MaxLengthLfsr { width, .. } => *width,
            WgcConfig::CircularShift { pattern } => pattern.len() as u32,
            WgcConfig::Gold { width, .. } => 2 * width,
        }
    }

    /// The detector-side software model of the sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ClockmarkError::Seq`] for an invalid configuration.
    pub fn software_generator(&self) -> Result<Box<dyn SequenceGenerator>, ClockmarkError> {
        Ok(match self {
            WgcConfig::MaxLengthLfsr { width, seed } => {
                Box::new(Lfsr::maximal_with_seed(*width, *seed)?)
            }
            WgcConfig::CircularShift { pattern } => Box::new(CircularShiftRegister::new(pattern)?),
            WgcConfig::Gold {
                width,
                seed_a,
                seed_b,
            } => Box::new(GoldCode::preferred(*width, *seed_a, *seed_b)?),
        })
    }

    /// One full period of the expected `WMARK` sequence — the CPA model
    /// vector `X`.
    ///
    /// # Errors
    ///
    /// Returns [`ClockmarkError::Seq`] for an invalid configuration.
    pub fn expected_pattern(&self) -> Result<Vec<bool>, ClockmarkError> {
        let period = self.period()?;
        let mut generator = self.software_generator()?;
        Ok((0..period).map(|_| generator.next_bit()).collect())
    }

    /// Builds the WGC structurally: state registers, shift wiring, XOR
    /// feedback (for the LFSR form) and the `WMARK` output signal.
    ///
    /// The registers are clocked from `clock` (ungated — the WGC free-runs,
    /// as in the test chips) and placed in `group` for power accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ClockmarkError::Seq`] for an invalid configuration and
    /// propagates netlist errors.
    pub fn build_structural(
        &self,
        netlist: &mut Netlist,
        group: GroupId,
        clock: ClockInput,
    ) -> Result<StructuralWgc, ClockmarkError> {
        match self {
            WgcConfig::MaxLengthLfsr { width, seed } => {
                // Validate width/seed once via the software model.
                let _ = Lfsr::maximal_with_seed(*width, *seed)?;
                let taps = maximal_taps(*width)?;
                let (cells, q0) =
                    build_lfsr_chain(netlist, group, clock, *width, taps, *seed, "wgc")?;
                let output = netlist.add_signal("wmark_raw", SignalExpr::RegOutput(q0))?;
                Ok(StructuralWgc { output, cells })
            }
            WgcConfig::Gold {
                width,
                seed_a,
                seed_b,
            } => {
                // Validate via the software model (width/seeds/pair).
                let _ = GoldCode::preferred(*width, *seed_a, *seed_b)?;
                let (taps_a, taps_b) = GoldCode::preferred_taps(*width)?;
                let (mut cells, a0) =
                    build_lfsr_chain(netlist, group, clock, *width, taps_a, *seed_a, "gold_a")?;
                let (cells_b, b0) =
                    build_lfsr_chain(netlist, group, clock, *width, taps_b, *seed_b, "gold_b")?;
                cells.extend(cells_b);
                let qa = netlist.add_signal("gold_qa", SignalExpr::RegOutput(a0))?;
                let qb = netlist.add_signal("gold_qb", SignalExpr::RegOutput(b0))?;
                let output = netlist.add_signal("wmark_raw", SignalExpr::Xor(qa, qb))?;
                Ok(StructuralWgc { output, cells })
            }
            WgcConfig::CircularShift { pattern } => {
                if pattern.is_empty() {
                    return Err(ClockmarkError::Seq(clockmark_seq::SeqError::EmptyPattern));
                }
                let n = pattern.len();
                let cells: Vec<CellId> = (0..n)
                    .map(|i| {
                        netlist.add_register(group, RegisterConfig::new(clock).init(pattern[i]))
                    })
                    .collect::<Result<_, _>>()?;
                // Ring: s[i] <= s[i+1], s[n-1] <= s[0].
                for i in 0..n - 1 {
                    netlist.set_register_data(cells[i], DataSource::ShiftFrom(cells[i + 1]))?;
                }
                netlist.set_register_data(cells[n - 1], DataSource::ShiftFrom(cells[0]))?;

                let output = netlist.add_signal("wmark_raw", SignalExpr::RegOutput(cells[0]))?;
                Ok(StructuralWgc { output, cells })
            }
        }
    }
}

/// Builds one right-shift Fibonacci LFSR structurally: `width` registers
/// shifting towards index 0, XOR feedback over state bits `width − tap`
/// entering at the top register. Returns the state cells and the output
/// register (state bit 0), matching `clockmark_seq::Lfsr` bit-for-bit.
fn build_lfsr_chain(
    netlist: &mut Netlist,
    group: GroupId,
    clock: ClockInput,
    width: u32,
    taps: &[u32],
    seed: u32,
    prefix: &str,
) -> Result<(Vec<CellId>, CellId), ClockmarkError> {
    let n = width as usize;
    let cells: Vec<CellId> = (0..n)
        .map(|i| {
            let init = (seed >> i) & 1 != 0;
            netlist.add_register(group, RegisterConfig::new(clock).init(init))
        })
        .collect::<Result<_, _>>()?;
    for i in 0..n - 1 {
        netlist.set_register_data(cells[i], DataSource::ShiftFrom(cells[i + 1]))?;
    }

    let mut feedback: Option<SignalId> = None;
    for &tap in taps {
        let bit = (width - tap) as usize;
        let q = netlist.add_signal(
            &format!("{prefix}_q{bit}"),
            SignalExpr::RegOutput(cells[bit]),
        )?;
        feedback = Some(match feedback {
            None => q,
            Some(acc) => {
                netlist.add_signal(&format!("{prefix}_fb_x{bit}"), SignalExpr::Xor(acc, q))?
            }
        });
    }
    let feedback = feedback.expect("tap lists are validated non-empty");
    netlist.set_register_data(cells[n - 1], DataSource::Signal(feedback))?;
    let out = cells[0];
    Ok((cells, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_sim::CycleSim;

    fn structural_stream(config: &WgcConfig, len: usize) -> Vec<bool> {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let wgc = config
            .build_structural(&mut netlist, GroupId::TOP, clk.into())
            .expect("builds");
        let mut sim = CycleSim::new(&netlist).expect("valid");
        let mut bits = Vec::with_capacity(len);
        for _ in 0..len {
            sim.step();
            bits.push(sim.signal_value(wgc.output));
        }
        bits
    }

    fn software_stream(config: &WgcConfig, len: usize) -> Vec<bool> {
        let mut generator = config.software_generator().expect("valid");
        (0..len).map(|_| generator.next_bit()).collect()
    }

    #[test]
    fn structural_lfsr_matches_software_for_all_small_widths() {
        for width in 2..=10u32 {
            let config = WgcConfig::MaxLengthLfsr { width, seed: 1 };
            let len = ((1usize << width) - 1) * 2;
            assert_eq!(
                structural_stream(&config, len),
                software_stream(&config, len),
                "width {width} diverges"
            );
        }
    }

    #[test]
    fn structural_lfsr_matches_software_with_nontrivial_seed() {
        let config = WgcConfig::MaxLengthLfsr {
            width: 8,
            seed: 0xA7,
        };
        assert_eq!(
            structural_stream(&config, 600),
            software_stream(&config, 600)
        );
    }

    #[test]
    fn paper_configuration_period_and_registers() {
        let config = WgcConfig::paper();
        assert_eq!(config.period().expect("valid"), 4095);
        assert_eq!(config.register_count(), 12);
        let pattern = config.expected_pattern().expect("valid");
        assert_eq!(pattern.len(), 4095);
        // Maximal sequence: 2^11 ones.
        assert_eq!(pattern.iter().filter(|&&b| b).count(), 2048);
    }

    #[test]
    fn structural_gold_matches_software() {
        for (width, seed_a, seed_b) in [(5u32, 1u32, 1u32), (7, 1, 9), (9, 5, 17)] {
            let config = WgcConfig::Gold {
                width,
                seed_a,
                seed_b,
            };
            let len = ((1usize << width) - 1) + 50;
            assert_eq!(
                structural_stream(&config, len),
                software_stream(&config, len),
                "gold width {width} seeds {seed_a}/{seed_b} diverge"
            );
        }
    }

    #[test]
    fn gold_config_accounting() {
        let config = WgcConfig::Gold {
            width: 7,
            seed_a: 1,
            seed_b: 3,
        };
        assert_eq!(config.period().expect("valid"), 127);
        assert_eq!(config.register_count(), 14);
        assert!(matches!(
            WgcConfig::Gold {
                width: 8,
                seed_a: 1,
                seed_b: 1
            }
            .period(),
            Err(ClockmarkError::Seq(
                clockmark_seq::SeqError::NoPreferredPair { width: 8 }
            ))
        ));
    }

    #[test]
    fn structural_circular_matches_software() {
        let config = WgcConfig::CircularShift {
            pattern: vec![true, true, false, true, false, false],
        };
        assert_eq!(structural_stream(&config, 36), software_stream(&config, 36));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            WgcConfig::MaxLengthLfsr { width: 1, seed: 1 }.period(),
            Err(ClockmarkError::Seq(_))
        ));
        assert!(matches!(
            WgcConfig::MaxLengthLfsr { width: 8, seed: 0 }.software_generator(),
            Err(ClockmarkError::Seq(_))
        ));
        assert!(matches!(
            WgcConfig::CircularShift { pattern: vec![] }.expected_pattern(),
            Err(ClockmarkError::Seq(_))
        ));
    }

    #[test]
    fn structural_wgc_occupies_expected_registers() {
        let config = WgcConfig::paper();
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let group = netlist.add_group("wgc");
        let wgc = config
            .build_structural(&mut netlist, group, clk.into())
            .expect("builds");
        assert_eq!(wgc.cells.len(), 12);
        assert_eq!(netlist.register_count_in_group(group), 12);
    }
}
