use crate::{ClockmarkError, EmbeddedWatermark, WatermarkArchitecture};
use clockmark_cpa::{DetectionCriterion, DetectionResult, Detector, SpreadSpectrum};
use clockmark_measure::Acquisition;
use clockmark_netlist::Netlist;
use clockmark_power::{EnergyLibrary, Frequency, Power, PowerModel, PowerTrace};
use clockmark_sim::{CycleSim, SignalDriver};
use clockmark_soc::Soc;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which test chip provides the background activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipModel {
    /// No background — the watermark alone (useful for calibration).
    Bare,
    /// The Cortex-M0-class SoC running the Dhrystone-like benchmark.
    ChipI,
    /// Chip I plus the always-clocked dual Cortex-A5-class cluster.
    ChipII,
    /// Chip I running an explicit workload (workload-sensitivity studies).
    ChipIWith(clockmark_soc::Workload),
    /// Chip II running an explicit workload.
    ChipIIWith(clockmark_soc::Workload),
}

impl ChipModel {
    fn build(self) -> Result<Option<Soc>, ClockmarkError> {
        Ok(match self {
            ChipModel::Bare => None,
            ChipModel::ChipI => Some(Soc::chip_i()?),
            ChipModel::ChipII => Some(Soc::chip_ii()?),
            ChipModel::ChipIWith(workload) => Some(Soc::chip_i_with(workload)?),
            ChipModel::ChipIIWith(workload) => Some(Soc::chip_ii_with(workload)?),
        })
    }
}

/// A complete detection experiment: embed → simulate → digitise → correlate.
///
/// Reproduces the measurement procedure of Section IV: the chip runs its
/// workload with the watermark circuit active (or disabled, for the
/// control), the oscilloscope averages 50 samples per clock cycle over
/// `cycles` cycles into the vector `Y`, and rotational CPA produces the
/// spread spectrum whose single peak (or absence) is the result.
///
/// ```
/// # fn main() -> Result<(), clockmark::ClockmarkError> {
/// use clockmark::{ClockModulationWatermark, Experiment, WgcConfig};
///
/// // A fast, reduced-noise experiment for CI-scale runs.
/// let experiment = Experiment::quick(20_000, 7);
/// let arch = ClockModulationWatermark {
///     wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
///     ..ClockModulationWatermark::paper()
/// };
/// let outcome = experiment.run(&arch)?;
/// assert!(outcome.detection.detected);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Background configuration.
    pub chip: ChipModel,
    /// Clock cycles in the measured vector `Y` (300,000 in the paper).
    pub cycles: usize,
    /// Device clock (10 MHz in the paper).
    pub f_clk: Frequency,
    /// Measurement chain.
    pub acquisition: Acquisition,
    /// Cell energy library.
    pub library: EnergyLibrary,
    /// Whether the watermark circuit is enabled (the paper's control
    /// experiments disable it).
    pub watermark_enabled: bool,
    /// Cycles the chip runs before the scope triggers; sets where the
    /// correlation peak lands in the spread spectrum.
    pub phase_offset: usize,
    /// RNG seed for noise and background (repetitions vary this).
    pub seed: u64,
    /// Peak-resolution rule.
    pub criterion: DetectionCriterion,
}

impl Experiment {
    /// The paper's chip-I experiment: 300,000 cycles at 10 MHz, full-noise
    /// chain, trigger offset placing the peak near rotation 3,800
    /// (Fig. 5a).
    pub fn paper_chip_i() -> Self {
        Experiment {
            chip: ChipModel::ChipI,
            cycles: 300_000,
            f_clk: Frequency::from_megahertz(10.0),
            acquisition: Acquisition::paper_chain(Frequency::from_megahertz(10.0)),
            library: EnergyLibrary::tsmc65ll(),
            watermark_enabled: true,
            phase_offset: 3_800,
            seed: 1,
            criterion: DetectionCriterion::default(),
        }
    }

    /// The paper's chip-II experiment (peak near rotation 2,400, Fig. 5c).
    pub fn paper_chip_ii() -> Self {
        Experiment {
            chip: ChipModel::ChipII,
            phase_offset: 2_400,
            ..Self::paper_chip_i()
        }
    }

    /// A reduced experiment for tests and quick demos: fewer cycles and a
    /// quieter probe (a bench-top low-noise setup) so detection works with
    /// short traces.
    pub fn quick(cycles: usize, seed: u64) -> Self {
        let mut acquisition = Acquisition::paper_chain(Frequency::from_megahertz(10.0));
        acquisition.scope = acquisition.scope.with_vertical_noise(15e-3);
        Experiment {
            chip: ChipModel::ChipI,
            cycles,
            f_clk: Frequency::from_megahertz(10.0),
            acquisition,
            library: EnergyLibrary::tsmc65ll(),
            watermark_enabled: true,
            phase_offset: 137,
            seed,
            criterion: DetectionCriterion::default(),
        }
    }

    /// Returns a copy with the watermark circuit disabled (the Fig. 5b/5d
    /// control).
    pub fn disabled(mut self) -> Self {
        self.watermark_enabled = false;
        self
    }

    /// Returns a copy with a different seed (for repetition studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the full pipeline for one architecture.
    ///
    /// # Errors
    ///
    /// Returns configuration errors eagerly and propagates substrate
    /// failures.
    pub fn run<A: WatermarkArchitecture + ?Sized>(
        &self,
        architecture: &A,
    ) -> Result<ExperimentOutcome, ClockmarkError> {
        if self.cycles == 0 {
            return Err(ClockmarkError::ZeroCycles);
        }

        // 1. Build the watermarked netlist.
        let (netlist, watermark) = {
            let _span = clockmark_obs::span("experiment.embed");
            let mut netlist = Netlist::new();
            let clk = netlist.add_clock_root("clk");
            let watermark = architecture.embed(&mut netlist, clk.into())?;
            (netlist, watermark)
        };
        self.run_embedded(&netlist, &watermark)
    }

    /// Runs the pipeline on an already-embedded watermark (used by the
    /// reuse scenario, where the caller also built the functional block).
    ///
    /// External signals other than the watermark enable are left undriven
    /// (they read as constant low); use
    /// [`run_embedded_with`](Experiment::run_embedded_with) to supply
    /// drivers for them.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn run_embedded(
        &self,
        netlist: &Netlist,
        watermark: &EmbeddedWatermark,
    ) -> Result<ExperimentOutcome, ClockmarkError> {
        self.run_embedded_with(netlist, watermark, Vec::new())
    }

    /// Runs the pipeline up to (and including) digitisation, returning
    /// the measured vector `Y` itself rather than its correlation — what
    /// a corpus build persists so detection can be replayed later,
    /// offline, and as many times as needed.
    ///
    /// [`run`](Experiment::run) is exactly this plus rotational CPA, so a
    /// stored measurement re-analysed with a
    /// [`Detector`](clockmark_cpa::Detector) — batch, streaming or via
    /// [`detect_trace`](clockmark_cpa::Detector::detect_trace) —
    /// reproduces the live outcome bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns configuration errors eagerly and propagates substrate
    /// failures.
    pub fn run_measured<A: WatermarkArchitecture + ?Sized>(
        &self,
        architecture: &A,
    ) -> Result<MeasuredRun, ClockmarkError> {
        if self.cycles == 0 {
            return Err(ClockmarkError::ZeroCycles);
        }
        let _span = clockmark_obs::span("experiment.measure")
            .field("cycles", self.cycles)
            .field("seed", self.seed);
        let (netlist, watermark) = {
            let _span = clockmark_obs::span("experiment.embed");
            let mut netlist = Netlist::new();
            let clk = netlist.add_clock_root("clk");
            let watermark = architecture.embed(&mut netlist, clk.into())?;
            (netlist, watermark)
        };
        self.measure_embedded_with(&netlist, &watermark, Vec::new())
    }

    /// Like [`run_embedded`](Experiment::run_embedded) but with additional
    /// external-signal drivers (e.g. the functional enables of a reused IP
    /// block).
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn run_embedded_with(
        &self,
        netlist: &Netlist,
        watermark: &EmbeddedWatermark,
        extra_drivers: Vec<(clockmark_netlist::SignalId, SignalDriver)>,
    ) -> Result<ExperimentOutcome, ClockmarkError> {
        if self.cycles == 0 {
            return Err(ClockmarkError::ZeroCycles);
        }
        let _run_span = clockmark_obs::span("experiment.run")
            .field("cycles", self.cycles)
            .field("seed", self.seed)
            .field("enabled", self.watermark_enabled);
        clockmark_obs::counter_add("experiment.runs", 1);
        let run = self.measure_embedded_with(netlist, watermark, extra_drivers)?;
        run.analyse(&self.criterion).map_err(ClockmarkError::from)
    }

    /// The shared measurement chain: simulate → price → add background →
    /// digitise. Both [`run_embedded_with`](Experiment::run_embedded_with)
    /// and [`run_measured`](Experiment::run_measured) end up here.
    fn measure_embedded_with(
        &self,
        netlist: &Netlist,
        watermark: &EmbeddedWatermark,
        extra_drivers: Vec<(clockmark_netlist::SignalId, SignalDriver)>,
    ) -> Result<MeasuredRun, ClockmarkError> {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // 2. Simulate the watermark circuit's switching activity.
        let activity = {
            let _span =
                clockmark_obs::span("experiment.simulate").field("phase_offset", self.phase_offset);
            let mut sim = CycleSim::new(netlist)?;
            sim.drive(
                watermark.enable,
                SignalDriver::Constant(self.watermark_enabled),
            )?;
            for (signal, driver) in extra_drivers {
                sim.drive(signal, driver)?;
            }
            for _ in 0..self.phase_offset {
                sim.step();
            }
            sim.run(self.cycles)?
        };

        // 3. Price it, including leakage of every register on the die.
        let _power_span = clockmark_obs::span("experiment.power");
        let model = PowerModel::new(self.library, self.f_clk);
        let mut chip_power = model.trace(&activity);
        chip_power.add_offset(model.static_power(netlist.register_count()));
        let watermark_power = model.group_trace(&activity, watermark.group);
        drop(_power_span);

        // 4. Add the SoC background.
        let _bg_span = clockmark_obs::span("experiment.background");
        let background = match self.chip.build()? {
            Some(mut soc) => soc.run(self.cycles, &mut rng)?,
            None => PowerTrace::constant(Power::ZERO, self.cycles),
        };
        let total = chip_power.checked_add(&background)?;
        drop(_bg_span);

        // 5. Digitise through the shunt + scope chain.
        let measured = self.acquisition.acquire(&total, &mut rng);

        Ok(MeasuredRun {
            measured,
            pattern: watermark.pattern.clone(),
            watermark_mean: watermark_power.mean(),
            watermark_peak: watermark_power.max().unwrap_or(Power::ZERO),
            background_mean: background.mean(),
            background_std: background.std_dev(),
            total_mean: total.mean(),
            cycles: self.cycles,
            expected_peak_rotation: self.phase_offset % watermark.period().max(1),
        })
    }
}

/// The digitised output of one experiment, before correlation.
///
/// Holds the measured per-cycle vector `Y` (what an oscilloscope capture
/// yields in the lab, and what a trace corpus stores on disk) together
/// with the watermark pattern and the power summary collected along the
/// way. Calling [`analyse`](MeasuredRun::analyse) finishes the job and is
/// bit-identical to having used [`Experiment::run`] directly.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The measured per-cycle vector `Y`.
    pub measured: clockmark_measure::MeasuredTrace,
    /// One period of the watermark sequence (the model vector `X`).
    pub pattern: Vec<bool>,
    /// Mean power of the watermark circuit over the run.
    pub watermark_mean: Power,
    /// Peak per-cycle power of the watermark circuit.
    pub watermark_peak: Power,
    /// Mean background (SoC) power.
    pub background_mean: Power,
    /// Cycle-to-cycle standard deviation of the background.
    pub background_std: Power,
    /// Mean total chip power.
    pub total_mean: Power,
    /// Cycles measured.
    pub cycles: usize,
    /// Where the peak should land given the trigger offset.
    pub expected_peak_rotation: usize,
}

impl MeasuredRun {
    /// Step 6 of the pipeline: rotational CPA against the expected
    /// sequence, turning the raw measurement into a detection verdict.
    ///
    /// The spectrum kernel is whatever the [`Detector`] facade resolves
    /// — the `CLOCKMARK_CPA_ALGO` override when set, else the work
    /// heuristic (FFT at paper scale, folded below). Every kernel
    /// reports a bit-identical peak, so the verdict does not depend on
    /// the choice (see `docs/cpa-fft.md`).
    ///
    /// # Errors
    ///
    /// Returns a [`CpaError`](clockmark_cpa::CpaError) when the
    /// measurement is too short for one watermark period or the pattern
    /// is degenerate.
    pub fn analyse(
        &self,
        criterion: &DetectionCriterion,
    ) -> Result<ExperimentOutcome, clockmark_cpa::CpaError> {
        let spectrum = Detector::new(&self.pattern)?.spectrum(self.measured.as_watts())?;
        let detection = spectrum.detect(criterion);
        if clockmark_obs::enabled() {
            clockmark_obs::counter_add("experiment.detections", u64::from(detection.detected));
            clockmark_obs::observe("detect.peak_rho_abs", detection.peak_rho.abs());
            clockmark_obs::observe("detect.margin", detection.ratio);
            clockmark_obs::observe("detect.zscore", detection.zscore);
        }

        let p_value = spectrum.peak_p_value(self.cycles);
        Ok(ExperimentOutcome {
            detection,
            p_value,
            spectrum,
            watermark_mean: self.watermark_mean,
            watermark_peak: self.watermark_peak,
            background_mean: self.background_mean,
            background_std: self.background_std,
            total_mean: self.total_mean,
            cycles: self.cycles,
            expected_peak_rotation: self.expected_peak_rotation,
        })
    }
}

/// Everything one experiment run produced.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The detection decision and its statistics.
    pub detection: DetectionResult,
    /// The probability that pure noise would produce a peak at least this
    /// large (see
    /// [`peak_false_positive_probability`](clockmark_cpa::peak_false_positive_probability)).
    pub p_value: f64,
    /// The full per-rotation spread spectrum (Fig. 5 panel data).
    pub spectrum: SpreadSpectrum,
    /// Mean power of the watermark circuit over the run.
    pub watermark_mean: Power,
    /// Peak per-cycle power of the watermark circuit.
    pub watermark_peak: Power,
    /// Mean background (SoC) power.
    pub background_mean: Power,
    /// Cycle-to-cycle standard deviation of the background.
    pub background_std: Power,
    /// Mean total chip power.
    pub total_mean: Power,
    /// Cycles measured.
    pub cycles: usize,
    /// Where the peak should land given the trigger offset.
    pub expected_peak_rotation: usize,
}

impl std::fmt::Display for ExperimentOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} (p = {:.2e})", self.detection, self.p_value)?;
        writeln!(
            f,
            "watermark: mean {} / peak {}; background: {} ± {}; total: {}",
            self.watermark_mean,
            self.watermark_peak,
            self.background_mean,
            self.background_std,
            self.total_mean,
        )?;
        write!(
            f,
            "cycles: {}; expected peak rotation: {}",
            self.cycles, self.expected_peak_rotation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockModulationWatermark, LoadCircuitWatermark, WgcConfig};

    fn small_arch() -> ClockModulationWatermark {
        ClockModulationWatermark {
            words: 32,
            regs_per_word: 32,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        }
    }

    #[test]
    fn quick_experiment_detects_and_places_the_peak() {
        let experiment = Experiment::quick(12_000, 3);
        let outcome = experiment.run(&small_arch()).expect("runs");
        assert!(outcome.detection.detected, "{outcome}");
        assert_eq!(
            outcome.detection.peak_rotation, outcome.expected_peak_rotation,
            "{outcome}"
        );
    }

    #[test]
    fn disabled_watermark_is_not_detected() {
        let experiment = Experiment::quick(12_000, 4).disabled();
        let outcome = experiment.run(&small_arch()).expect("runs");
        assert!(!outcome.detection.detected, "{outcome}");
    }

    #[test]
    fn watermark_power_matches_duty_cycle() {
        // Mean watermark power ≈ amplitude × duty (≈ 50 % for an
        // m-sequence) plus the small free-running WGC contribution.
        let experiment = Experiment::quick(8_000, 5);
        let outcome = experiment.run(&small_arch()).expect("runs");
        let model = PowerModel::new(EnergyLibrary::tsmc65ll(), experiment.f_clk);
        let amplitude = small_arch().signal_amplitude(&model);
        let duty_power = outcome.watermark_mean / amplitude;
        assert!(
            (0.45..0.65).contains(&duty_power),
            "duty-scaled power {duty_power}"
        );
        assert!(outcome.watermark_peak >= amplitude * 0.99);
    }

    #[test]
    fn load_circuit_is_also_detectable() {
        let experiment = Experiment::quick(12_000, 6);
        let arch = LoadCircuitWatermark {
            load_registers: 576,
            regs_per_gate: 32,
            clock_gated: true,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        };
        let outcome = experiment.run(&arch).expect("runs");
        assert!(outcome.detection.detected, "{outcome}");
    }

    #[test]
    fn zero_cycles_is_rejected() {
        let mut experiment = Experiment::quick(0, 1);
        assert!(matches!(
            experiment.run(&small_arch()),
            Err(ClockmarkError::ZeroCycles)
        ));
        experiment.cycles = 1;
        // One cycle is too short for CPA but must fail gracefully, not
        // panic.
        assert!(experiment.run(&small_arch()).is_err());
    }

    #[test]
    fn p_values_separate_active_from_inactive() {
        let active = Experiment::quick(12_000, 20)
            .run(&small_arch())
            .expect("runs");
        let inactive = Experiment::quick(12_000, 21)
            .disabled()
            .run(&small_arch())
            .expect("runs");
        assert!(active.p_value < 1e-6, "active p {}", active.p_value);
        assert!(inactive.p_value > 1e-3, "inactive p {}", inactive.p_value);
        assert!(active.to_string().contains("p ="));
    }

    #[test]
    fn repetitions_with_different_seeds_vary_but_agree() {
        let a = Experiment::quick(10_000, 10)
            .run(&small_arch())
            .expect("runs");
        let b = Experiment::quick(10_000, 11)
            .run(&small_arch())
            .expect("runs");
        assert!(a.detection.detected && b.detection.detected);
        assert_eq!(a.detection.peak_rotation, b.detection.peak_rotation);
        assert_ne!(a.detection.peak_rho, b.detection.peak_rho);
    }

    #[test]
    fn measured_run_plus_analyse_matches_run_bit_for_bit() {
        // The corpus path — capture Y, store it, re-analyse later — must
        // agree exactly with the all-in-one pipeline.
        let experiment = Experiment::quick(10_000, 8);
        let direct = experiment.run(&small_arch()).expect("runs");
        let measured = experiment.run_measured(&small_arch()).expect("measures");
        let replayed = measured.analyse(&experiment.criterion).expect("analyses");
        assert_eq!(
            direct.detection.peak_rho.to_bits(),
            replayed.detection.peak_rho.to_bits()
        );
        assert_eq!(direct.detection, replayed.detection);
        assert_eq!(direct.spectrum.rho(), replayed.spectrum.rho());
        assert_eq!(direct.p_value.to_bits(), replayed.p_value.to_bits());
        assert_eq!(measured.measured.as_watts().len(), 10_000);
        assert_eq!(measured.cycles, 10_000);
    }

    #[test]
    fn bare_chip_has_no_background() {
        let mut experiment = Experiment::quick(12_000, 12);
        experiment.chip = ChipModel::Bare;
        let outcome = experiment.run(&small_arch()).expect("runs");
        assert_eq!(outcome.background_mean, Power::ZERO);
        assert!(outcome.detection.detected);
    }
}
