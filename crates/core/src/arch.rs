use crate::{ClockmarkError, WgcConfig};
use clockmark_netlist::{
    CellId, ClockInput, DataSource, GroupId, Netlist, RegisterConfig, SignalExpr, SignalId,
};
use clockmark_power::{Power, PowerModel};

/// A watermark circuit embedded into a netlist, with everything the
/// detection pipeline and the attack analysis need to know about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedWatermark {
    /// The accounting group holding the watermark cells.
    pub group: GroupId,
    /// The effective `WMARK` control signal (already gated by
    /// [`enable`](EmbeddedWatermark::enable)).
    pub wmark: SignalId,
    /// External on/off control, driven by the experiment (`disabling the
    /// watermark circuit` in the paper's control experiments).
    pub enable: SignalId,
    /// WGC state registers.
    pub wgc_cells: Vec<CellId>,
    /// Dedicated body registers (load circuit or redundant gated block;
    /// empty when an existing IP block is reused).
    pub body_cells: Vec<CellId>,
    /// Clock-gating cells inserted by the watermark.
    pub icg_cells: Vec<CellId>,
    /// One period of the expected `WMARK` sequence (the CPA model vector).
    pub pattern: Vec<bool>,
}

impl EmbeddedWatermark {
    /// Every cell belonging to the watermark circuit.
    pub fn all_cells(&self) -> Vec<CellId> {
        let mut cells = self.wgc_cells.clone();
        cells.extend(&self.body_cells);
        cells.extend(&self.icg_cells);
        cells
    }

    /// The watermark sequence period.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }
}

/// A power-watermark architecture that can be embedded into a netlist.
///
/// Two implementations reproduce the paper's comparison: the
/// state-of-the-art [`LoadCircuitWatermark`] (Fig. 1a) and the proposed
/// [`ClockModulationWatermark`] (Fig. 1b / Fig. 4a).
pub trait WatermarkArchitecture {
    /// Inserts the watermark circuit, clocked from `clock`.
    ///
    /// # Errors
    ///
    /// Returns configuration or netlist errors.
    fn embed(
        &self,
        netlist: &mut Netlist,
        clock: ClockInput,
    ) -> Result<EmbeddedWatermark, ClockmarkError>;

    /// Registers added exclusively for the watermark, excluding the WGC.
    fn dedicated_registers(&self) -> u32;

    /// Registers in the watermark generation circuit.
    fn wgc_registers(&self) -> u32;

    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// The watermark's power amplitude while `WMARK = 1` (the step the
    /// CPA detector correlates against).
    fn signal_amplitude(&self, model: &PowerModel) -> Power;
}

/// The state-of-the-art power watermark of Fig. 1(a): a WGC plus a
/// dedicated **load circuit** of shift registers holding a `1010…` pattern
/// whose shifting (enabled by `WMARK`) burns dynamic power.
///
/// With [`clock_gated`](LoadCircuitWatermark::clock_gated) `= true`
/// (default, what synthesis infers for enable registers), a gated load
/// register contributes clock *and* data power to the watermark signal:
/// 1.476 + 1.126 = 2.602 µW — the per-register cost that Table II divides
/// target powers by. With `false` the registers free-run and only data
/// switching (1.126 µW) is signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCircuitWatermark {
    /// Number of load shift registers.
    pub load_registers: u32,
    /// Registers per inserted clock gate (when gated).
    pub regs_per_gate: u32,
    /// Whether synthesis maps the shift enable onto clock gates.
    pub clock_gated: bool,
    /// The sequence generator configuration.
    pub wgc: WgcConfig,
}

impl LoadCircuitWatermark {
    /// A load circuit matching the paper's comparison point: 576 registers
    /// (the count Table II says matches the proposed circuit's power),
    /// clock-gated, 12-bit LFSR.
    pub fn paper_equivalent() -> Self {
        LoadCircuitWatermark {
            load_registers: 576,
            regs_per_gate: 32,
            clock_gated: true,
            wgc: WgcConfig::paper(),
        }
    }
}

impl WatermarkArchitecture for LoadCircuitWatermark {
    fn embed(
        &self,
        netlist: &mut Netlist,
        clock: ClockInput,
    ) -> Result<EmbeddedWatermark, ClockmarkError> {
        if self.load_registers == 0 {
            return Err(ClockmarkError::EmptyWatermarkBody);
        }
        let group = netlist.add_group("watermark");
        let wgc = self.wgc.build_structural(netlist, group, clock)?;
        let enable = netlist.add_signal("wm_enable", SignalExpr::External)?;
        let wmark = netlist.add_signal("wmark", SignalExpr::And(wgc.output, enable))?;

        let mut body_cells = Vec::with_capacity(self.load_registers as usize);
        let mut icg_cells = Vec::new();

        let n = self.load_registers;
        let per_gate = self.regs_per_gate.max(1);
        let mut reg_clock: ClockInput = clock;
        for i in 0..n {
            if self.clock_gated && i % per_gate == 0 {
                let icg = netlist.add_icg(group, clock, wmark)?;
                icg_cells.push(icg);
                reg_clock = icg.into();
            }
            // 1010… initial pattern maximises shifting activity.
            let config = RegisterConfig::new(if self.clock_gated { reg_clock } else { clock })
                .init(i % 2 == 0);
            let config = if self.clock_gated {
                config
            } else {
                config.sync_enable(wmark)
            };
            body_cells.push(netlist.add_register(group, config)?);
        }
        // Circular shift chain: each register takes its predecessor's
        // value; the head wraps from the tail so the 1010… pattern rotates
        // forever.
        for i in 0..n as usize {
            let from = body_cells[(i + n as usize - 1) % n as usize];
            netlist.set_register_data(body_cells[i], DataSource::ShiftFrom(from))?;
        }

        Ok(EmbeddedWatermark {
            group,
            wmark,
            enable,
            wgc_cells: wgc.cells,
            body_cells,
            icg_cells,
            pattern: self.wgc.expected_pattern()?,
        })
    }

    fn dedicated_registers(&self) -> u32 {
        self.load_registers
    }

    fn wgc_registers(&self) -> u32 {
        self.wgc.register_count()
    }

    fn name(&self) -> &'static str {
        "load-circuit watermark (state of the art)"
    }

    fn signal_amplitude(&self, model: &PowerModel) -> Power {
        let f = model.clock_frequency();
        let data = model.library().reg_data_power(f) * self.load_registers as f64;
        if self.clock_gated {
            data + model.library().reg_clock_power(f) * self.load_registers as f64
        } else {
            data
        }
    }
}

/// The proposed clock-modulation watermark (Fig. 1b / Fig. 4a): `WMARK`
/// gates the clock of a block of sequential logic through per-word ICGs.
/// When `WMARK = 1` the whole block's clock tree switches; when `WMARK = 0`
/// the clock stops and the block consumes nothing.
///
/// [`embed`](WatermarkArchitecture::embed) builds the test chips' redundant
/// block (32 words × 32 registers); [`embed_reusing`] instead modulates an
/// existing functional block's clock gates, the zero-dedicated-area usage
/// the paper proposes for production.
///
/// [`embed_reusing`]: ClockModulationWatermark::embed_reusing
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockModulationWatermark {
    /// Clock-gated words in the redundant block.
    pub words: u32,
    /// Registers per word.
    pub regs_per_word: u32,
    /// How many registers also toggle data each gated cycle (Table I
    /// sweeps 0, 256, 512, 1,024; the clock-buffers-only configuration is
    /// the headline).
    pub switching_registers: u32,
    /// The sequence generator configuration.
    pub wgc: WgcConfig,
}

impl ClockModulationWatermark {
    /// The test-chip configuration: 1,024 registers in 32 clock-gated
    /// words, clock-buffer power only, 12-bit maximal LFSR.
    pub fn paper() -> Self {
        ClockModulationWatermark {
            words: 32,
            regs_per_word: 32,
            switching_registers: 0,
            wgc: WgcConfig::paper(),
        }
    }

    /// Total registers in the gated block.
    pub fn body_registers(&self) -> u32 {
        self.words * self.regs_per_word
    }

    /// Like [`embed`](WatermarkArchitecture::embed) but distributing the
    /// gated clock through a synthesized balanced buffer tree (one leaf per
    /// word, bounded `fanout`) instead of ideal point-to-point wiring.
    ///
    /// With the default energy library the tree is free (its power is
    /// lumped into the per-register clock constant, as the paper's averaged
    /// measurement does); give the library an explicit
    /// [`tree_buffer`](clockmark_power::EnergyLibrary::tree_buffer) energy
    /// to split it out — the tree-overhead ablation.
    ///
    /// # Errors
    ///
    /// Returns configuration or netlist errors (e.g. a fanout below two).
    pub fn embed_with_tree(
        &self,
        netlist: &mut Netlist,
        clock: ClockInput,
        fanout: usize,
    ) -> Result<EmbeddedWatermark, ClockmarkError> {
        let total = self.body_registers();
        if total == 0 {
            return Err(ClockmarkError::EmptyWatermarkBody);
        }
        if self.switching_registers > total {
            return Err(ClockmarkError::TooManySwitchingRegisters {
                requested: self.switching_registers,
                available: total,
            });
        }
        let group = netlist.add_group("watermark");
        let wgc = self.wgc.build_structural(netlist, group, clock)?;
        let enable = netlist.add_signal("wm_enable", SignalExpr::External)?;
        let wmark = netlist.add_signal("wmark", SignalExpr::And(wgc.output, enable))?;
        let clk_ctrl = netlist.add_signal("clk_ctrl", SignalExpr::Const(true))?;
        let gate_en = netlist.add_signal("gate_en", SignalExpr::And(clk_ctrl, wmark))?;

        // One master ICG ahead of the tree: the whole tree stops toggling
        // while WMARK is low, exactly like a gated subtree in silicon.
        let master = netlist.add_icg(group, clock, gate_en)?;
        let tree = clockmark_netlist::ClockTree::synthesize(
            netlist,
            group,
            master.into(),
            self.words as usize,
            fanout,
        )?;

        let mut body_cells = Vec::with_capacity(total as usize);
        let mut switching_left = self.switching_registers;
        for (w, &leaf) in tree.leaves().iter().enumerate() {
            let _ = w;
            for _ in 0..self.regs_per_word {
                let data = if switching_left > 0 {
                    switching_left -= 1;
                    DataSource::Toggle
                } else {
                    DataSource::Hold
                };
                body_cells.push(
                    netlist.add_register(group, RegisterConfig::new(leaf.into()).data(data))?,
                );
            }
        }

        Ok(EmbeddedWatermark {
            group,
            wmark,
            enable,
            wgc_cells: wgc.cells,
            body_cells,
            icg_cells: vec![master],
            pattern: self.wgc.expected_pattern()?,
        })
    }

    /// Modulates an existing functional block instead of building a
    /// redundant one: every clock gate of `block` gets its enable replaced
    /// by `original AND WMARK`. No dedicated body registers are added — the
    /// zero-area-overhead deployment of Section V.
    ///
    /// # Errors
    ///
    /// Returns configuration or netlist errors.
    pub fn embed_reusing(
        &self,
        netlist: &mut Netlist,
        clock: ClockInput,
        block: &FunctionalBlock,
    ) -> Result<EmbeddedWatermark, ClockmarkError> {
        let group = netlist.add_group("watermark");
        let wgc = self.wgc.build_structural(netlist, group, clock)?;
        let enable = netlist.add_signal("wm_enable", SignalExpr::External)?;
        let wmark = netlist.add_signal("wmark", SignalExpr::And(wgc.output, enable))?;

        for (i, &icg) in block.icgs.iter().enumerate() {
            let original = block.enables[i];
            let combined =
                netlist.add_signal(&format!("wm_gate{i}"), SignalExpr::And(original, wmark))?;
            netlist.set_icg_enable(icg, combined)?;
        }

        Ok(EmbeddedWatermark {
            group,
            wmark,
            enable,
            wgc_cells: wgc.cells,
            body_cells: Vec::new(),
            icg_cells: Vec::new(),
            pattern: self.wgc.expected_pattern()?,
        })
    }
}

impl WatermarkArchitecture for ClockModulationWatermark {
    fn embed(
        &self,
        netlist: &mut Netlist,
        clock: ClockInput,
    ) -> Result<EmbeddedWatermark, ClockmarkError> {
        let total = self.body_registers();
        if total == 0 {
            return Err(ClockmarkError::EmptyWatermarkBody);
        }
        if self.switching_registers > total {
            return Err(ClockmarkError::TooManySwitchingRegisters {
                requested: self.switching_registers,
                available: total,
            });
        }
        let group = netlist.add_group("watermark");
        let wgc = self.wgc.build_structural(netlist, group, clock)?;
        let enable = netlist.add_signal("wm_enable", SignalExpr::External)?;
        let wmark = netlist.add_signal("wmark", SignalExpr::And(wgc.output, enable))?;

        // Fig. 1(b): the gate enable is CLK_CTRL AND WMARK; the redundant
        // block's functional control is constant-on.
        let clk_ctrl = netlist.add_signal("clk_ctrl", SignalExpr::Const(true))?;
        let gate_en = netlist.add_signal("gate_en", SignalExpr::And(clk_ctrl, wmark))?;

        let mut body_cells = Vec::with_capacity(total as usize);
        let mut icg_cells = Vec::with_capacity(self.words as usize);
        let mut switching_left = self.switching_registers;
        for _ in 0..self.words {
            let icg = netlist.add_icg(group, clock, gate_en)?;
            icg_cells.push(icg);
            for _ in 0..self.regs_per_word {
                let data = if switching_left > 0 {
                    switching_left -= 1;
                    DataSource::Toggle
                } else {
                    DataSource::Hold
                };
                // "All registers are pre-initialized to '0'."
                body_cells
                    .push(netlist.add_register(group, RegisterConfig::new(icg.into()).data(data))?);
            }
        }

        Ok(EmbeddedWatermark {
            group,
            wmark,
            enable,
            wgc_cells: wgc.cells,
            body_cells,
            icg_cells,
            pattern: self.wgc.expected_pattern()?,
        })
    }

    fn dedicated_registers(&self) -> u32 {
        self.body_registers()
    }

    fn wgc_registers(&self) -> u32 {
        self.wgc.register_count()
    }

    fn name(&self) -> &'static str {
        "clock-modulation watermark (proposed)"
    }

    fn signal_amplitude(&self, model: &PowerModel) -> Power {
        let f = model.clock_frequency();
        model.library().reg_clock_power(f) * self.body_registers() as f64
            + model.library().reg_data_power(f) * self.switching_registers as f64
    }
}

/// A synthetic clock-gated functional IP block, used as the reuse target
/// of [`ClockModulationWatermark::embed_reusing`] and as the victim in
/// removal-attack experiments.
///
/// Each word has its own functional clock-enable (an external signal the
/// simulation drives with the block's real activity pattern) and an ICG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalBlock {
    /// The block's accounting group.
    pub group: GroupId,
    /// One clock gate per word.
    pub icgs: Vec<CellId>,
    /// The original (pre-watermark) enable of each gate.
    pub enables: Vec<SignalId>,
    /// The block's registers.
    pub registers: Vec<CellId>,
}

impl FunctionalBlock {
    /// Synthesizes a block of `words × regs_per_word` busy registers, each
    /// word behind its own clock gate with an externally driven functional
    /// enable.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn synthesize(
        netlist: &mut Netlist,
        name: &str,
        clock: ClockInput,
        words: u32,
        regs_per_word: u32,
    ) -> Result<Self, ClockmarkError> {
        let group = netlist.add_group(name);
        let mut icgs = Vec::with_capacity(words as usize);
        let mut enables = Vec::with_capacity(words as usize);
        let mut registers = Vec::new();
        for w in 0..words {
            let en = netlist.add_signal(&format!("{name}_en{w}"), SignalExpr::External)?;
            let icg = netlist.add_icg(group, clock, en)?;
            enables.push(en);
            icgs.push(icg);
            for _ in 0..regs_per_word {
                registers.push(netlist.add_register(
                    group,
                    RegisterConfig::new(icg.into()).data(DataSource::Toggle),
                )?);
            }
        }
        Ok(FunctionalBlock {
            group,
            icgs,
            enables,
            registers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_power::{EnergyLibrary, Frequency};
    use clockmark_sim::{CycleSim, SignalDriver};

    fn model() -> PowerModel {
        PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0))
    }

    fn netlist_with_clock() -> (Netlist, ClockInput) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        (n, clk.into())
    }

    #[test]
    fn paper_clock_modulation_amplitude_is_1_51_mw() {
        let arch = ClockModulationWatermark::paper();
        let p = arch.signal_amplitude(&model());
        assert!((p.milliwatts() - 1.511).abs() < 0.01, "got {p}");
    }

    #[test]
    fn table1_amplitudes_via_switching_sweep() {
        let expected = [(0u32, 1.51), (256, 1.80), (512, 2.09), (1024, 2.66)];
        for (switching, mw) in expected {
            let arch = ClockModulationWatermark {
                switching_registers: switching,
                ..ClockModulationWatermark::paper()
            };
            let p = arch.signal_amplitude(&model());
            assert!(
                (p.milliwatts() - mw).abs() < 0.01,
                "{switching} switching: got {p}, paper {mw} mW"
            );
        }
    }

    #[test]
    fn equal_power_load_circuit_uses_576_registers() {
        // Table II: ≈576 load registers match the gated block's 1.5 mW.
        let load = LoadCircuitWatermark::paper_equivalent();
        let proposed = ClockModulationWatermark::paper();
        let m = model();
        let ratio = load.signal_amplitude(&m) / proposed.signal_amplitude(&m);
        assert!((ratio - 1.0).abs() < 0.01, "amplitude ratio {ratio}");
    }

    #[test]
    fn embed_builds_the_paper_structure() {
        let (mut n, clk) = netlist_with_clock();
        let wm = ClockModulationWatermark::paper()
            .embed(&mut n, clk)
            .expect("embeds");
        assert_eq!(wm.wgc_cells.len(), 12);
        assert_eq!(wm.body_cells.len(), 1024);
        assert_eq!(wm.icg_cells.len(), 32);
        assert_eq!(wm.period(), 4095);
        assert!(n.validate().is_ok());
        assert_eq!(n.register_count_in_group(wm.group), 1024 + 12);
    }

    #[test]
    fn gated_block_clocks_only_when_wmark_high() {
        let (mut n, clk) = netlist_with_clock();
        let arch = ClockModulationWatermark {
            words: 2,
            regs_per_word: 4,
            switching_registers: 3,
            wgc: WgcConfig::MaxLengthLfsr { width: 4, seed: 1 },
        };
        let wm = arch.embed(&mut n, clk).expect("embeds");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");

        for cycle in 0..30 {
            let activity = sim.step()[wm.group.index()];
            let bit = wm.pattern[cycle % wm.period()];
            // 4 WGC registers always clock; the 8 body registers only when
            // WMARK is high.
            let expected_body = if bit { 8 } else { 0 };
            assert_eq!(
                activity.reg_clock_events,
                4 + expected_body,
                "cycle {cycle}, wmark={bit}"
            );
            // Data toggles: 3 switching body registers, plus whatever the
            // WGC shifts internally.
            if bit {
                assert!(activity.reg_data_toggles >= 3);
            }
        }
    }

    #[test]
    fn disabled_watermark_never_clocks_the_body() {
        let (mut n, clk) = netlist_with_clock();
        let arch = ClockModulationWatermark {
            words: 2,
            regs_per_word: 4,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 4, seed: 1 },
        };
        let wm = arch.embed(&mut n, clk).expect("embeds");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(false))
            .expect("external");
        for _ in 0..30 {
            let activity = sim.step()[wm.group.index()];
            assert_eq!(activity.reg_clock_events, 4, "only the WGC clocks");
        }
    }

    #[test]
    fn load_circuit_shifts_its_pattern_when_enabled() {
        let (mut n, clk) = netlist_with_clock();
        let arch = LoadCircuitWatermark {
            load_registers: 8,
            regs_per_gate: 4,
            clock_gated: true,
            wgc: WgcConfig::CircularShift {
                pattern: vec![true, false],
            },
        };
        let wm = arch.embed(&mut n, clk).expect("embeds");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");

        // WMARK alternates 1,0,1,0…; on active cycles all 8 load registers
        // clock and toggle (1010… rotates), on inactive cycles none.
        for cycle in 0..20 {
            let activity = sim.step()[wm.group.index()];
            let bit = cycle % 2 == 0;
            let body_clocks = activity.reg_clock_events - 2; // minus WGC ring
            if bit {
                assert_eq!(body_clocks, 8, "cycle {cycle}");
                assert!(activity.reg_data_toggles >= 8, "all load registers toggle");
            } else {
                assert_eq!(body_clocks, 0, "cycle {cycle}");
            }
        }
    }

    #[test]
    fn ungated_load_circuit_burns_clock_constantly() {
        let (mut n, clk) = netlist_with_clock();
        let arch = LoadCircuitWatermark {
            load_registers: 6,
            regs_per_gate: 32,
            clock_gated: false,
            wgc: WgcConfig::CircularShift {
                pattern: vec![true, false],
            },
        };
        let wm = arch.embed(&mut n, clk).expect("embeds");
        assert!(wm.icg_cells.is_empty());
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");
        for cycle in 0..10 {
            let activity = sim.step()[wm.group.index()];
            // 6 body + 2 WGC registers clock every cycle regardless.
            assert_eq!(activity.reg_clock_events, 8);
            let bit = cycle % 2 == 0;
            if !bit {
                // Only the WGC ring may toggle when WMARK is low.
                assert!(activity.reg_data_toggles <= 2, "cycle {cycle}");
            }
        }
    }

    #[test]
    fn embed_reusing_adds_no_dedicated_registers() {
        let (mut n, clk) = netlist_with_clock();
        let block = FunctionalBlock::synthesize(&mut n, "dsp", clk, 4, 8).expect("synthesizes");
        let before = n.register_count();
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 6, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let wm = arch.embed_reusing(&mut n, clk, &block).expect("embeds");
        assert!(wm.body_cells.is_empty());
        assert!(wm.icg_cells.is_empty());
        assert_eq!(n.register_count(), before + 6, "only the WGC is added");
        assert!(n.validate().is_ok());
    }

    #[test]
    fn reused_block_is_gated_by_both_function_and_watermark() {
        let (mut n, clk) = netlist_with_clock();
        let block = FunctionalBlock::synthesize(&mut n, "dsp", clk, 1, 4).expect("synthesizes");
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::CircularShift {
                pattern: vec![true, true, false],
            },
            ..ClockModulationWatermark::paper()
        };
        let wm = arch.embed_reusing(&mut n, clk, &block).expect("embeds");

        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");
        // Functional enable: on for 4 cycles, off for 2, repeating.
        sim.drive(
            block.enables[0],
            SignalDriver::bits([true, true, true, true, false, false], true),
        )
        .expect("external");

        for cycle in 0..18 {
            let activity = sim.step()[block.group.index()];
            let functional = [true, true, true, true, false, false][cycle % 6];
            let wmark = [true, true, false][cycle % 3];
            let expected = if functional && wmark { 4 } else { 0 };
            assert_eq!(activity.reg_clock_events, expected, "cycle {cycle}");
        }
    }

    #[test]
    fn tree_embedding_matches_flat_embedding_behaviour() {
        // Same architecture, flat vs tree-distributed clock: identical
        // register clocking pattern, and the tree's buffers follow WMARK.
        let arch = ClockModulationWatermark {
            words: 8,
            regs_per_word: 4,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 5, seed: 1 },
        };

        let (mut flat_nl, clk) = netlist_with_clock();
        let flat = arch.embed(&mut flat_nl, clk).expect("embeds");
        let (mut tree_nl, clk2) = netlist_with_clock();
        let tree = arch.embed_with_tree(&mut tree_nl, clk2, 3).expect("embeds");

        assert!(tree_nl.buffer_count() > 0, "the tree inserted buffers");
        assert!(tree_nl.validate().is_ok());

        let mut flat_sim = CycleSim::new(&flat_nl).expect("valid");
        flat_sim
            .drive(flat.enable, SignalDriver::Constant(true))
            .expect("external");
        let mut tree_sim = CycleSim::new(&tree_nl).expect("valid");
        tree_sim
            .drive(tree.enable, SignalDriver::Constant(true))
            .expect("external");

        for cycle in 0..62 {
            let f = flat_sim.step()[flat.group.index()];
            let t = tree_sim.step()[tree.group.index()];
            assert_eq!(
                f.reg_clock_events, t.reg_clock_events,
                "cycle {cycle}: register clocking must not depend on distribution"
            );
            // Tree buffers toggle exactly when the watermark gates on.
            let wmark = arch.wgc.expected_pattern().expect("valid")[cycle % 31];
            if wmark {
                assert_eq!(t.buffer_events as usize, tree_nl.buffer_count());
            } else {
                assert_eq!(t.buffer_events, 0);
            }
        }
    }

    #[test]
    fn tree_embedding_with_explicit_buffer_energy_costs_more() {
        use clockmark_power::{Energy, EnergyLibrary};
        let arch = ClockModulationWatermark {
            words: 8,
            regs_per_word: 4,
            switching_registers: 0,
            wgc: WgcConfig::CircularShift {
                pattern: vec![true],
            },
        };
        let (mut n, clk) = netlist_with_clock();
        let wm = arch.embed_with_tree(&mut n, clk, 2).expect("embeds");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");
        let activity = sim.run(8).expect("runs");

        let f = Frequency::from_megahertz(10.0);
        let lumped = PowerModel::new(EnergyLibrary::tsmc65ll(), f);
        let split = PowerModel::new(
            EnergyLibrary::tsmc65ll().with_tree_buffer(Energy::from_femtojoules(30.0)),
            f,
        );
        let p_lumped = lumped.group_trace(&activity, wm.group).mean();
        let p_split = split.group_trace(&activity, wm.group).mean();
        assert!(p_split > p_lumped, "explicit tree energy must add power");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (mut n, clk) = netlist_with_clock();
        let empty = ClockModulationWatermark {
            words: 0,
            ..ClockModulationWatermark::paper()
        };
        assert!(matches!(
            empty.embed(&mut n, clk),
            Err(ClockmarkError::EmptyWatermarkBody)
        ));

        let too_many = ClockModulationWatermark {
            switching_registers: 2000,
            ..ClockModulationWatermark::paper()
        };
        assert!(matches!(
            too_many.embed(&mut n, clk),
            Err(ClockmarkError::TooManySwitchingRegisters {
                requested: 2000,
                available: 1024
            })
        ));

        let no_load = LoadCircuitWatermark {
            load_registers: 0,
            ..LoadCircuitWatermark::paper_equivalent()
        };
        assert!(matches!(
            no_load.embed(&mut n, clk),
            Err(ClockmarkError::EmptyWatermarkBody)
        ));
    }

    #[test]
    fn architecture_names_distinguish_proposed_from_baseline() {
        assert!(ClockModulationWatermark::paper()
            .name()
            .contains("proposed"));
        assert!(LoadCircuitWatermark::paper_equivalent()
            .name()
            .contains("state of the art"));
    }
}
