//! Resumable sharded detection campaigns over a trace corpus.
//!
//! A *campaign* answers the fleet-scale question: given a corpus of
//! stored power traces (see [`clockmark_corpus`]), does each one carry
//! the watermark? Jobs — one per trace — are sharded across the same
//! std-thread engine that powers [`ExperimentBatch`](crate::ExperimentBatch),
//! and every job streams its trace through a
//! [`Detector::detect_streaming`] session in disk-sized chunks via
//! [`StreamingDetection::push_chunk`], so a trace is never fully
//! resident.
//!
//! Everything a campaign learns is persisted as it happens:
//!
//! ```text
//! campaign/
//!   campaign.json        # the spec, written once at creation (tmp+rename)
//!   results.jsonl        # append-only completed-job outcomes (flushed per line)
//!   checkpoints/
//!     job_<idx>.ckpt     # binary mid-flight fold snapshots (tmp+rename)
//!   report.json          # final report, written when the last job lands
//! ```
//!
//! Kill the process at any instant — between jobs, mid-trace, even
//! mid-append (the torn last line of `results.jsonl` is tolerated) — and
//! [`Campaign::run`] picks up exactly where it stopped: completed jobs
//! are skipped, checkpointed jobs resume from their snapshot, and because
//! [`StreamingDetection::push_chunk`] performs bit-for-bit the same
//! accumulations as an uninterrupted fold, the final report is
//! **byte-identical** to one produced without the interruption.

use crate::attack::ScenarioSpec;
use crate::batch::parallel_map;
use crate::scenario::run_scenario_detection;
use clockmark_corpus::codec;
use clockmark_corpus::{Corpus, CorpusError, Crc32};
use clockmark_cpa::{
    CpaAlgo, CpaError, DetectOptions, DetectionCriterion, DetectionResult, Detector,
    SequentialOptions, StreamingCpaState, StreamingDetection,
};
use clockmark_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

/// Magic bytes leading a checkpoint file. Version 2 added the spectrum
/// kernel byte; version-1 checkpoints fail the magic check and are
/// discarded on restore, which is always safe (the job replays from the
/// trace start, bit-identically).
const CKPT_MAGIC: &[u8; 8] = b"CMCKPT2\0";

/// Checkpoint wire value for each spectrum kernel.
fn algo_to_byte(algo: CpaAlgo) -> u8 {
    match algo {
        CpaAlgo::Naive => 0,
        CpaAlgo::Folded => 1,
        CpaAlgo::Fft => 2,
        _ => u8::MAX,
    }
}

/// Inverse of [`algo_to_byte`]; `None` for unknown wire values.
fn algo_from_byte(byte: u8) -> Option<CpaAlgo> {
    match byte {
        0 => Some(CpaAlgo::Naive),
        1 => Some(CpaAlgo::Folded),
        2 => Some(CpaAlgo::Fft),
        _ => None,
    }
}

/// Errors produced by the campaign engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The underlying corpus failed.
    Corpus(CorpusError),
    /// Correlation analysis failed.
    Cpa(CpaError),
    /// A campaign-directory filesystem operation failed.
    Io {
        /// What the engine was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The campaign spec (or a persisted record of it) is invalid.
    Spec {
        /// What was wrong.
        message: String,
    },
    /// A report was requested before every job completed.
    Incomplete {
        /// Jobs finished so far.
        completed: usize,
        /// Jobs in the campaign.
        total: usize,
    },
}

impl CampaignError {
    fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CampaignError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn spec(message: impl Into<String>) -> Self {
        CampaignError::Spec {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Corpus(e) => write!(f, "corpus: {e}"),
            CampaignError::Cpa(e) => write!(f, "cpa: {e}"),
            CampaignError::Io { context, source } => write!(f, "{context}: {source}"),
            CampaignError::Spec { message } => write!(f, "campaign spec: {message}"),
            CampaignError::Incomplete { completed, total } => {
                write!(f, "campaign incomplete: {completed} of {total} jobs done")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Corpus(e) => Some(e),
            CampaignError::Cpa(e) => Some(e),
            CampaignError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CorpusError> for CampaignError {
    fn from(e: CorpusError) -> Self {
        CampaignError::Corpus(e)
    }
}

impl From<CpaError> for CampaignError {
    fn from(e: CpaError) -> Self {
        CampaignError::Cpa(e)
    }
}

/// What a campaign is: which corpus, which watermark, which traces, and
/// how detection and checkpointing are tuned.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Root of the trace corpus the jobs read from.
    pub corpus: PathBuf,
    /// One period of the watermark sequence (the model vector `X`).
    pub pattern: Vec<bool>,
    /// Corpus trace names, one detection job each; job `i` is `traces[i]`.
    pub traces: Vec<String>,
    /// Peak-resolution rule applied to every job.
    pub criterion: DetectionCriterion,
    /// Snapshot the fold every this many ingested cycles (0 disables
    /// periodic checkpoints; a kill then restarts in-flight jobs from the
    /// trace start, which is slower but still bit-identical).
    pub checkpoint_cycles: u64,
    /// Cycles read from disk per chunk (clamped to at least 1).
    pub chunk_cycles: usize,
    /// The spectrum kernel every job runs (see [`CpaAlgo`]). Resolved
    /// once, at creation time, and persisted in `campaign.json` — a
    /// resumed campaign replays the recorded kernel regardless of the
    /// resuming process's `CLOCKMARK_CPA_ALGO`, because the byte-identical
    /// report guarantee only holds within one kernel's arithmetic.
    pub algo: CpaAlgo,
    /// Sequential early-termination schedule, or `None` for classic
    /// fixed-budget jobs. Persisted in `campaign.json` like the kernel:
    /// the checkpoint schedule is a pure function of these options and
    /// the absolute cycle count, so a resumed campaign re-derives
    /// exactly the checkpoints an uninterrupted run would have hit and
    /// lands bit-identical outcomes (see `docs/sequential.md`).
    pub sequential: Option<SequentialOptions>,
    /// Adversarial scenario applied to every job, or `None` for a plain
    /// detection campaign. Persisted in `campaign.json` like the kernel
    /// and the sequential schedule, with the same tolerant decode (a
    /// pre-scenario spec simply has no field). An *identity* scenario
    /// (no attack, no defense, nominal SNR) runs the plain streaming job
    /// path — its report is byte-for-byte a plain campaign's — while any
    /// other scenario buffers each trace whole, replays the deterministic
    /// attack/defense pipeline over it, and lands the defense's verdict
    /// (see `docs/attacks.md`).
    pub scenario: Option<ScenarioSpec>,
}

impl CampaignSpec {
    /// A spec with the default criterion, 64 Ki-cycle checkpoints and
    /// 8 Ki-cycle read chunks. The spectrum kernel is resolved here,
    /// once: `CLOCKMARK_CPA_ALGO` when set, the pattern's work heuristic
    /// otherwise.
    pub fn new(corpus: impl Into<PathBuf>, pattern: Vec<bool>, traces: Vec<String>) -> Self {
        let algo = clockmark_cpa::algo_override()
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&pattern));
        CampaignSpec {
            corpus: corpus.into(),
            pattern,
            traces,
            criterion: DetectionCriterion::default(),
            checkpoint_cycles: 65_536,
            chunk_cycles: 8_192,
            algo,
            sequential: None,
            scenario: None,
        }
    }

    /// Turns on sequential early-termination for every job.
    #[must_use]
    pub fn with_sequential(mut self, options: SequentialOptions) -> Self {
        self.sequential = Some(options);
        self
    }

    /// Applies an adversarial scenario to every job.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Serialises the spec as one JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"corpus\":");
        json::write_str(&mut out, &self.corpus.to_string_lossy());
        out.push_str(",\"pattern\":\"");
        for &bit in &self.pattern {
            out.push(if bit { '1' } else { '0' });
        }
        out.push_str("\",\"traces\":[");
        for (i, trace) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, trace);
        }
        out.push_str("],\"min_peak_ratio\":");
        json::write_f64(&mut out, self.criterion.min_peak_ratio);
        out.push_str(",\"min_zscore\":");
        json::write_f64(&mut out, self.criterion.min_zscore);
        let _ = write!(
            out,
            ",\"checkpoint_cycles\":{},\"chunk_cycles\":{},\"algo\":\"{}\"",
            self.checkpoint_cycles,
            self.chunk_cycles,
            self.algo.as_str()
        );
        if let Some(seq) = &self.sequential {
            let _ = write!(
                out,
                ",\"sequential\":{{\"base_cycles\":{},\"growth\":",
                seq.base_cycles
            );
            json::write_f64(&mut out, seq.growth);
            let _ = write!(out, ",\"min_cycles\":{}", seq.min_cycles);
            if let Some(confidence) = seq.confidence {
                out.push_str(",\"confidence\":");
                json::write_f64(&mut out, confidence);
            }
            if let Some(max) = seq.max_cycles {
                let _ = write!(out, ",\"max_cycles\":{max}");
            }
            out.push('}');
        }
        if let Some(scenario) = &self.scenario {
            out.push_str(",\"scenario\":");
            scenario.encode_into(&mut out);
        }
        out.push('}');
        out
    }

    /// Parses a spec serialised by [`encode`](CampaignSpec::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] for malformed JSON or
    /// missing/ill-typed fields.
    pub fn decode(text: &str) -> Result<Self, CampaignError> {
        let value =
            json::parse(text).map_err(|e| CampaignError::spec(format!("invalid JSON: {e}")))?;
        let str_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| CampaignError::spec(format!("missing string field `{key}`")))
        };
        let num_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| CampaignError::spec(format!("missing numeric field `{key}`")))
        };
        let pattern = str_field("pattern")?
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(CampaignError::spec(format!(
                    "pattern contains `{other}`; only 0/1 allowed"
                ))),
            })
            .collect::<Result<Vec<bool>, _>>()?;
        let traces = match value.get("traces") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| CampaignError::spec("non-string trace name".to_owned()))
                })
                .collect::<Result<Vec<String>, _>>()?,
            _ => return Err(CampaignError::spec("missing array field `traces`")),
        };
        // Specs written before the kernel was recorded lack the field;
        // resolve those from the pattern heuristic, never from the
        // resuming environment (the environment at *creation* decided).
        let algo = value
            .get("algo")
            .and_then(Json::as_str)
            .and_then(CpaAlgo::parse)
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&pattern));
        // Specs written before sequential campaigns existed lack the
        // object; those campaigns keep running fixed-budget jobs.
        let sequential = match value.get("sequential") {
            None => None,
            Some(seq) => {
                let seq_num = |key: &str| {
                    seq.get(key).and_then(Json::as_f64).ok_or_else(|| {
                        CampaignError::spec(format!("missing numeric field `sequential.{key}`"))
                    })
                };
                Some(SequentialOptions {
                    base_cycles: seq_num("base_cycles")? as u64,
                    growth: seq_num("growth")?,
                    confidence: seq.get("confidence").and_then(Json::as_f64),
                    min_cycles: seq_num("min_cycles")? as u64,
                    max_cycles: seq
                        .get("max_cycles")
                        .and_then(Json::as_f64)
                        .map(|v| v as u64),
                })
            }
        };
        // Specs written before scenarios existed lack the object; those
        // campaigns keep running plain detection jobs.
        let scenario = match value.get("scenario") {
            None => None,
            Some(s) => {
                Some(ScenarioSpec::decode_value(s).map_err(|e| CampaignError::spec(e.message))?)
            }
        };
        Ok(CampaignSpec {
            corpus: PathBuf::from(str_field("corpus")?),
            pattern,
            traces,
            criterion: DetectionCriterion {
                min_peak_ratio: num_field("min_peak_ratio")?,
                min_zscore: num_field("min_zscore")?,
            },
            checkpoint_cycles: num_field("checkpoint_cycles")? as u64,
            chunk_cycles: num_field("chunk_cycles")? as usize,
            algo,
            sequential,
            scenario,
        })
    }

    /// Validates the spec: a usable pattern, at least one trace, no
    /// duplicate trace names.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Cpa`] for a degenerate pattern and
    /// [`CampaignError::Spec`] for job-list problems.
    pub fn validate(&self) -> Result<(), CampaignError> {
        Detector::new(&self.pattern)?;
        if self.traces.is_empty() {
            return Err(CampaignError::spec("campaign has no traces"));
        }
        let mut seen = std::collections::BTreeSet::new();
        for trace in &self.traces {
            if !seen.insert(trace.as_str()) {
                return Err(CampaignError::spec(format!("duplicate trace `{trace}`")));
            }
        }
        if let Some(scenario) = &self.scenario {
            scenario
                .validate()
                .map_err(|e| CampaignError::spec(e.to_string()))?;
            // A non-identity scenario job buffers its trace and decides
            // in one shot — there is no streaming fold to terminate early.
            if self.sequential.is_some() && !scenario.is_identity() {
                return Err(CampaignError::spec(
                    "scenario campaigns do not support sequential schedules",
                ));
            }
        }
        Ok(())
    }
}

/// One unit of campaign work: run detection over one stored trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Position in the campaign's job list (stable across resumes).
    pub index: usize,
    /// The corpus trace this job reads.
    pub trace: String,
}

/// The persisted outcome of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job index.
    pub index: usize,
    /// The trace analysed.
    pub trace: String,
    /// Cycles the trace held.
    pub cycles: u64,
    /// The detection verdict and its statistics.
    pub result: DetectionResult,
}

impl JobOutcome {
    /// Serialises the outcome as one JSON line (no trailing newline).
    ///
    /// Finite `f64` fields are written in Rust's shortest round-trip
    /// form, so decoding them back is bit-exact — the property the
    /// byte-identical-report guarantee rests on.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(out, "{{\"index\":{},\"trace\":", self.index);
        json::write_str(&mut out, &self.trace);
        let _ = write!(
            out,
            ",\"cycles\":{},\"detected\":{},\"peak_rotation\":{},\"peak_rho\":",
            self.cycles, self.result.detected, self.result.peak_rotation
        );
        json::write_f64(&mut out, self.result.peak_rho);
        out.push_str(",\"floor_max_abs\":");
        json::write_f64(&mut out, self.result.floor_max_abs);
        out.push_str(",\"ratio\":");
        json::write_f64(&mut out, self.result.ratio);
        out.push_str(",\"zscore\":");
        json::write_f64(&mut out, self.result.zscore);
        out.push('}');
        out
    }

    /// Parses one `results.jsonl` line.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] for malformed JSON or
    /// missing/ill-typed fields.
    pub fn decode(text: &str) -> Result<Self, CampaignError> {
        let value =
            json::parse(text).map_err(|e| CampaignError::spec(format!("invalid JSON: {e}")))?;
        let num_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| CampaignError::spec(format!("missing numeric field `{key}`")))
        };
        let detected = match value.get("detected") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(CampaignError::spec("missing boolean field `detected`")),
        };
        let trace = value
            .get("trace")
            .and_then(Json::as_str)
            .ok_or_else(|| CampaignError::spec("missing string field `trace`"))?
            .to_owned();
        Ok(JobOutcome {
            index: num_field("index")? as usize,
            trace,
            cycles: num_field("cycles")? as u64,
            result: DetectionResult {
                detected,
                peak_rotation: num_field("peak_rotation")? as usize,
                peak_rho: num_field("peak_rho")?,
                floor_max_abs: num_field("floor_max_abs")?,
                ratio: num_field("ratio")?,
                zscore: num_field("zscore")?,
            },
        })
    }
}

/// Optional bounds on one [`Campaign::run`] call.
///
/// Both limits exist so tests, benches and the CI smoke job can simulate
/// interrupted fleets deterministically; an unbounded `run` drains the
/// campaign to completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignLimits {
    /// Complete at most this many jobs in this call (the rest stay
    /// pending for a later `run`).
    pub max_jobs: Option<usize>,
    /// Interrupt each in-flight job after it ingests this many cycles in
    /// this call: the fold is checkpointed and the job left pending —
    /// exactly what a `SIGKILL` mid-trace leaves behind.
    pub interrupt_job_after_cycles: Option<u64>,
}

impl CampaignLimits {
    /// No limits: run to completion.
    pub fn none() -> Self {
        CampaignLimits::default()
    }
}

/// Where a campaign currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Jobs in the campaign.
    pub total: usize,
    /// Jobs with a persisted outcome.
    pub completed: usize,
    /// Completed jobs whose watermark was detected.
    pub detected: usize,
    /// Pending jobs with a mid-flight checkpoint on disk.
    pub checkpointed: usize,
}

impl CampaignStatus {
    /// Whether every job has completed.
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }

    /// Jobs not yet completed.
    pub fn pending(&self) -> usize {
        self.total - self.completed
    }
}

impl std::fmt::Display for CampaignStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} jobs done ({} detected, {} pending, {} checkpointed)",
            self.completed,
            self.total,
            self.detected,
            self.pending(),
            self.checkpointed,
        )
    }
}

/// The final product of a completed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The spectrum kernel every outcome was computed with.
    pub algo: CpaAlgo,
    /// Every job's outcome, sorted by job index.
    pub outcomes: Vec<JobOutcome>,
}

impl CampaignReport {
    /// Completed jobs whose watermark was detected.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.detected).count()
    }

    /// Serialises the report deterministically: same outcomes in, same
    /// bytes out — what the kill-and-resume tests compare. The kernel is
    /// part of the bytes, so two reports only compare equal when they
    /// were produced by the same arithmetic.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64 + self.outcomes.len() * 160);
        let _ = write!(
            out,
            "{{\"total\":{},\"detected\":{},\"algo\":\"{}\",\"jobs\":[",
            self.outcomes.len(),
            self.detected(),
            self.algo.as_str()
        );
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&outcome.encode());
        }
        out.push_str("]}");
        out
    }
}

/// A detection campaign rooted at a directory.
///
/// Create one with [`Campaign::create`], re-open it any number of times
/// with [`Campaign::open`], and drive it with [`Campaign::run`] until
/// [`CampaignStatus::is_complete`].
#[derive(Debug)]
pub struct Campaign {
    dir: PathBuf,
    spec: CampaignSpec,
    threads: usize,
}

impl Campaign {
    /// Creates a campaign directory and persists the spec. Fails if a
    /// campaign already exists there.
    ///
    /// # Errors
    ///
    /// Returns the spec's [`validate`](CampaignSpec::validate) errors and
    /// [`CampaignError::Io`] on filesystem failure.
    pub fn create(dir: impl Into<PathBuf>, spec: CampaignSpec) -> Result<Self, CampaignError> {
        let dir = dir.into();
        spec.validate()?;
        let spec_path = dir.join("campaign.json");
        if spec_path.exists() {
            return Err(CampaignError::io(
                format!("creating campaign at {}", dir.display()),
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "campaign.json already exists",
                ),
            ));
        }
        fs::create_dir_all(dir.join("checkpoints"))
            .map_err(|e| CampaignError::io(format!("creating {}", dir.display()), e))?;
        write_atomic(&spec_path, format!("{}\n", spec.encode()).as_bytes())?;
        Ok(Campaign {
            dir,
            spec,
            threads: clockmark_cpa::thread_count(),
        })
    }

    /// Opens an existing campaign by reading its spec.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] when the spec cannot be read and
    /// [`CampaignError::Spec`] when it is malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let dir = dir.into();
        let spec_path = dir.join("campaign.json");
        let text = fs::read_to_string(&spec_path)
            .map_err(|e| CampaignError::io(format!("reading {}", spec_path.display()), e))?;
        let spec = CampaignSpec::decode(text.trim())?;
        spec.validate()?;
        Ok(Campaign {
            dir,
            spec,
            threads: clockmark_cpa::thread_count(),
        })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Overrides the worker count (clamped to at least 1 at run time).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The campaign's jobs, in index order.
    pub fn jobs(&self) -> Vec<JobSpec> {
        self.spec
            .traces
            .iter()
            .enumerate()
            .map(|(index, trace)| JobSpec {
                index,
                trace: trace.clone(),
            })
            .collect()
    }

    fn results_path(&self) -> PathBuf {
        self.dir.join("results.jsonl")
    }

    fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    fn progress_path(&self) -> PathBuf {
        self.dir.join("progress.json")
    }

    /// The most recent live-progress snapshot published by a worker, or
    /// `None` when no run has published one (or the file is unreadable
    /// or malformed — progress is best-effort telemetry, never load-
    /// bearing state).
    pub fn live_progress(&self) -> Option<CampaignProgress> {
        let text = fs::read_to_string(self.progress_path()).ok()?;
        CampaignProgress::decode(&text)
    }

    fn checkpoint_path(&self, index: usize) -> PathBuf {
        self.dir
            .join("checkpoints")
            .join(format!("job_{index}.ckpt"))
    }

    /// Loads the persisted outcomes, keyed by job index.
    ///
    /// A torn *final* line — the signature a kill mid-append leaves — is
    /// tolerated (that job simply reruns); malformed lines anywhere else
    /// are real corruption and fail loudly. Duplicate indices keep the
    /// last occurrence, so a crash between "append result" and "delete
    /// checkpoint" (which makes the job rerun and re-append) stays
    /// harmless.
    fn load_results(&self) -> Result<BTreeMap<usize, JobOutcome>, CampaignError> {
        Ok(self.load_results_detailed()?.0)
    }

    /// [`load_results`](Campaign::load_results) plus whether a torn tail
    /// was skipped — [`run`](Campaign::run) repairs the log in that case
    /// so fresh appends never concatenate onto the garbage.
    fn load_results_detailed(&self) -> Result<(BTreeMap<usize, JobOutcome>, bool), CampaignError> {
        let path = self.results_path();
        let mut map = BTreeMap::new();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((map, false)),
            Err(e) => return Err(CampaignError::io(format!("reading {}", path.display()), e)),
        };
        let mut torn = false;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            match JobOutcome::decode(line) {
                Ok(outcome) => {
                    if outcome.index >= self.spec.traces.len() {
                        return Err(CampaignError::spec(format!(
                            "results line {} names job {} but the campaign has {} jobs",
                            i + 1,
                            outcome.index,
                            self.spec.traces.len()
                        )));
                    }
                    map.insert(outcome.index, outcome);
                }
                Err(_) if i + 1 == lines.len() => {
                    torn = true;
                    clockmark_obs::counter_add("campaign.torn_results_lines", 1);
                }
                Err(e) => return Err(e),
            }
        }
        Ok((map, torn))
    }

    /// The persisted outcomes so far, in job-index order — the public
    /// read of the results log, with the same torn-tail tolerance and
    /// last-wins dedup a resume applies.
    ///
    /// A fleet worker uses this to hand an interrupted shard's partial
    /// results back to the coordinator: the log is valid (and the
    /// outcome encoding byte-stable) at every interruption point the
    /// checkpoint machinery can produce.
    ///
    /// # Errors
    ///
    /// Returns the persistence errors of the results log.
    pub fn completed_outcomes(&self) -> Result<Vec<JobOutcome>, CampaignError> {
        Ok(self.load_results()?.into_values().collect())
    }

    /// Computes the current status from disk.
    ///
    /// # Errors
    ///
    /// Returns the persistence errors of the results log.
    pub fn status(&self) -> Result<CampaignStatus, CampaignError> {
        let completed = self.load_results()?;
        let checkpointed = (0..self.spec.traces.len())
            .filter(|index| !completed.contains_key(index) && self.checkpoint_path(*index).exists())
            .count();
        Ok(CampaignStatus {
            total: self.spec.traces.len(),
            completed: completed.len(),
            detected: completed.values().filter(|o| o.result.detected).count(),
            checkpointed,
        })
    }

    /// Builds the final report. Fails until every job has completed.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Incomplete`] while jobs are pending, plus
    /// the persistence errors of the results log.
    pub fn report(&self) -> Result<CampaignReport, CampaignError> {
        let completed = self.load_results()?;
        if completed.len() != self.spec.traces.len() {
            return Err(CampaignError::Incomplete {
                completed: completed.len(),
                total: self.spec.traces.len(),
            });
        }
        Ok(CampaignReport {
            algo: self.spec.algo,
            outcomes: completed.into_values().collect(),
        })
    }

    /// Runs pending jobs (subject to `limits`) across the worker threads
    /// and returns the status afterwards. When the last job lands, the
    /// final report is written to `report.json`.
    ///
    /// Call again after an interruption — a kill, a `max_jobs` bound, an
    /// injected mid-trace interrupt — and the campaign continues from its
    /// persisted state; the eventual report is byte-identical to an
    /// uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest-ordered failing job, plus
    /// persistence errors of the campaign directory itself.
    pub fn run(&self, limits: &CampaignLimits) -> Result<CampaignStatus, CampaignError> {
        let _span = clockmark_obs::span("campaign.run")
            .field("jobs", self.spec.traces.len())
            .field("threads", self.threads)
            .field("algo", self.spec.algo.as_str());
        let corpus = Corpus::open(&self.spec.corpus)?;
        for trace in &self.spec.traces {
            if corpus.entry(trace).is_none() {
                return Err(CampaignError::spec(format!(
                    "trace `{trace}` is not in the corpus at {}",
                    self.spec.corpus.display()
                )));
            }
        }

        let (completed, torn) = self.load_results_detailed()?;
        if torn {
            // A kill mid-append left a partial record without a trailing
            // newline; rewrite the log from the intact records (atomic)
            // so the rerun job's fresh line does not concatenate onto it.
            let mut text = String::new();
            for outcome in completed.values() {
                text.push_str(&outcome.encode());
                text.push('\n');
            }
            write_atomic(&self.results_path(), text.as_bytes())?;
        }
        // A crash between "append result" and "delete checkpoint" leaves a
        // stale snapshot behind; sweep those before claiming work.
        for index in completed.keys() {
            let _ = fs::remove_file(self.checkpoint_path(*index));
        }
        let mut pending: Vec<JobSpec> = self
            .jobs()
            .into_iter()
            .filter(|job| !completed.contains_key(&job.index))
            .collect();
        if let Some(max) = limits.max_jobs {
            pending.truncate(max);
        }

        if !pending.is_empty() {
            let path = self.results_path();
            let file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(&path)
                .map_err(|e| CampaignError::io(format!("opening {}", path.display()), e))?;
            let results = Mutex::new(file);
            let board = ProgressBoard::new(
                self.progress_path(),
                self.spec.traces.len() as u64,
                completed.len() as u64,
            );
            board.publish();
            let t0 = Instant::now();
            let finished: Vec<Result<Option<JobOutcome>, CampaignError>> =
                parallel_map(&pending, self.threads, |job| {
                    self.run_job(&corpus, job, &results, limits, &board)
                });
            let landed = finished.iter().filter(|r| matches!(r, Ok(Some(_)))).count();
            for result in finished {
                result?;
            }
            if clockmark_obs::enabled() {
                let wall = t0.elapsed().as_secs_f64();
                if wall > 0.0 {
                    clockmark_obs::gauge_set("campaign.jobs_per_sec", landed as f64 / wall);
                }
            }
        }

        let status = self.status()?;
        if status.is_complete() {
            let report = self.report()?;
            write_atomic(
                &self.report_path(),
                format!("{}\n", report.encode()).as_bytes(),
            )?;
        }
        Ok(status)
    }

    /// Runs one job to completion (or to an injected interrupt, returning
    /// `Ok(None)` with a checkpoint on disk).
    fn run_job(
        &self,
        corpus: &Corpus,
        job: &JobSpec,
        results: &Mutex<File>,
        limits: &CampaignLimits,
        board: &ProgressBoard,
    ) -> Result<Option<JobOutcome>, CampaignError> {
        if let Some(scenario) = &self.spec.scenario {
            // The identity scenario falls through to the plain streaming
            // path below — that is what makes its report byte-for-byte a
            // plain campaign's.
            if !scenario.is_identity() {
                return self.run_job_scenario(corpus, job, results, board, scenario);
            }
        }
        if let Some(seq) = self.spec.sequential {
            return self.run_job_sequential(corpus, job, results, limits, board, seq);
        }
        let _span = clockmark_obs::span("campaign.job")
            .field("index", job.index)
            .field("trace", job.trace.clone());
        // Zero-copy where the platform provides it; the buffered reader
        // otherwise. Both stream bit-identical samples, so a campaign
        // resumed on a different platform (or with CLOCKMARK_NO_MMAP
        // set) still reproduces its report byte-for-byte.
        let mut reader = corpus.source(&job.trace)?;
        let trace_cycles = reader.header().cycles;
        // The kernel recorded in the spec is pinned on the facade, so
        // neither the environment nor the work heuristic can change the
        // arithmetic between a run and its resume.
        let facade = self.detector()?;
        let mut session = match self.restore_checkpoint(&facade, job, trace_cycles) {
            Some(session) => session,
            None => facade.detect_streaming(),
        };
        // Replaying the consumed prefix (discarded, but still fed to the
        // CRC) keeps the end-of-trace integrity check meaningful.
        if session.cycles() > 0 {
            reader.skip_samples(session.cycles())?;
        }

        let chunk = self.spec.chunk_cycles.max(1);
        let mut buf = vec![0.0f64; chunk];
        let mut since_checkpoint = 0u64;
        let mut ingested = 0u64;
        loop {
            let got = reader.read_chunk(&mut buf)?;
            if got == 0 {
                break;
            }
            session.push_chunk(&buf[..got]);
            since_checkpoint += got as u64;
            ingested += got as u64;
            board.note_cycles(got as u64);
            if self.spec.checkpoint_cycles > 0 && since_checkpoint >= self.spec.checkpoint_cycles {
                self.write_checkpoint(job, &session.state())?;
                board.publish();
                since_checkpoint = 0;
            }
            if let Some(limit) = limits.interrupt_job_after_cycles {
                if ingested >= limit && reader.remaining() > 0 {
                    self.write_checkpoint(job, &session.state())?;
                    board.publish();
                    return Ok(None);
                }
            }
        }
        let header = reader.finish()?; // full CRC validation

        let result = session.result();
        let outcome = JobOutcome {
            index: job.index,
            trace: job.trace.clone(),
            cycles: header.cycles,
            result,
        };
        self.land_outcome(job, outcome, results, board)
    }

    /// Runs one adversarial-scenario job: the whole trace is buffered,
    /// the deterministic defense-embed → attack → SNR-noise pipeline
    /// replays over it, and the defense's verification procedure decides
    /// (see [`crate::scenario`]).
    ///
    /// Deliberately different persistence contract from the streaming
    /// path: a scenario job **never writes a mid-trace checkpoint** and
    /// **ignores `interrupt_job_after_cycles`**. The job is a pure
    /// function of `(spec, job index, trace bytes)`, so the cheapest
    /// correct resume is a whole-job replay — which is what a kill gets:
    /// completed jobs live in `results.jsonl`, in-flight ones restart and
    /// land bit-identical outcomes.
    fn run_job_scenario(
        &self,
        corpus: &Corpus,
        job: &JobSpec,
        results: &Mutex<File>,
        board: &ProgressBoard,
        scenario: &ScenarioSpec,
    ) -> Result<Option<JobOutcome>, CampaignError> {
        let _span = clockmark_obs::span("campaign.job")
            .field("index", job.index)
            .field("trace", job.trace.clone())
            .field("mode", "scenario")
            .field("attack", scenario.attack.kind())
            .field("defense", scenario.defense.kind());
        // A stale checkpoint can only be left by a crashed run of the
        // same spec, and scenario jobs never write one; sweep anyway so
        // a hand-edited spec cannot resurrect a foreign snapshot.
        let _ = fs::remove_file(self.checkpoint_path(job.index));

        let mut reader = corpus.source(&job.trace)?;
        let trace_cycles = reader.header().cycles;
        let chunk = self.spec.chunk_cycles.max(1);
        let mut buf = vec![0.0f64; chunk];
        let mut samples = Vec::with_capacity(trace_cycles as usize);
        loop {
            let got = reader.read_chunk(&mut buf)?;
            if got == 0 {
                break;
            }
            samples.extend_from_slice(&buf[..got]);
            board.note_cycles(got as u64);
        }
        let header = reader.finish()?; // full CRC validation

        let result = run_scenario_detection(
            scenario,
            &self.spec.pattern,
            &self.spec.criterion,
            self.spec.algo,
            job.index,
            &mut samples,
        )?;
        let outcome = JobOutcome {
            index: job.index,
            trace: job.trace.clone(),
            cycles: header.cycles,
            result,
        };
        self.land_outcome(job, outcome, results, board)
    }

    /// Runs one job under the campaign's sequential early-termination
    /// schedule. Identical ingest loop to [`run_job`](Self::run_job),
    /// with three deliberate differences:
    ///
    /// - the loop breaks as soon as the session decides — the remaining
    ///   samples are never read, which is the entire point;
    /// - a decided session is never checkpointed and never "interrupted":
    ///   its fold is frozen, so the only correct continuation is landing
    ///   the outcome now (a resumed replay would re-derive checkpoints
    ///   *after* the accepting one and run longer, breaking bit-identity);
    /// - `reader.finish()` (the full-trace CRC) runs only when the trace
    ///   was fully consumed — an early stop cannot have checksummed the
    ///   unread tail, and [`JobOutcome::cycles`] records the cycles the
    ///   verdict actually consumed instead of the trace length.
    fn run_job_sequential(
        &self,
        corpus: &Corpus,
        job: &JobSpec,
        results: &Mutex<File>,
        limits: &CampaignLimits,
        board: &ProgressBoard,
        seq: SequentialOptions,
    ) -> Result<Option<JobOutcome>, CampaignError> {
        let _span = clockmark_obs::span("campaign.job")
            .field("index", job.index)
            .field("trace", job.trace.clone())
            .field("mode", "sequential");
        let mut reader = corpus.source(&job.trace)?;
        let trace_cycles = reader.header().cycles;
        let facade = self.detector()?;
        let mut session = match self.restore_sequential_checkpoint(&facade, job, trace_cycles, seq)
        {
            Some(session) => session,
            None => facade.detect_sequential_streaming(seq),
        };
        if session.cycles() > 0 {
            reader.skip_samples(session.cycles())?;
        }

        let chunk = self.spec.chunk_cycles.max(1);
        let mut buf = vec![0.0f64; chunk];
        let mut since_checkpoint = 0u64;
        let mut ingested = 0u64;
        let mut fully_read = false;
        loop {
            if session.decided() {
                break;
            }
            let got = reader.read_chunk(&mut buf)?;
            if got == 0 {
                fully_read = true;
                break;
            }
            session.push_chunk(&buf[..got]);
            since_checkpoint += got as u64;
            ingested += got as u64;
            board.note_cycles(got as u64);
            if session.decided() {
                break;
            }
            if self.spec.checkpoint_cycles > 0 && since_checkpoint >= self.spec.checkpoint_cycles {
                self.write_checkpoint(job, &session.state())?;
                board.publish();
                since_checkpoint = 0;
            }
            if let Some(limit) = limits.interrupt_job_after_cycles {
                if ingested >= limit && reader.remaining() > 0 {
                    self.write_checkpoint(job, &session.state())?;
                    board.publish();
                    return Ok(None);
                }
            }
        }
        if fully_read {
            reader.finish()?; // full CRC validation
        }

        let sequential = session.finalize();
        if sequential.early_stopped {
            clockmark_obs::counter_add(
                "campaign.cycles_saved",
                trace_cycles.saturating_sub(sequential.cycles_consumed),
            );
        }
        let outcome = JobOutcome {
            index: job.index,
            trace: job.trace.clone(),
            cycles: sequential.cycles_consumed,
            result: sequential.result,
        };
        self.land_outcome(job, outcome, results, board)
    }

    /// Appends a finished job's durable result line and retires its
    /// checkpoint. Ordering matters: the result lands first, then the
    /// checkpoint drops. A crash in between reruns the job (harmless,
    /// last line wins); the opposite order could lose the job's work.
    fn land_outcome(
        &self,
        job: &JobSpec,
        outcome: JobOutcome,
        results: &Mutex<File>,
        board: &ProgressBoard,
    ) -> Result<Option<JobOutcome>, CampaignError> {
        {
            let mut file = results
                .lock()
                .map_err(|_| CampaignError::spec("results lock poisoned"))?;
            let mut line = outcome.encode();
            line.push('\n');
            file.write_all(line.as_bytes())
                .map_err(|e| CampaignError::io("appending results.jsonl", e))?;
            file.flush()
                .map_err(|e| CampaignError::io("flushing results.jsonl", e))?;
        }
        let _ = fs::remove_file(self.checkpoint_path(job.index));
        clockmark_obs::counter_add("campaign.jobs_completed", 1);
        board.note_job_done();
        Ok(Some(outcome))
    }

    /// The [`Detector`] facade every job of this campaign detects
    /// through: the campaign's pattern with the recorded kernel and
    /// criterion pinned.
    fn detector(&self) -> Result<Detector, CampaignError> {
        Ok(Detector::with_options(
            &self.spec.pattern,
            DetectOptions::default()
                .with_algo(self.spec.algo)
                .with_criterion(self.spec.criterion),
        )?)
    }

    /// Restores a job's fold from its checkpoint, or `None` to start
    /// fresh. Any defect — wrong trace, wrong pattern, wrong spectrum
    /// kernel, impossible cycle count, corrupt bytes — discards the file:
    /// restarting a job is always safe (replay is bit-identical), trusting
    /// a bad snapshot never is.
    fn restore_checkpoint(
        &self,
        facade: &Detector,
        job: &JobSpec,
        trace_cycles: u64,
    ) -> Option<StreamingDetection> {
        let state = self.restore_checkpoint_state(job, trace_cycles)?;
        match facade.resume_streaming(state) {
            Ok(session) => Some(session),
            Err(_) => {
                self.discard_checkpoint(job);
                None
            }
        }
    }

    /// [`restore_checkpoint`](Self::restore_checkpoint), rehydrated into a
    /// sequential session. The checkpoint bytes carry only the fold
    /// snapshot — the schedule is re-derived from `seq` and the absolute
    /// cycle count, so fixed-budget and sequential resumes share one
    /// on-disk format (and a checkpoint written by either mode restores
    /// into whichever mode the spec now records).
    fn restore_sequential_checkpoint(
        &self,
        facade: &Detector,
        job: &JobSpec,
        trace_cycles: u64,
        seq: SequentialOptions,
    ) -> Option<clockmark_cpa::SequentialDetection> {
        let state = self.restore_checkpoint_state(job, trace_cycles)?;
        match facade.resume_sequential(state, seq) {
            Ok(session) => Some(session),
            Err(_) => {
                self.discard_checkpoint(job);
                None
            }
        }
    }

    /// Reads and validates a job's checkpointed fold snapshot. Any
    /// defect — wrong trace, wrong pattern, wrong spectrum kernel,
    /// impossible cycle count, corrupt bytes — discards the file.
    fn restore_checkpoint_state(
        &self,
        job: &JobSpec,
        trace_cycles: u64,
    ) -> Option<StreamingCpaState> {
        let path = self.checkpoint_path(job.index);
        let bytes = fs::read(&path).ok()?;
        let state = decode_checkpoint(&bytes)
            .ok()
            .and_then(|(index, trace, algo, state)| {
                if index != job.index
                    || trace != job.trace
                    || algo != self.spec.algo
                    || state.pattern != self.spec.pattern
                    || state.cycles > trace_cycles
                {
                    return None;
                }
                Some(state)
            });
        if state.is_none() {
            self.discard_checkpoint(job);
        }
        state
    }

    /// Drops a checkpoint that failed validation or rehydration.
    fn discard_checkpoint(&self, job: &JobSpec) {
        let _ = fs::remove_file(self.checkpoint_path(job.index));
        clockmark_obs::counter_add("campaign.checkpoints_discarded", 1);
    }

    /// Snapshots a job's fold to disk (tmp + rename, so a kill mid-write
    /// leaves the previous checkpoint intact).
    fn write_checkpoint(
        &self,
        job: &JobSpec,
        state: &StreamingCpaState,
    ) -> Result<(), CampaignError> {
        let bytes = encode_checkpoint(job.index, &job.trace, self.spec.algo, state);
        let path = self.checkpoint_path(job.index);
        write_atomic(&path, &bytes)?;
        clockmark_obs::counter_add("campaign.checkpoints_written", 1);
        clockmark_obs::counter_add("campaign.checkpoint_bytes", bytes.len() as u64);
        Ok(())
    }
}

/// A live-progress snapshot of a running campaign, as published to
/// `progress.json` by worker threads after every landed job and every
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignProgress {
    /// Jobs landed so far (including before this run started).
    pub done: u64,
    /// Total jobs in the campaign.
    pub total: u64,
    /// Trace cycles ingested by the current run.
    pub cycles: u64,
    /// Ingest throughput of the current run, in cycles per second.
    pub cycles_per_sec: f64,
    /// Completion throughput of the current run, in jobs per second.
    pub jobs_per_sec: f64,
    /// Estimated seconds until the remaining jobs land at the current
    /// throughput (zero until at least one job of this run has landed).
    pub eta_seconds: f64,
    /// Milliseconds the publishing run had been underway.
    pub elapsed_ms: u64,
}

impl CampaignProgress {
    /// Encodes the snapshot as one JSON object.
    pub fn encode(&self) -> String {
        format!(
            "{{\"done\":{},\"total\":{},\"cycles\":{},\"cycles_per_sec\":{},\
             \"jobs_per_sec\":{},\"eta_seconds\":{},\"elapsed_ms\":{}}}",
            self.done,
            self.total,
            self.cycles,
            self.cycles_per_sec,
            self.jobs_per_sec,
            self.eta_seconds,
            self.elapsed_ms
        )
    }

    /// Decodes a snapshot; `None` on any malformation (a torn write is
    /// indistinguishable from garbage, and both just mean "no live
    /// progress to show").
    pub fn decode(text: &str) -> Option<Self> {
        let v = json::parse(text.trim()).ok()?;
        let num = |k: &str| v.get(k).and_then(Json::as_f64);
        Some(CampaignProgress {
            done: num("done")? as u64,
            total: num("total")? as u64,
            cycles: num("cycles")? as u64,
            cycles_per_sec: num("cycles_per_sec")?,
            jobs_per_sec: num("jobs_per_sec")?,
            eta_seconds: num("eta_seconds")?,
            elapsed_ms: num("elapsed_ms")? as u64,
        })
    }
}

/// Shared by a run's worker threads: counts landed jobs and ingested
/// cycles, publishes gauges plus `progress.json` so `campaign status`
/// (even in another process) sees live throughput.
struct ProgressBoard {
    path: PathBuf,
    total: u64,
    base_done: u64,
    done: AtomicU64,
    cycles: AtomicU64,
    t0: Instant,
}

impl ProgressBoard {
    fn new(path: PathBuf, total: u64, base_done: u64) -> Self {
        ProgressBoard {
            path,
            total,
            base_done,
            done: AtomicU64::new(0),
            cycles: AtomicU64::new(0),
            t0: Instant::now(),
        }
    }

    fn note_cycles(&self, n: u64) {
        self.cycles.fetch_add(n, AtomicOrdering::Relaxed);
    }

    fn note_job_done(&self) {
        self.done.fetch_add(1, AtomicOrdering::Relaxed);
        self.publish();
    }

    fn snapshot(&self) -> CampaignProgress {
        let elapsed = self.t0.elapsed().as_secs_f64();
        let run_done = self.done.load(AtomicOrdering::Relaxed);
        let done = self.base_done + run_done;
        let cycles = self.cycles.load(AtomicOrdering::Relaxed);
        let jobs_per_sec = if elapsed > 0.0 {
            run_done as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(done);
        CampaignProgress {
            done,
            total: self.total,
            cycles,
            cycles_per_sec: if elapsed > 0.0 {
                cycles as f64 / elapsed
            } else {
                0.0
            },
            jobs_per_sec,
            eta_seconds: if jobs_per_sec > 0.0 {
                remaining as f64 / jobs_per_sec
            } else {
                0.0
            },
            elapsed_ms: (elapsed * 1e3) as u64,
        }
    }

    /// Publishes gauges and the atomic `progress.json`. Best-effort: a
    /// publish failure never fails the campaign.
    fn publish(&self) {
        let p = self.snapshot();
        clockmark_obs::gauge_set("campaign.jobs_done", p.done as f64);
        clockmark_obs::gauge_set("campaign.jobs_total", p.total as f64);
        clockmark_obs::gauge_set("campaign.cycles_per_sec", p.cycles_per_sec);
        clockmark_obs::gauge_set("campaign.eta_seconds", p.eta_seconds);
        let _ = write_atomic(&self.path, format!("{}\n", p.encode()).as_bytes());
    }
}

/// Writes `bytes` to `path` through a temp file + rename.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CampaignError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)
        .map_err(|e| CampaignError::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        CampaignError::io(
            format!("renaming {} over {}", tmp.display(), path.display()),
            e,
        )
    })?;
    Ok(())
}

/// Encodes a checkpoint: magic, spectrum kernel, job identity, then every
/// accumulator of the fold as raw little-endian bits, closed by a CRC-32.
fn encode_checkpoint(
    index: usize,
    trace: &str,
    algo: CpaAlgo,
    state: &StreamingCpaState,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + trace.len() + state.pattern.len() * 17);
    out.extend_from_slice(CKPT_MAGIC);
    out.push(algo_to_byte(algo));
    codec::put_u64(&mut out, index as u64);
    codec::put_u32(&mut out, trace.len() as u32);
    out.extend_from_slice(trace.as_bytes());
    codec::put_u32(&mut out, state.pattern.len() as u32);
    for &bit in &state.pattern {
        out.push(u8::from(bit));
    }
    for &sum in &state.residue_sums {
        codec::put_f64(&mut out, sum);
    }
    for &count in &state.residue_counts {
        codec::put_u64(&mut out, count);
    }
    codec::put_f64(&mut out, state.sum_y);
    codec::put_f64(&mut out, state.sum_yy);
    codec::put_u64(&mut out, state.cycles);
    let mut crc = Crc32::new();
    crc.update(&out);
    codec::put_u32(&mut out, crc.finish());
    out
}

/// Decodes a checkpoint back into its job identity, spectrum kernel and
/// fold state.
fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(usize, String, CpaAlgo, clockmark_cpa::StreamingCpaState), CampaignError> {
    let bad = |message: &str| CampaignError::spec(format!("checkpoint: {message}"));
    if bytes.len() < CKPT_MAGIC.len() + 5 || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(bad("bad magic"));
    }
    let body_len = bytes.len() - 4;
    let stored_crc = codec::get_u32(bytes, body_len)?;
    let mut crc = Crc32::new();
    crc.update(&bytes[..body_len]);
    if crc.finish() != stored_crc {
        return Err(bad("CRC mismatch"));
    }
    let mut at = CKPT_MAGIC.len();
    let algo = algo_from_byte(bytes[at]).ok_or_else(|| bad("unknown spectrum kernel byte"))?;
    at += 1;
    let index = codec::get_u64(bytes, at)? as usize;
    at += 8;
    let trace_len = codec::get_u32(bytes, at)? as usize;
    at += 4;
    let trace = std::str::from_utf8(
        bytes
            .get(at..at + trace_len)
            .ok_or_else(|| bad("truncated trace name"))?,
    )
    .map_err(|_| bad("trace name is not UTF-8"))?
    .to_owned();
    at += trace_len;
    let period = codec::get_u32(bytes, at)? as usize;
    at += 4;
    let pattern_bytes = bytes
        .get(at..at + period)
        .ok_or_else(|| bad("truncated pattern"))?;
    let pattern: Vec<bool> = pattern_bytes.iter().map(|&b| b != 0).collect();
    at += period;
    let mut residue_sums = Vec::with_capacity(period);
    for _ in 0..period {
        residue_sums.push(codec::get_f64(bytes, at)?);
        at += 8;
    }
    let mut residue_counts = Vec::with_capacity(period);
    for _ in 0..period {
        residue_counts.push(codec::get_u64(bytes, at)?);
        at += 8;
    }
    let sum_y = codec::get_f64(bytes, at)?;
    at += 8;
    let sum_yy = codec::get_f64(bytes, at)?;
    at += 8;
    let cycles = codec::get_u64(bytes, at)?;
    at += 8;
    if at != body_len {
        return Err(bad("trailing bytes"));
    }
    Ok((
        index,
        trace,
        algo,
        clockmark_cpa::StreamingCpaState {
            pattern,
            residue_sums,
            residue_counts,
            sum_y,
            sum_yy,
            cycles,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_corpus::TraceHeader;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "cm_campaign_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            fs::remove_dir_all(&path).ok();
            fs::create_dir_all(&path).expect("mkdir");
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn pattern() -> Vec<bool> {
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(6).expect("valid");
        (0..63).map(|_| lfsr.next_bit()).collect()
    }

    fn trace(pattern: &[bool], n: usize, phase: usize, amp: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let wm = if pattern[(i + phase) % pattern.len()] {
                    amp
                } else {
                    0.0
                };
                wm + rng.random_range(-2.0..2.0)
            })
            .collect()
    }

    /// A corpus of `marked` watermarked and 1 unmarked trace, plus the
    /// spec naming all of them.
    fn build_fixture(dir: &Path, pattern: &[bool], marked: usize, cycles: usize) -> CampaignSpec {
        let corpus_dir = dir.join("corpus");
        let mut corpus = Corpus::create(&corpus_dir).expect("creates");
        let mut names = Vec::new();
        for i in 0..marked {
            let name = format!("marked_{i}");
            let w = trace(pattern, cycles, 7 + i, 1.0, 100 + i as u64);
            corpus.add(&name, TraceHeader::bare(0), &w).expect("adds");
            names.push(name);
        }
        let w = trace(pattern, cycles, 0, 0.0, 999);
        corpus
            .add("unmarked", TraceHeader::bare(0), &w)
            .expect("adds");
        names.push("unmarked".to_owned());
        let mut spec = CampaignSpec::new(corpus_dir, pattern.to_vec(), names);
        spec.checkpoint_cycles = 1_000;
        spec.chunk_cycles = 256;
        spec
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec::new("some/corpus", pattern(), vec!["a".into(), "b".into()]);
        let back = CampaignSpec::decode(&spec.encode()).expect("valid");
        assert_eq!(back, spec);
    }

    #[test]
    fn sequential_spec_round_trips_through_json() {
        // All optional fields set.
        let full = CampaignSpec::new("some/corpus", pattern(), vec!["a".into()]).with_sequential(
            SequentialOptions::every(2_048)
                .with_confidence(1e-6)
                .with_min_cycles(512)
                .with_max_cycles(100_000),
        );
        let back = CampaignSpec::decode(&full.encode()).expect("valid");
        assert_eq!(back, full);
        assert_eq!(
            back.sequential.expect("kept").confidence.expect("kept"),
            1e-6
        );

        // Optionals absent stay absent.
        let lean = CampaignSpec::new("some/corpus", pattern(), vec!["a".into()])
            .with_sequential(SequentialOptions::default().with_growth(1.5));
        let back = CampaignSpec::decode(&lean.encode()).expect("valid");
        assert_eq!(back, lean);
        let seq = back.sequential.expect("kept");
        assert_eq!(seq.confidence, None);
        assert_eq!(seq.max_cycles, None);

        // Specs written before sequential campaigns existed decode to
        // fixed-budget mode.
        let legacy = CampaignSpec::new("some/corpus", pattern(), vec!["a".into()]);
        assert!(!legacy.encode().contains("sequential"));
        let back = CampaignSpec::decode(&legacy.encode()).expect("valid");
        assert_eq!(back.sequential, None);
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        let outcome = JobOutcome {
            index: 3,
            trace: "chip_i_s7".to_owned(),
            cycles: 30_000,
            result: DetectionResult {
                detected: true,
                peak_rotation: 41,
                peak_rho: 0.012_345_678_901_234_567,
                floor_max_abs: 0.003_4,
                ratio: 3.63,
                zscore: 11.25,
            },
        };
        let back = JobOutcome::decode(&outcome.encode()).expect("valid");
        assert_eq!(
            back.result.peak_rho.to_bits(),
            outcome.result.peak_rho.to_bits()
        );
        assert_eq!(back, outcome);
    }

    #[test]
    fn campaign_runs_to_completion_and_reports() {
        let dir = TempDir::new("complete");
        let pattern = pattern();
        let spec = build_fixture(&dir.0, &pattern, 3, 4_000);
        let campaign = Campaign::create(dir.0.join("campaign"), spec)
            .expect("creates")
            .with_threads(2);
        let status = campaign.run(&CampaignLimits::none()).expect("runs");
        assert!(status.is_complete(), "{status}");
        assert_eq!(status.total, 4);
        assert_eq!(status.detected, 3, "{status}");
        assert_eq!(status.checkpointed, 0);

        let report = campaign.report().expect("complete");
        assert_eq!(report.outcomes.len(), 4);
        assert!(!report.outcomes[3].result.detected, "unmarked trace");
        assert!(dir.0.join("campaign/report.json").exists());

        // Running again is a no-op that leaves the report untouched.
        let before = fs::read(dir.0.join("campaign/report.json")).expect("reads");
        let again = campaign.run(&CampaignLimits::none()).expect("runs");
        assert!(again.is_complete());
        assert_eq!(
            before,
            fs::read(dir.0.join("campaign/report.json")).expect("reads")
        );
    }

    #[test]
    fn interrupted_campaign_resumes_to_a_byte_identical_report() {
        let dir = TempDir::new("resume");
        let pattern = pattern();
        let spec = build_fixture(&dir.0, &pattern, 3, 4_000);

        let reference = Campaign::create(dir.0.join("reference"), spec.clone())
            .expect("creates")
            .with_threads(2);
        assert!(reference
            .run(&CampaignLimits::none())
            .expect("runs")
            .is_complete());
        let want = fs::read(dir.0.join("reference/report.json")).expect("reads");

        // Drive the same campaign through repeated simulated kills: every
        // pass interrupts each in-flight job mid-trace.
        let interrupted = Campaign::create(dir.0.join("interrupted"), spec)
            .expect("creates")
            .with_threads(2);
        let limits = CampaignLimits {
            max_jobs: Some(2),
            interrupt_job_after_cycles: Some(700),
        };
        let mut passes = 0;
        while !interrupted.run(&limits).expect("runs").is_complete() {
            passes += 1;
            assert!(passes < 100, "campaign failed to converge");
        }
        assert!(
            passes >= 3,
            "limits too weak to exercise resume ({passes} passes)"
        );
        let got = fs::read(dir.0.join("interrupted/report.json")).expect("reads");
        assert_eq!(got, want, "resumed report must be byte-identical");
    }

    #[test]
    fn sequential_campaign_early_stops_and_resumes_byte_identically() {
        let dir = TempDir::new("seq_resume");
        let pattern = pattern();
        let mut spec = build_fixture(&dir.0, &pattern, 3, 12_000);
        spec = spec.with_sequential(SequentialOptions::every(1_024));

        let reference = Campaign::create(dir.0.join("reference"), spec.clone())
            .expect("creates")
            .with_threads(2);
        assert!(reference
            .run(&CampaignLimits::none())
            .expect("runs")
            .is_complete());
        let report = reference.report().expect("complete");
        for outcome in &report.outcomes[..3] {
            assert!(outcome.result.detected, "marked trace: {outcome:?}");
            assert!(
                outcome.cycles < 12_000,
                "watermarked jobs must stop early, consumed {}",
                outcome.cycles
            );
        }
        assert!(!report.outcomes[3].result.detected, "unmarked trace");
        assert_eq!(
            report.outcomes[3].cycles, 12_000,
            "no early stop without a watermark: the full trace is the budget"
        );
        let want = fs::read(dir.0.join("reference/report.json")).expect("reads");

        // Repeated simulated kills: interrupts land both before the first
        // schedule checkpoint (700 < 1024) and between later ones, so
        // resumes must re-derive the same absolute checkpoint sequence.
        let interrupted = Campaign::create(dir.0.join("interrupted"), spec)
            .expect("creates")
            .with_threads(2);
        let limits = CampaignLimits {
            max_jobs: Some(2),
            interrupt_job_after_cycles: Some(700),
        };
        let mut passes = 0;
        while !interrupted.run(&limits).expect("runs").is_complete() {
            passes += 1;
            assert!(passes < 100, "campaign failed to converge");
        }
        assert!(
            passes >= 3,
            "limits too weak to exercise resume ({passes} passes)"
        );
        let got = fs::read(dir.0.join("interrupted/report.json")).expect("reads");
        assert_eq!(
            got, want,
            "resumed sequential report must be byte-identical"
        );
    }

    #[test]
    fn status_counts_checkpointed_jobs() {
        let dir = TempDir::new("status");
        let pattern = pattern();
        let spec = build_fixture(&dir.0, &pattern, 1, 4_000);
        let campaign = Campaign::create(dir.0.join("campaign"), spec)
            .expect("creates")
            .with_threads(1);
        let status = campaign
            .run(&CampaignLimits {
                max_jobs: Some(1),
                interrupt_job_after_cycles: Some(500),
            })
            .expect("runs");
        assert_eq!(status.completed, 0);
        assert_eq!(status.checkpointed, 1, "{status}");
        assert_eq!(status.pending(), 2);
        assert!(status.to_string().contains("0/2 jobs done"), "{status}");
    }

    #[test]
    fn corrupt_checkpoints_are_discarded_and_the_job_restarts() {
        let dir = TempDir::new("corrupt");
        let pattern = pattern();
        let spec = build_fixture(&dir.0, &pattern, 1, 3_000);
        let campaign = Campaign::create(dir.0.join("campaign"), spec)
            .expect("creates")
            .with_threads(1);
        // Leave a mid-flight checkpoint behind, then corrupt it.
        campaign
            .run(&CampaignLimits {
                max_jobs: Some(1),
                interrupt_job_after_cycles: Some(500),
            })
            .expect("runs");
        let ckpt = dir.0.join("campaign/checkpoints/job_0.ckpt");
        assert!(ckpt.exists());
        let mut bytes = fs::read(&ckpt).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&ckpt, &bytes).expect("writes");

        let status = campaign.run(&CampaignLimits::none()).expect("runs");
        assert!(status.is_complete());
        assert!(!ckpt.exists(), "bad checkpoint must be removed");
        assert_eq!(campaign.report().expect("complete").detected(), 1);
    }

    #[test]
    fn torn_final_results_line_is_tolerated() {
        let dir = TempDir::new("torn");
        let pattern = pattern();
        let spec = build_fixture(&dir.0, &pattern, 1, 3_000);
        let campaign = Campaign::create(dir.0.join("campaign"), spec)
            .expect("creates")
            .with_threads(1);
        let reference = {
            let status = campaign.run(&CampaignLimits::none()).expect("runs");
            assert!(status.is_complete());
            fs::read(dir.0.join("campaign/report.json")).expect("reads")
        };

        // Truncate the last line mid-record, as a kill mid-append would.
        let results_path = dir.0.join("campaign/results.jsonl");
        let text = fs::read_to_string(&results_path).expect("reads");
        let cut = text.trim_end().len() - 10;
        fs::write(&results_path, &text[..cut]).expect("writes");

        let status = campaign.run(&CampaignLimits::none()).expect("runs");
        assert!(status.is_complete(), "{status}");
        let report = fs::read(dir.0.join("campaign/report.json")).expect("reads");
        assert_eq!(report, reference, "rerun job must reproduce the same bytes");
    }

    #[test]
    fn creation_and_spec_validation_reject_bad_input() {
        let dir = TempDir::new("validate");
        let mut spec = CampaignSpec::new(dir.0.join("corpus"), pattern(), vec!["a".into()]);
        let campaign_dir = dir.0.join("campaign");
        Campaign::create(&campaign_dir, spec.clone()).expect("creates");
        // No double-create over an existing campaign.
        assert!(Campaign::create(&campaign_dir, spec.clone()).is_err());
        // Re-open reads the identical spec back.
        assert_eq!(Campaign::open(&campaign_dir).expect("opens").spec(), &spec);

        spec.traces.clear();
        assert!(matches!(
            spec.validate().unwrap_err(),
            CampaignError::Spec { .. }
        ));
        spec.traces = vec!["a".into(), "a".into()];
        assert!(spec.validate().is_err(), "duplicate trace");
        spec.traces = vec!["a".into()];
        spec.pattern = vec![true; 8];
        assert!(matches!(
            spec.validate().unwrap_err(),
            CampaignError::Cpa(CpaError::ConstantPattern)
        ));
    }

    #[test]
    fn missing_corpus_trace_fails_before_any_work() {
        let dir = TempDir::new("missing");
        let pattern = pattern();
        let mut spec = build_fixture(&dir.0, &pattern, 1, 1_000);
        spec.traces.push("ghost".to_owned());
        let campaign = Campaign::create(dir.0.join("campaign"), spec).expect("creates");
        let err = campaign.run(&CampaignLimits::none()).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn checkpoint_codec_round_trips_and_rejects_corruption() {
        let pattern = pattern();
        let facade = Detector::new(&pattern).expect("valid");
        let mut session = facade.detect_streaming();
        session.push_chunk(&trace(&pattern, 1_000, 3, 0.8, 5));
        let bytes = encode_checkpoint(7, "chip_i_s3", CpaAlgo::Fft, &session.state());
        let (index, trace_name, algo, state) = decode_checkpoint(&bytes).expect("valid");
        assert_eq!((index, trace_name.as_str()), (7, "chip_i_s3"));
        assert_eq!(algo, CpaAlgo::Fft);
        let restored = facade.resume_streaming(state).expect("valid");
        assert_eq!(restored.state(), session.state());

        for at in [0usize, 9, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(decode_checkpoint(&bad).is_err(), "flip at {at} undetected");
        }
        assert!(decode_checkpoint(&bytes[..bytes.len() - 1]).is_err());
    }
}
