//! A std-thread parallel experiment engine.
//!
//! The paper's evaluation repeats independent [`Experiment`] runs many
//! times — 50 repetitions per box of Fig. 6, a dozen configurations per
//! ablation sweep — and every run is embarrassingly parallel: experiments
//! share nothing and each seeds its own RNG. [`ExperimentBatch`] fans such
//! runs across worker threads with [`std::thread::scope`], preserving the
//! input order of the results so a parallel sweep prints byte-identical
//! tables to a serial one.
//!
//! Worker count comes from [`clockmark_cpa::thread_count`]: the
//! `CLOCKMARK_THREADS` environment variable when set, the machine's
//! available parallelism otherwise.

use crate::{ClockmarkError, Experiment, ExperimentOutcome, WatermarkArchitecture};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on up to `threads` worker threads, returning
/// the results **in input order**.
///
/// Items are claimed from a shared counter, so threads stay busy even when
/// per-item cost varies; ordering is restored afterwards. With `threads`
/// ≤ 1 (or a single item) everything runs on the calling thread — same
/// results, no spawn overhead.
///
/// ```
/// let squares = clockmark::parallel_map(&[1, 2, 3, 4], 8, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else { break };
                        mine.push((idx, f(item)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("batch worker panicked"));
        }
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A set of independent experiments run across worker threads.
///
/// ```
/// # fn main() -> Result<(), clockmark::ClockmarkError> {
/// use clockmark::{ClockModulationWatermark, Experiment, ExperimentBatch, WgcConfig};
///
/// let arch = ClockModulationWatermark {
///     wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
///     ..ClockModulationWatermark::paper()
/// };
/// let outcomes = ExperimentBatch::repeat_with_seeds(&Experiment::quick(12_000, 0), 1..=4)
///     .run(&arch)?;
/// assert_eq!(outcomes.len(), 4);
/// assert!(outcomes.iter().all(|o| o.detection.detected));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentBatch {
    experiments: Vec<Experiment>,
    threads: usize,
}

impl ExperimentBatch {
    /// A batch over explicit experiments, using
    /// [`clockmark_cpa::thread_count`] workers.
    pub fn new(experiments: Vec<Experiment>) -> Self {
        ExperimentBatch {
            experiments,
            threads: clockmark_cpa::thread_count(),
        }
    }

    /// The repetition study of Fig. 6: the same experiment re-run once per
    /// seed (results come back in seed order).
    pub fn repeat_with_seeds(base: &Experiment, seeds: impl IntoIterator<Item = u64>) -> Self {
        Self::new(
            seeds
                .into_iter()
                .map(|seed| base.clone().with_seed(seed))
                .collect(),
        )
    }

    /// Overrides the worker count (primarily for tests and benchmarks;
    /// clamped to at least 1 worker at run time).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of experiments in the batch.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The experiments in run order.
    pub fn experiments(&self) -> &[Experiment] {
        &self.experiments
    }

    /// Runs every experiment against one architecture, in parallel, and
    /// returns the outcomes **in input order**.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest-ordered failing experiment (the
    /// same one a serial loop would have reported first).
    pub fn run<A>(&self, architecture: &A) -> Result<Vec<ExperimentOutcome>, ClockmarkError>
    where
        A: WatermarkArchitecture + Sync + ?Sized,
    {
        parallel_map(&self.experiments, self.threads, |experiment| {
            experiment.run(architecture)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockModulationWatermark, WgcConfig};

    fn small_arch() -> ClockModulationWatermark {
        ClockModulationWatermark {
            words: 32,
            regs_per_word: 32,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 5, 16] {
            let out = parallel_map(&items, threads, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_matches_a_serial_loop_exactly() {
        let base = Experiment::quick(6_000, 0);
        let arch = small_arch();
        let seeds = [11u64, 12, 13, 14, 15];

        let serial: Vec<_> = seeds
            .iter()
            .map(|&s| base.clone().with_seed(s).run(&arch).expect("runs"))
            .collect();
        let parallel = ExperimentBatch::repeat_with_seeds(&base, seeds)
            .with_threads(4)
            .run(&arch)
            .expect("runs");

        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            // The pipeline is fully seeded, so each repetition is
            // reproducible: parallel scheduling must not change anything.
            assert_eq!(
                a.detection.peak_rho.to_bits(),
                b.detection.peak_rho.to_bits()
            );
            assert_eq!(a.detection.peak_rotation, b.detection.peak_rotation);
            assert_eq!(a.spectrum.rho(), b.spectrum.rho());
        }
    }

    #[test]
    fn batch_propagates_the_first_error_in_order() {
        let good = Experiment::quick(5_000, 1);
        let mut zero = Experiment::quick(5_000, 2);
        zero.cycles = 0;
        let batch = ExperimentBatch::new(vec![good.clone(), zero, good]).with_threads(3);
        assert!(matches!(
            batch.run(&small_arch()),
            Err(ClockmarkError::ZeroCycles)
        ));
    }

    #[test]
    fn batch_accessors_report_contents() {
        let batch = ExperimentBatch::repeat_with_seeds(&Experiment::quick(1_000, 0), 0..6);
        assert_eq!(batch.len(), 6);
        assert!(!batch.is_empty());
        assert_eq!(batch.experiments()[3].seed, 3);
        assert!(ExperimentBatch::new(Vec::new()).is_empty());
    }
}
