//! A std-thread parallel experiment engine.
//!
//! The paper's evaluation repeats independent [`Experiment`] runs many
//! times — 50 repetitions per box of Fig. 6, a dozen configurations per
//! ablation sweep — and every run is embarrassingly parallel: experiments
//! share nothing and each seeds its own RNG. [`ExperimentBatch`] fans such
//! runs across worker threads with [`std::thread::scope`], preserving the
//! input order of the results so a parallel sweep prints byte-identical
//! tables to a serial one.
//!
//! Worker count comes from [`clockmark_cpa::thread_count`]: the
//! `CLOCKMARK_THREADS` environment variable when set, the machine's
//! available parallelism otherwise.

use crate::{ClockmarkError, Experiment, ExperimentOutcome, WatermarkArchitecture};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Applies `f` to every item on up to `threads` worker threads, returning
/// the results **in input order**.
///
/// Items are claimed from a shared counter, so threads stay busy even when
/// per-item cost varies; ordering is restored afterwards. With `threads`
/// ≤ 1 (or a single item) everything runs on the calling thread — same
/// results, no spawn overhead.
///
/// ```
/// let squares = clockmark::parallel_map(&[1, 2, 3, 4], 8, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else { break };
                        mine.push((idx, f(item)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("batch worker panicked"));
        }
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Per-worker accounting from one reported batch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index, 0-based (worker 0 is the calling thread in a serial
    /// run).
    pub worker: usize,
    /// Items this worker completed.
    pub items: usize,
    /// Wall-clock time this worker spent inside experiments (its busy
    /// time; the gap to the batch wall time is claim/join overhead and
    /// end-of-batch idling).
    pub busy: Duration,
}

/// A progress event, delivered after each experiment completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// Experiments finished so far, including this one.
    pub completed: usize,
    /// Total experiments in the batch.
    pub total: usize,
    /// Input index of the experiment that just finished.
    pub index: usize,
    /// The worker that ran it.
    pub worker: usize,
}

/// Timing summary of one batch run: wall time, per-worker utilisation,
/// and the speedup over the serial estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Experiments the batch ran.
    pub experiments: usize,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
    /// One entry per worker that participated.
    pub workers: Vec<WorkerStats>,
}

impl BatchReport {
    /// Total busy time across workers — what a serial loop over the same
    /// experiments would have cost (claim overhead aside).
    pub fn serial_estimate(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Estimated speedup over a serial run (`serial_estimate / wall`);
    /// 0 when the batch finished too fast to time.
    pub fn speedup_estimate(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.serial_estimate().as_secs_f64() / wall
        } else {
            0.0
        }
    }

    /// Experiments completed per wall-clock second.
    pub fn throughput_per_sec(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.experiments as f64 / wall
        } else {
            0.0
        }
    }

    /// A worker's busy time as a fraction of the batch wall time (0–1).
    pub fn utilisation(&self, worker: &WorkerStats) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            (worker.busy.as_secs_f64() / wall).min(1.0)
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} experiments on {} worker(s) in {:.2?} ({:.2} exp/s)",
            self.experiments,
            self.workers.len(),
            self.wall,
            self.throughput_per_sec(),
        )?;
        writeln!(
            f,
            "serial estimate {:.2?}, speedup ~{:.2}x",
            self.serial_estimate(),
            self.speedup_estimate(),
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "  worker {:>2}: {:>4} experiment(s), busy {:>9.2?} ({:>5.1}% util)",
                w.worker,
                w.items,
                w.busy,
                100.0 * self.utilisation(w),
            )?;
        }
        Ok(())
    }
}

/// The engine behind [`ExperimentBatch`]: [`parallel_map`] plus
/// per-worker accounting and completion callbacks.
fn run_engine<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
    progress: Option<&(dyn Fn(BatchProgress) + Sync)>,
) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let total = items.len();
    let threads = threads.clamp(1, total.max(1));
    let completed = AtomicUsize::new(0);
    let report = |index: usize, worker: usize| {
        if let Some(callback) = progress {
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            callback(BatchProgress {
                completed: done,
                total,
                index,
                worker,
            });
        }
    };

    if threads == 1 {
        let mut stats = WorkerStats::default();
        let mut out = Vec::with_capacity(total);
        for (index, item) in items.iter().enumerate() {
            let t0 = Instant::now();
            out.push(f(item));
            stats.busy += t0.elapsed();
            stats.items += 1;
            report(index, 0);
        }
        return (out, vec![stats]);
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(total);
    let mut workers = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let f = &f;
                let next = &next;
                let report = &report;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut stats = WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    };
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        let t0 = Instant::now();
                        mine.push((index, f(item)));
                        stats.busy += t0.elapsed();
                        stats.items += 1;
                        report(index, worker);
                    }
                    (mine, stats)
                })
            })
            .collect();
        for handle in handles {
            let (mine, stats) = handle.join().expect("batch worker panicked");
            indexed.extend(mine);
            workers.push(stats);
        }
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    workers.sort_by_key(|w| w.worker);
    (indexed.into_iter().map(|(_, r)| r).collect(), workers)
}

/// A set of independent experiments run across worker threads.
///
/// ```
/// # fn main() -> Result<(), clockmark::ClockmarkError> {
/// use clockmark::{ClockModulationWatermark, Experiment, ExperimentBatch, WgcConfig};
///
/// let arch = ClockModulationWatermark {
///     wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
///     ..ClockModulationWatermark::paper()
/// };
/// let outcomes = ExperimentBatch::repeat_with_seeds(&Experiment::quick(12_000, 0), 1..=4)
///     .run(&arch)?;
/// assert_eq!(outcomes.len(), 4);
/// assert!(outcomes.iter().all(|o| o.detection.detected));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentBatch {
    experiments: Vec<Experiment>,
    threads: usize,
}

impl ExperimentBatch {
    /// A batch over explicit experiments, using
    /// [`clockmark_cpa::thread_count`] workers.
    pub fn new(experiments: Vec<Experiment>) -> Self {
        ExperimentBatch {
            experiments,
            threads: clockmark_cpa::thread_count(),
        }
    }

    /// The repetition study of Fig. 6: the same experiment re-run once per
    /// seed (results come back in seed order).
    pub fn repeat_with_seeds(base: &Experiment, seeds: impl IntoIterator<Item = u64>) -> Self {
        Self::new(
            seeds
                .into_iter()
                .map(|seed| base.clone().with_seed(seed))
                .collect(),
        )
    }

    /// Overrides the worker count (primarily for tests and benchmarks;
    /// clamped to at least 1 worker at run time).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of experiments in the batch.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The experiments in run order.
    pub fn experiments(&self) -> &[Experiment] {
        &self.experiments
    }

    /// Runs every experiment against one architecture, in parallel, and
    /// returns the outcomes **in input order**.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest-ordered failing experiment (the
    /// same one a serial loop would have reported first).
    pub fn run<A>(&self, architecture: &A) -> Result<Vec<ExperimentOutcome>, ClockmarkError>
    where
        A: WatermarkArchitecture + Sync + ?Sized,
    {
        Ok(self.run_reported(architecture)?.0)
    }

    /// Like [`run`](Self::run), but also returns the [`BatchReport`] with
    /// wall time, per-worker utilisation, and the speedup estimate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_reported<A>(
        &self,
        architecture: &A,
    ) -> Result<(Vec<ExperimentOutcome>, BatchReport), ClockmarkError>
    where
        A: WatermarkArchitecture + Sync + ?Sized,
    {
        self.run_with_progress(architecture, |_| {})
    }

    /// Like [`run_reported`](Self::run_reported), with `progress` invoked
    /// (from the completing worker's thread) after each experiment
    /// finishes — the hook bench bins use to print live progress.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_with_progress<A, P>(
        &self,
        architecture: &A,
        progress: P,
    ) -> Result<(Vec<ExperimentOutcome>, BatchReport), ClockmarkError>
    where
        A: WatermarkArchitecture + Sync + ?Sized,
        P: Fn(BatchProgress) + Sync,
    {
        let _span = clockmark_obs::span("batch.run")
            .field("experiments", self.experiments.len())
            .field("threads", self.threads);
        let t0 = Instant::now();
        let (results, workers) = run_engine(
            &self.experiments,
            self.threads,
            |experiment| experiment.run(architecture),
            Some(&progress),
        );
        let report = BatchReport {
            experiments: self.experiments.len(),
            wall: t0.elapsed(),
            workers,
        };
        if clockmark_obs::enabled() {
            clockmark_obs::counter_add("batch.experiments", report.experiments as u64);
            for worker in &report.workers {
                clockmark_obs::observe("batch.worker_busy_seconds", worker.busy.as_secs_f64());
            }
            clockmark_obs::gauge_set("batch.speedup_estimate", report.speedup_estimate());
            clockmark_obs::gauge_set("batch.throughput_per_sec", report.throughput_per_sec());
        }
        let outcomes: Result<Vec<ExperimentOutcome>, ClockmarkError> =
            results.into_iter().collect();
        Ok((outcomes?, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockModulationWatermark, WgcConfig};

    fn small_arch() -> ClockModulationWatermark {
        ClockModulationWatermark {
            words: 32,
            regs_per_word: 32,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 5, 16] {
            let out = parallel_map(&items, threads, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_matches_a_serial_loop_exactly() {
        let base = Experiment::quick(6_000, 0);
        let arch = small_arch();
        let seeds = [11u64, 12, 13, 14, 15];

        let serial: Vec<_> = seeds
            .iter()
            .map(|&s| base.clone().with_seed(s).run(&arch).expect("runs"))
            .collect();
        let parallel = ExperimentBatch::repeat_with_seeds(&base, seeds)
            .with_threads(4)
            .run(&arch)
            .expect("runs");

        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            // The pipeline is fully seeded, so each repetition is
            // reproducible: parallel scheduling must not change anything.
            assert_eq!(
                a.detection.peak_rho.to_bits(),
                b.detection.peak_rho.to_bits()
            );
            assert_eq!(a.detection.peak_rotation, b.detection.peak_rotation);
            assert_eq!(a.spectrum.rho(), b.spectrum.rho());
        }
    }

    #[test]
    fn batch_propagates_the_first_error_in_order() {
        let good = Experiment::quick(5_000, 1);
        let mut zero = Experiment::quick(5_000, 2);
        zero.cycles = 0;
        let batch = ExperimentBatch::new(vec![good.clone(), zero, good]).with_threads(3);
        assert!(matches!(
            batch.run(&small_arch()),
            Err(ClockmarkError::ZeroCycles)
        ));
    }

    #[test]
    fn report_accounts_every_experiment_to_a_worker() {
        let batch =
            ExperimentBatch::repeat_with_seeds(&Experiment::quick(4_000, 0), 1..=7).with_threads(3);
        let (outcomes, report) = batch.run_reported(&small_arch()).expect("runs");
        assert_eq!(outcomes.len(), 7);
        assert_eq!(report.experiments, 7);
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.workers.iter().map(|w| w.items).sum::<usize>(), 7);
        assert_eq!(
            report.workers.iter().map(|w| w.worker).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(report.serial_estimate() >= report.workers[0].busy);
        assert!(report.speedup_estimate() > 0.0);
        assert!(report.throughput_per_sec() > 0.0);
        for w in &report.workers {
            let util = report.utilisation(w);
            assert!((0.0..=1.0).contains(&util), "utilisation {util}");
        }
        let rendered = report.to_string();
        assert!(
            rendered.contains("7 experiments on 3 worker(s)"),
            "{rendered}"
        );
        assert!(rendered.contains("speedup"), "{rendered}");
    }

    #[test]
    fn progress_callback_sees_every_index_exactly_once() {
        use std::sync::Mutex;
        let batch =
            ExperimentBatch::repeat_with_seeds(&Experiment::quick(4_000, 0), 1..=6).with_threads(2);
        let seen = Mutex::new(Vec::new());
        let (_, report) = batch
            .run_with_progress(&small_arch(), |p| {
                assert_eq!(p.total, 6);
                assert!(p.completed >= 1 && p.completed <= 6);
                seen.lock().expect("lock").push(p.index);
            })
            .expect("runs");
        let mut seen = seen.into_inner().expect("lock");
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        assert_eq!(report.experiments, 6);
    }

    #[test]
    fn serial_engine_reports_a_single_worker() {
        let batch =
            ExperimentBatch::repeat_with_seeds(&Experiment::quick(4_000, 0), 1..=3).with_threads(1);
        let (_, report) = batch.run_reported(&small_arch()).expect("runs");
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].worker, 0);
        assert_eq!(report.workers[0].items, 3);
    }

    #[test]
    fn batch_accessors_report_contents() {
        let batch = ExperimentBatch::repeat_with_seeds(&Experiment::quick(1_000, 0), 0..6);
        assert_eq!(batch.len(), 6);
        assert!(!batch.is_empty());
        assert_eq!(batch.experiments()[3].seed, 3);
        assert!(ExperimentBatch::new(Vec::new()).is_empty());
    }
}
