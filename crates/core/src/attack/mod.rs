//! Adversarial analysis: removal attacks, capture/trace attacks and the
//! serializable attack↔defense scenario API.
//!
//! The module grew in two stages:
//!
//! - [`removal_attack`] (Section VI of the paper) answers the *structural*
//!   question: can a third party excise the watermark from the RTL without
//!   breaking the system?
//! - The scenario API answers the *signal-level* questions posed by the
//!   adversarial literature (SIGNED's challenge-response interrogation,
//!   the smart-grid work on cracking noise-based dynamic watermarks):
//!   what happens to detection when an adversary desynchronises the
//!   capture, disables part of the modulated clock tree, jams the LFSR
//!   spectrum, or replays a forged trace estimated from captures — and
//!   which defenses survive which attacks?
//!
//! The scenario surface is three serializable types plus one trait:
//!
//! - [`AttackSpec`] — what the adversary does, as data. [`AttackSpec::build`]
//!   turns a spec into a boxed [`Attack`], a deterministic trace transform:
//!   the same spec, seed and input always produce byte-identical output
//!   (all randomness is counter-based hashing of the seed, never stateful).
//! - [`DefenseSpec`] — what the verifier deploys: extra coexisting
//!   watermarks, a seed-hopping schedule, or SIGNED-style
//!   challenge-response phase commands.
//! - [`ScenarioSpec`] — one (attack, defense, SNR) cell, persisted into
//!   `campaign.json` exactly like the spectrum kernel, with the same
//!   tolerant decode for legacy specs (a pre-scenario `campaign.json`
//!   simply has no `scenario` field and keeps running plain jobs).
//!
//! The campaign engine runs cells (see [`crate::scenario`]); this module
//! defines the vocabulary. [`gate_disable_plan`] is the structural half of
//! the gate-disable attack: given an embedding, it uses
//! `clockmark-netlist` clock-tree queries to pick which ICGs an informed
//! adversary would disable and reports the surviving modulation fraction.

mod removal;
mod spec;
mod structural;
mod transforms;

pub use removal::{removal_attack, AttackReport, AttackVerdict};
pub(crate) use spec::decode_seed;
pub use spec::{AttackSpec, DefenseSpec, ScenarioSpec, SpecError};
pub use structural::{apply_gate_disable, gate_disable_plan, GateDisablePlan};
pub use transforms::{hash_gaussian, mix_seed, Attack, AttackContext};
