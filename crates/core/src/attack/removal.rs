//! Removal-attack analysis (Section VI of the paper).
//!
//! A third party reading the RTL tries to excise the watermark. The paper
//! argues the outcome structurally:
//!
//! - the state-of-the-art **load circuit is stand-alone** — nothing in the
//!   system consumes its outputs — so deleting it "has no impact on system
//!   performance";
//! - the proposed technique, with its WGC **woven into the clock enables
//!   of functional logic**, cannot be removed without de-clocking that
//!   logic: "the system's functionality is greatly impaired when the
//!   watermark is removed".
//!
//! [`removal_attack`] makes that argument executable on any embedding.

use crate::{ClockmarkError, EmbeddedWatermark};
use clockmark_netlist::{CellId, Netlist};
use std::collections::HashSet;

/// The structural verdict of a removal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackVerdict {
    /// The watermark is a stand-alone subcircuit: deleting it leaves every
    /// other register's behaviour unchanged. The attack succeeds cleanly.
    CleanRemoval,
    /// Deleting the watermark changes the clocking or data of functional
    /// registers — the system breaks and the attack is self-defeating.
    FunctionalDamage,
}

/// The full report of a structural removal attack.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Structural verdict.
    pub verdict: AttackVerdict,
    /// Whether the watermark set has zero influence on outside registers.
    pub standalone: bool,
    /// Functional (non-watermark) registers whose behaviour changes when
    /// the watermark cells are deleted.
    pub affected_registers: usize,
    /// Functional registers in the rest of the design.
    pub system_registers: usize,
}

impl AttackReport {
    /// The fraction of the system's registers the removal damages.
    ///
    /// Guards the empty-design case (`0/0` would be NaN, which poisons
    /// every downstream comparison and JSON encoding): a design with no
    /// functional registers reports zero impact when nothing is affected
    /// and full impact when something is (the only way `affected > 0`
    /// with `system == 0` is a report assembled from inconsistent counts,
    /// and saturating at 1.0 keeps the value meaningful).
    pub fn impact_fraction(&self) -> f64 {
        if self.system_registers == 0 {
            return if self.affected_registers == 0 {
                0.0
            } else {
                1.0
            };
        }
        self.affected_registers as f64 / self.system_registers as f64
    }
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.verdict {
            AttackVerdict::CleanRemoval => write!(
                f,
                "clean removal: watermark is stand-alone ({} system registers untouched)",
                self.system_registers
            ),
            AttackVerdict::FunctionalDamage => write!(
                f,
                "removal breaks the system: {}/{} functional registers affected ({:.1} %)",
                self.affected_registers,
                self.system_registers,
                self.impact_fraction() * 100.0
            ),
        }
    }
}

/// Analyses what deleting a watermark's cells would do to the rest of the
/// design.
///
/// # Errors
///
/// Propagates netlist query errors (dangling cells in the embedding).
pub fn removal_attack(
    netlist: &Netlist,
    watermark: &EmbeddedWatermark,
) -> Result<AttackReport, ClockmarkError> {
    let set: HashSet<CellId> = watermark.all_cells().into_iter().collect();
    let influence = netlist.influence_of(&set)?;

    let watermark_registers = watermark
        .all_cells()
        .iter()
        .filter(|&&c| {
            netlist
                .cell(c)
                .map(|cell| cell.kind.is_register())
                .unwrap_or(false)
        })
        .count();
    let system_registers = netlist.register_count() - watermark_registers;
    let affected = influence.affected_register_count();

    Ok(AttackReport {
        verdict: if influence.is_standalone() {
            AttackVerdict::CleanRemoval
        } else {
            AttackVerdict::FunctionalDamage
        },
        standalone: influence.is_standalone(),
        affected_registers: affected,
        system_registers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClockModulationWatermark, FunctionalBlock, LoadCircuitWatermark, WatermarkArchitecture,
        WgcConfig,
    };
    use clockmark_netlist::{DataSource, GroupId, RegisterConfig};

    fn wgc_small() -> WgcConfig {
        WgcConfig::MaxLengthLfsr { width: 6, seed: 1 }
    }

    /// Adds some unrelated functional registers so "system registers" is
    /// non-trivial.
    fn add_system_logic(netlist: &mut Netlist, clk: clockmark_netlist::ClockRootId, n: u32) {
        for _ in 0..n {
            netlist
                .add_register(
                    GroupId::TOP,
                    RegisterConfig::new(clk.into()).data(DataSource::Toggle),
                )
                .expect("system register");
        }
    }

    #[test]
    fn load_circuit_watermark_is_cleanly_removable() {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        add_system_logic(&mut netlist, clk, 50);
        let arch = LoadCircuitWatermark {
            load_registers: 64,
            regs_per_gate: 32,
            clock_gated: true,
            wgc: wgc_small(),
        };
        let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
        let report = removal_attack(&netlist, &wm).expect("analyses");
        assert_eq!(report.verdict, AttackVerdict::CleanRemoval);
        assert!(report.standalone);
        assert_eq!(report.affected_registers, 0);
        assert_eq!(report.system_registers, 50);
        assert_eq!(report.impact_fraction(), 0.0);
        assert!(report.to_string().contains("clean removal"));
    }

    #[test]
    fn redundant_gated_block_is_also_removable() {
        // The test chips' redundant block is stand-alone too (the paper
        // acknowledges this; the robustness comes from the reuse variant).
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        add_system_logic(&mut netlist, clk, 20);
        let arch = ClockModulationWatermark {
            words: 4,
            regs_per_word: 8,
            switching_registers: 0,
            wgc: wgc_small(),
        };
        let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
        let report = removal_attack(&netlist, &wm).expect("analyses");
        assert_eq!(report.verdict, AttackVerdict::CleanRemoval);
    }

    #[test]
    fn reused_ip_block_breaks_when_watermark_is_removed() {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        add_system_logic(&mut netlist, clk, 10);
        let block = FunctionalBlock::synthesize(&mut netlist, "dsp", clk.into(), 4, 16)
            .expect("synthesizes");
        let arch = ClockModulationWatermark {
            wgc: wgc_small(),
            ..ClockModulationWatermark::paper()
        };
        let wm = arch
            .embed_reusing(&mut netlist, clk.into(), &block)
            .expect("embeds");

        let report = removal_attack(&netlist, &wm).expect("analyses");
        assert_eq!(report.verdict, AttackVerdict::FunctionalDamage);
        assert!(!report.standalone);
        // All 64 block registers lose their (correct) clock enable.
        assert_eq!(report.affected_registers, 64);
        assert_eq!(report.system_registers, 64 + 10);
        assert!(report.impact_fraction() > 0.8);
        assert!(report.to_string().contains("breaks"));
    }

    #[test]
    fn impact_fraction_handles_empty_system() {
        let report = AttackReport {
            verdict: AttackVerdict::CleanRemoval,
            standalone: true,
            affected_registers: 0,
            system_registers: 0,
        };
        assert_eq!(report.impact_fraction(), 0.0);
        assert!(report.impact_fraction().is_finite());
    }

    #[test]
    fn impact_fraction_saturates_on_inconsistent_counts() {
        // affected > 0 with an empty system can only come from a report
        // assembled by hand; it must still be finite and meaningful.
        let report = AttackReport {
            verdict: AttackVerdict::FunctionalDamage,
            standalone: false,
            affected_registers: 3,
            system_registers: 0,
        };
        assert_eq!(report.impact_fraction(), 1.0);
    }
}
