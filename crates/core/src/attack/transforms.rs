//! Deterministic trace-level attack transforms.
//!
//! Every adversary here is a pure function of `(spec, seed, input)`: all
//! randomness is *counter-based* — a splitmix64-style hash of the seed and
//! a draw index — never a stateful generator. That is what makes scenario
//! campaigns resumable byte-for-byte: a killed job restarts from scratch
//! and replays the exact same attack, because nothing about the adversary
//! depends on how far the previous run got.

use super::spec::AttackSpec;

/// Mixes a root seed with a counter (job index, cycle index, draw index)
/// into an independent 64-bit stream value. splitmix64 finaliser — the
/// same construction the corpus builder uses for per-trace seeds.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, counter)`.
fn hash_uniform(seed: u64, counter: u64) -> f64 {
    // 53 mantissa bits of the hash → exactly representable in [0, 1).
    (mix_seed(seed, counter) >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal draw from `(seed, counter)`, via Box–Muller over two
/// counter-hashed uniforms. Counter `i` and `i + 1` are *not* independent
/// draws of this function — callers must space counters by at least 2 or
/// derive a fresh seed per draw (the transforms below use disjoint
/// sub-seeds per purpose, so a plain running counter is safe within each).
pub fn hash_gaussian(seed: u64, counter: u64) -> f64 {
    let u1 = hash_uniform(seed, counter.wrapping_mul(2));
    let u2 = hash_uniform(seed, counter.wrapping_mul(2).wrapping_add(1));
    // Clamp away from 0 so ln() stays finite.
    let u1 = u1.max(1e-12);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Everything an attack transform may condition on besides its own spec:
/// the per-job seed and the (public) watermark pattern the adversary is
/// assumed to know — the paper's m-sequence is not a secret, only its
/// presence and phase are what detection establishes.
#[derive(Debug, Clone, Copy)]
pub struct AttackContext<'a> {
    /// Per-job seed (already counter-mixed from the scenario root seed).
    pub seed: u64,
    /// One period of the campaign's watermark pattern.
    pub pattern: &'a [bool],
}

/// A deterministic trace transform: the adversary's intervention between
/// the device and the verifier.
///
/// Implementations must be pure in `(self, ctx, samples)` — byte-identical
/// output for byte-identical input — which the scenario determinism
/// proptest enforces for every [`AttackSpec`] variant.
pub trait Attack: Send + Sync {
    /// The serializable spec this transform was built from.
    fn spec(&self) -> AttackSpec;

    /// Transforms the captured per-cycle power samples in place.
    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>);
}

impl AttackSpec {
    /// Builds the deterministic transform this spec describes.
    pub fn build(&self) -> Box<dyn Attack> {
        match self.clone() {
            AttackSpec::None => Box::new(IdentityAttack),
            AttackSpec::ClockJitter { sigma_cycles } => {
                Box::new(ClockJitterAttack { sigma_cycles })
            }
            AttackSpec::Dvfs {
                dwell_cycles,
                max_shift,
            } => Box::new(DvfsAttack {
                dwell_cycles,
                max_shift,
            }),
            AttackSpec::GateDisable {
                fraction,
                estimate_cycles,
            } => Box::new(GateDisableAttack {
                fraction,
                estimate_cycles,
            }),
            AttackSpec::Jamming { amplitude_watts } => Box::new(JammingAttack { amplitude_watts }),
            AttackSpec::Replay {
                estimate_cycles,
                noise_watts,
            } => Box::new(ReplayAttack {
                estimate_cycles,
                noise_watts,
            }),
        }
    }
}

/// The no-op adversary — the identity cell's attack.
struct IdentityAttack;

impl Attack for IdentityAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::None
    }

    fn apply(&self, _ctx: &AttackContext<'_>, _samples: &mut Vec<f64>) {}
}

/// Estimates the mean of `samples[..limit]` (0.0 when empty).
fn mean_of(samples: &[f64], limit: usize) -> f64 {
    let head = &samples[..limit.min(samples.len())];
    if head.is_empty() {
        return 0.0;
    }
    head.iter().sum::<f64>() / head.len() as f64
}

/// Averages the first `limit` samples into a per-residue (mod `period`)
/// profile — the adversary's estimate of one watermark period.
fn residue_profile(samples: &[f64], period: usize, limit: usize) -> Vec<f64> {
    let mut sums = vec![0.0f64; period];
    let mut counts = vec![0u64; period];
    for (i, &w) in samples.iter().take(limit).enumerate() {
        sums[i % period] += w;
        counts[i % period] += 1;
    }
    for (s, &c) in sums.iter_mut().zip(&counts) {
        if c > 0 {
            *s /= c as f64;
        }
    }
    sums
}

/// Capture-clock jitter: sample `i` is displaced backwards by
/// `round(|N(0, σ)|)` cycles, independently hashed per cycle.
struct ClockJitterAttack {
    sigma_cycles: f64,
}

impl Attack for ClockJitterAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::ClockJitter {
            sigma_cycles: self.sigma_cycles,
        }
    }

    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>) {
        if self.sigma_cycles == 0.0 || samples.is_empty() {
            return;
        }
        let seed = mix_seed(ctx.seed, 0x4a49_5454); // "JITT" sub-stream
        let src = samples.clone();
        for (i, out) in samples.iter_mut().enumerate() {
            let d = (hash_gaussian(seed, i as u64).abs() * self.sigma_cycles).round() as usize;
            *out = src[i - d.min(i)];
        }
    }
}

/// DVFS hopping: each `dwell_cycles`-long segment of the capture reads the
/// trace at a per-segment phase offset drawn from `0..=max_shift`.
struct DvfsAttack {
    dwell_cycles: u64,
    max_shift: u64,
}

impl Attack for DvfsAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::Dvfs {
            dwell_cycles: self.dwell_cycles,
            max_shift: self.max_shift,
        }
    }

    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>) {
        if self.max_shift == 0 || samples.is_empty() {
            return;
        }
        let seed = mix_seed(ctx.seed, 0x4456_4653); // "DVFS" sub-stream
        let dwell = self.dwell_cycles.max(1) as usize;
        let src = samples.clone();
        for (i, out) in samples.iter_mut().enumerate() {
            let segment = (i / dwell) as u64;
            let shift = (mix_seed(seed, segment) % (self.max_shift + 1)) as usize;
            *out = src[i - shift.min(i)];
        }
    }
}

/// Informed gate disabling at trace level: the adversary estimates the
/// per-residue modulation profile from the head of the capture and
/// subtracts `fraction` of it — the power-trace effect of turning off that
/// fraction of the modulated ICGs (the structural half lives in
/// [`gate_disable_plan`](super::gate_disable_plan)).
struct GateDisableAttack {
    fraction: f64,
    estimate_cycles: u64,
}

impl Attack for GateDisableAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::GateDisable {
            fraction: self.fraction,
            estimate_cycles: self.estimate_cycles,
        }
    }

    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>) {
        let period = ctx.pattern.len();
        if period == 0 || self.fraction == 0.0 || samples.is_empty() {
            return;
        }
        let limit = (self.estimate_cycles as usize).min(samples.len());
        let profile = residue_profile(samples, period, limit);
        let mu = profile.iter().sum::<f64>() / period as f64;
        for (i, out) in samples.iter_mut().enumerate() {
            *out -= self.fraction * (profile[i % period] - mu);
        }
    }
}

/// Spectrum jamming: injects a phase-shifted copy of the public pattern.
/// The decoy raises a second rotational peak in exactly the band the
/// detector inspects, collapsing the peak-to-floor ratio criterion.
struct JammingAttack {
    amplitude_watts: f64,
}

impl Attack for JammingAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::Jamming {
            amplitude_watts: self.amplitude_watts,
        }
    }

    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>) {
        let period = ctx.pattern.len();
        if period == 0 || self.amplitude_watts == 0.0 {
            return;
        }
        let seed = mix_seed(ctx.seed, 0x4a41_4d21); // "JAM!" sub-stream
                                                    // A decoy at the true phase would *reinforce* the watermark; pick
                                                    // a guaranteed-distinct rotation when the period allows one.
        let phase = if period > 1 {
            1 + (mix_seed(seed, 0) % (period as u64 - 1)) as usize
        } else {
            0
        };
        for (i, out) in samples.iter_mut().enumerate() {
            if ctx.pattern[(i + phase) % period] {
                *out += self.amplitude_watts;
            }
        }
    }
}

/// Replay/forgery: the adversary averages the head of the capture into a
/// mean + per-residue profile (the smart-grid sequence-estimation step)
/// and presents a fully synthetic trace in its place. The forgery carries
/// the watermark — at the *estimated, frozen* phase — so plain detection
/// accepts it; challenge-response defenses catch the phase that never
/// answers the commanded hop.
struct ReplayAttack {
    estimate_cycles: u64,
    noise_watts: f64,
}

impl Attack for ReplayAttack {
    fn spec(&self) -> AttackSpec {
        AttackSpec::Replay {
            estimate_cycles: self.estimate_cycles,
            noise_watts: self.noise_watts,
        }
    }

    fn apply(&self, ctx: &AttackContext<'_>, samples: &mut Vec<f64>) {
        let period = ctx.pattern.len().max(1);
        if samples.is_empty() {
            return;
        }
        let seed = mix_seed(ctx.seed, 0x5250_4c59); // "RPLY" sub-stream
        let limit = (self.estimate_cycles as usize).min(samples.len());
        let mu = mean_of(samples, limit);
        let profile = residue_profile(samples, period, limit);
        let profile_mu = profile.iter().sum::<f64>() / period as f64;
        for (i, out) in samples.iter_mut().enumerate() {
            let wm = profile[i % period] - profile_mu;
            *out = mu + wm + self.noise_watts * hash_gaussian(seed, i as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern() -> Vec<bool> {
        // One period of the 6-bit maximal LFSR used across campaign tests.
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(6).expect("width 6");
        (0..lfsr.period_hint().expect("maximal LFSR period"))
            .map(|_| lfsr.next_bit())
            .collect()
    }

    /// A marked trace: pattern at `phase`, amplitude `amp`, hash noise.
    fn marked_trace(
        pattern: &[bool],
        cycles: usize,
        phase: usize,
        amp: f64,
        seed: u64,
    ) -> Vec<f64> {
        (0..cycles)
            .map(|i| {
                let bit = pattern[(i + phase) % pattern.len()];
                let base = if bit { amp } else { 0.0 };
                1.0 + base + 0.01 * hash_gaussian(seed, i as u64)
            })
            .collect()
    }

    /// Pearson correlation of a trace against the pattern at a rotation.
    fn rho_at(pattern: &[bool], trace: &[f64], rotation: usize) -> f64 {
        let p = pattern.len();
        let xs: Vec<f64> = (0..trace.len())
            .map(|i| {
                if pattern[(i + rotation) % p] {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let n = trace.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = trace.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (x, y) in xs.iter().zip(trace) {
            sxy += (x - mx) * (y - my);
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
        }
        sxy / (sxx.sqrt() * syy.sqrt()).max(1e-30)
    }

    #[test]
    fn mix_seed_is_stable_and_spreads() {
        assert_eq!(mix_seed(1, 0), mix_seed(1, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }

    #[test]
    fn hash_gaussian_is_roughly_standard_normal() {
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|i| hash_gaussian(7, i)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn every_attack_is_deterministic_and_length_preserving() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 42,
            pattern: &pattern,
        };
        let input = marked_trace(&pattern, 4_096, 5, 0.3, 9);
        for spec in AttackSpec::all_defaults() {
            let attack = spec.build();
            let mut a = input.clone();
            let mut b = input.clone();
            attack.apply(&ctx, &mut a);
            attack.apply(&ctx, &mut b);
            assert_eq!(a.len(), input.len(), "{spec:?} changed length");
            let bits_a: Vec<u64> = a.iter().map(|w| w.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|w| w.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "{spec:?} is not deterministic");
            assert_eq!(attack.spec(), spec, "{spec:?} round-trips through build");
        }
    }

    #[test]
    fn identity_and_zero_strength_attacks_leave_samples_untouched() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 3,
            pattern: &pattern,
        };
        let input = marked_trace(&pattern, 1_024, 0, 0.3, 1);
        for spec in [
            AttackSpec::None,
            AttackSpec::ClockJitter { sigma_cycles: 0.0 },
            AttackSpec::Jamming {
                amplitude_watts: 0.0,
            },
            AttackSpec::GateDisable {
                fraction: 0.0,
                estimate_cycles: 512,
            },
        ] {
            let mut out = input.clone();
            spec.build().apply(&ctx, &mut out);
            assert_eq!(
                out.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                input.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                "{spec:?} should be a no-op"
            );
        }
    }

    #[test]
    fn gate_disable_strips_the_modulation_profile() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 11,
            pattern: &pattern,
        };
        let mut trace = marked_trace(&pattern, 63 * 64, 0, 0.5, 4);
        let before = rho_at(&pattern, &trace, 0);
        AttackSpec::GateDisable {
            fraction: 1.0,
            estimate_cycles: u64::MAX,
        }
        .build()
        .apply(&ctx, &mut trace);
        let after = rho_at(&pattern, &trace, 0);
        assert!(before > 0.9, "marked trace correlates ({before})");
        assert!(
            after.abs() < 0.1,
            "full disable kills correlation ({after})"
        );
    }

    #[test]
    fn jamming_raises_a_decoy_peak_at_another_rotation() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 21,
            pattern: &pattern,
        };
        let mut trace = marked_trace(&pattern, 63 * 64, 0, 0.3, 8);
        AttackSpec::Jamming {
            amplitude_watts: 0.3,
        }
        .build()
        .apply(&ctx, &mut trace);
        let true_peak = rho_at(&pattern, &trace, 0);
        let decoy = (1..pattern.len())
            .map(|r| rho_at(&pattern, &trace, r))
            .fold(f64::MIN, f64::max);
        assert!(true_peak > 0.3, "watermark still present ({true_peak})");
        assert!(
            decoy > 0.5 * true_peak,
            "decoy peak rivals the true one (decoy {decoy}, true {true_peak})"
        );
    }

    #[test]
    fn replay_carries_the_estimated_watermark_at_a_frozen_phase() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 31,
            pattern: &pattern,
        };
        let mut trace = marked_trace(&pattern, 63 * 128, 9, 0.4, 2);
        AttackSpec::Replay {
            estimate_cycles: 63 * 64,
            noise_watts: 0.01,
        }
        .build()
        .apply(&ctx, &mut trace);
        // The forgery still "detects" at the original phase — that is the
        // point of the attack (and why challenge-response is needed).
        let rho = rho_at(&pattern, &trace, 9);
        assert!(rho > 0.8, "forged trace carries the watermark ({rho})");
    }

    #[test]
    fn jitter_smears_correlation_without_destroying_power() {
        let pattern = pattern();
        let ctx = AttackContext {
            seed: 17,
            pattern: &pattern,
        };
        let clean = marked_trace(&pattern, 63 * 64, 0, 0.4, 6);
        let mut attacked = clean.clone();
        AttackSpec::ClockJitter { sigma_cycles: 8.0 }
            .build()
            .apply(&ctx, &mut attacked);
        let before = rho_at(&pattern, &clean, 0);
        let after = rho_at(&pattern, &attacked, 0);
        assert!(
            after < 0.7 * before,
            "jitter degrades alignment ({before} -> {after})"
        );
        let mean_clean = clean.iter().sum::<f64>() / clean.len() as f64;
        let mean_attacked = attacked.iter().sum::<f64>() / attacked.len() as f64;
        assert!(
            (mean_clean - mean_attacked).abs() < 0.05,
            "jitter only re-times samples"
        );
    }
}
