//! The structural half of the gate-disable attack.
//!
//! The trace-level [`AttackSpec::GateDisable`](super::AttackSpec) models
//! what disabling a fraction of the modulated clock gates does to the
//! captured power. This module answers the *netlist* question an informed
//! adversary faces first: which ICGs should be disabled to strip the most
//! modulated power with the fewest edits? [`gate_disable_plan`] ranks the
//! embedding's ICGs by how many registers they clock (via
//! `clockmark-netlist`'s clock-tree queries) and greedily picks the
//! biggest until the requested fraction of modulated registers is dark;
//! [`apply_gate_disable`] commits the plan by rewiring each chosen ICG's
//! enable to constant-false.

use super::transforms::mix_seed;
use crate::{ClockmarkError, EmbeddedWatermark};
use clockmark_netlist::{CellId, Netlist, SignalExpr};

/// The adversary's editing plan: which ICGs to force off and how much of
/// the watermark's modulation survives.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDisablePlan {
    /// ICG cells the plan forces off, in application order.
    pub disabled: Vec<CellId>,
    /// Modulated registers that go dark under the plan.
    pub disabled_registers: usize,
    /// Modulated registers in the whole embedding.
    pub total_registers: usize,
    /// Fraction of the modulated registers still toggling after the plan
    /// (1.0 = attack removed nothing, 0.0 = fully stripped).
    pub surviving_fraction: f64,
}

impl GateDisablePlan {
    /// Fraction of the modulated registers the plan disables.
    pub fn disabled_fraction(&self) -> f64 {
        1.0 - self.surviving_fraction
    }
}

/// Plans a selective gate-disable attack against an embedding.
///
/// Ranks the watermark's ICGs by the number of registers each clocks
/// (descending — the informed adversary darkens the biggest gates first,
/// with a seeded shuffle breaking ties so equally-sized plans differ
/// between scenario seeds) and picks gates until at least `fraction` of
/// the modulated registers are disabled. `fraction` is clamped to `0..=1`;
/// a zero fraction yields an empty plan.
///
/// # Errors
///
/// Propagates netlist query errors (dangling cells in the embedding).
pub fn gate_disable_plan(
    netlist: &Netlist,
    watermark: &EmbeddedWatermark,
    fraction: f64,
    seed: u64,
) -> Result<GateDisablePlan, ClockmarkError> {
    let fraction = fraction.clamp(0.0, 1.0);

    // Rank each modulated ICG by the registers it clocks.
    let mut gates: Vec<(CellId, usize)> = Vec::with_capacity(watermark.icg_cells.len());
    let mut total_registers = 0usize;
    for &icg in &watermark.icg_cells {
        let sinks = netlist.clock_sinks_of(icg)?;
        total_registers += sinks.len();
        gates.push((icg, sinks.len()));
    }
    // Biggest gate first; seeded hash breaks ties deterministically.
    gates.sort_by_key(|&(icg, count)| {
        (std::cmp::Reverse(count), mix_seed(seed, icg.index() as u64))
    });

    let target = (fraction * total_registers as f64).ceil() as usize;
    let mut disabled = Vec::new();
    let mut disabled_registers = 0usize;
    for (icg, count) in gates {
        if disabled_registers >= target {
            break;
        }
        disabled.push(icg);
        disabled_registers += count;
    }

    let surviving_fraction = if total_registers == 0 {
        1.0
    } else {
        (total_registers - disabled_registers.min(total_registers)) as f64 / total_registers as f64
    };
    Ok(GateDisablePlan {
        disabled,
        disabled_registers,
        total_registers,
        surviving_fraction,
    })
}

/// Commits a plan: rewires each chosen ICG's enable to constant-false, so
/// the registers behind it stop toggling (and stop contributing modulated
/// power). Mutates the netlist in place, as an adversary editing the RTL
/// would.
///
/// # Errors
///
/// Propagates netlist errors (an ICG in the plan that is not in the
/// netlist, or a cell that is not a clock gate).
pub fn apply_gate_disable(
    netlist: &mut Netlist,
    plan: &GateDisablePlan,
) -> Result<(), ClockmarkError> {
    for (i, &icg) in plan.disabled.iter().enumerate() {
        let off = netlist.add_signal(&format!("attack_gate_off_{i}"), SignalExpr::Const(false))?;
        netlist.set_icg_enable(icg, off)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockModulationWatermark, WatermarkArchitecture, WgcConfig};

    fn embedded() -> (Netlist, EmbeddedWatermark) {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let arch = ClockModulationWatermark {
            words: 8,
            regs_per_word: 8,
            switching_registers: 0,
            wgc: WgcConfig::MaxLengthLfsr { width: 6, seed: 1 },
        };
        let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
        (netlist, wm)
    }

    #[test]
    fn plan_hits_the_requested_fraction() {
        let (netlist, wm) = embedded();
        let plan = gate_disable_plan(&netlist, &wm, 0.5, 1).expect("plans");
        assert!(plan.total_registers > 0);
        assert!(plan.disabled_fraction() >= 0.5, "{plan:?}");
        assert!(!plan.disabled.is_empty());
        // Greedy on equal-sized gates should not overshoot by more than
        // one gate's worth of registers.
        let per_gate = plan.total_registers / wm.icg_cells.len().max(1);
        assert!(
            plan.disabled_registers <= (plan.total_registers / 2) + per_gate,
            "{plan:?}"
        );
    }

    #[test]
    fn zero_and_full_fractions_are_exact() {
        let (netlist, wm) = embedded();
        let none = gate_disable_plan(&netlist, &wm, 0.0, 1).expect("plans");
        assert!(none.disabled.is_empty());
        assert_eq!(none.surviving_fraction, 1.0);
        let all = gate_disable_plan(&netlist, &wm, 1.0, 1).expect("plans");
        assert_eq!(all.disabled_registers, all.total_registers);
        assert_eq!(all.surviving_fraction, 0.0);
        assert_eq!(all.disabled.len(), wm.icg_cells.len());
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let (netlist, wm) = embedded();
        let a = gate_disable_plan(&netlist, &wm, 0.5, 7).expect("plans");
        let b = gate_disable_plan(&netlist, &wm, 0.5, 7).expect("plans");
        assert_eq!(a, b);
        // All gates are equal-sized here, so different seeds pick a
        // different subset (tie-break is the only freedom).
        let c = gate_disable_plan(&netlist, &wm, 0.5, 8).expect("plans");
        assert_eq!(a.disabled.len(), c.disabled.len());
        assert_ne!(a.disabled, c.disabled, "seeded tie-break varies the pick");
    }

    #[test]
    fn apply_rewires_enables_to_constant_false() {
        let (mut netlist, wm) = embedded();
        let plan = gate_disable_plan(&netlist, &wm, 1.0, 1).expect("plans");
        apply_gate_disable(&mut netlist, &plan).expect("applies");
        // Every disabled gate's sinks still exist (the attack does not
        // delete logic, it only de-clocks it).
        for &icg in &plan.disabled {
            let sinks = netlist.clock_sinks_of(icg).expect("queries");
            assert!(!sinks.is_empty());
        }
    }
}
