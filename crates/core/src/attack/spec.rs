//! Serializable attack, defense and scenario specifications.
//!
//! These are the wire vocabulary of the adversarial engine: every variant
//! encodes as a small JSON object with a `kind` tag, and decodes
//! *tolerantly* — unknown extra fields are ignored and missing parameter
//! fields fall back to the variant's documented default, so a spec written
//! by a newer build still drives an older one (and vice versa). That is
//! the same forward/backward policy `campaign.json` already applies to the
//! spectrum kernel and the sequential schedule.

use clockmark_obs::json::{self, Json};
use std::fmt;
use std::fmt::Write as _;

/// A malformed or out-of-range specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What was wrong.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn finite(name: &str, v: f64) -> Result<(), SpecError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(SpecError::new(format!("{name} must be finite, got {v}")))
    }
}

/// Decodes a `seed` field. Seeds are written as decimal strings because
/// the JSON model parses numbers as f64, which cannot represent a
/// full-range u64 exactly; bare numbers (hand-written small seeds) are
/// accepted too.
pub(crate) fn decode_seed(value: &Json) -> Result<u64, SpecError> {
    match value {
        Json::String(s) => s
            .parse::<u64>()
            .map_err(|_| SpecError::new(format!("seed `{s}` is not a u64"))),
        other => other
            .as_f64()
            .map(|v| v as u64)
            .ok_or_else(|| SpecError::new("seed must be a u64 (string or number)")),
    }
}

/// What the adversary does to a captured trace, as data.
///
/// Each variant is a deterministic transform: [`AttackSpec::build`]
/// produces an [`Attack`](super::Attack) whose output bytes depend only on
/// the spec, the seed and the input samples. The threat shapes follow the
/// adversarial literature named in `docs/attacks.md`: capture-time
/// desynchronization (jitter, DVFS), informed structural degradation
/// (gate-disable), spectrum jamming, and smart-grid-style sequence
/// estimation + replay forgery.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackSpec {
    /// No attack — the identity transform.
    None,
    /// Capture-clock jitter: each measured cycle is displaced backwards by
    /// `|N(0, sigma_cycles)|` cycles (independently hashed per cycle),
    /// smearing the alignment between the pattern and the measurement.
    /// The physically-faithful version (jitter inside the oscilloscope's
    /// sampling loop) lives in `clockmark_measure::CaptureAttack`; this is
    /// its post-capture equivalent for stored traces.
    ClockJitter {
        /// Standard deviation of the per-cycle displacement, in cycles.
        sigma_cycles: f64,
    },
    /// DVFS-style desynchronization: the device hops frequency every
    /// `dwell_cycles`, so each dwell segment of the capture is phase-offset
    /// by a hash-drawn shift in `0..=max_shift` cycles. Detection folds the
    /// segments incoherently.
    Dvfs {
        /// Cycles between (simulated) frequency hops.
        dwell_cycles: u64,
        /// Largest per-segment phase shift, in cycles.
        max_shift: u64,
    },
    /// Selective clock-gate disabling: the adversary estimates the
    /// per-residue watermark profile from the first `estimate_cycles`
    /// captured cycles and subtracts `fraction` of it — the trace-level
    /// effect of disabling that fraction of the modulated ICGs. The
    /// structural half (which gates an informed adversary picks) is
    /// [`gate_disable_plan`](super::gate_disable_plan).
    GateDisable {
        /// Fraction of the watermark's modulated power removed (0..=1).
        fraction: f64,
        /// Captured cycles the adversary averages to estimate the profile.
        estimate_cycles: u64,
    },
    /// Additive jamming tuned to the LFSR spectrum: the adversary knows
    /// the public m-sequence and injects a phase-shifted copy of it, which
    /// raises a decoy peak in exactly the band the detector inspects and
    /// destroys the peak-to-floor ratio.
    Jamming {
        /// Amplitude of the injected decoy sequence, in watts.
        amplitude_watts: f64,
    },
    /// Replay/forgery: the adversary estimates the sequence and amplitude
    /// from `estimate_cycles` captured cycles (smart-grid-style cracking
    /// of a noise-based dynamic watermark) and presents a fully synthetic
    /// trace — estimated mean + estimated per-residue profile + fresh
    /// noise — in place of the real device.
    Replay {
        /// Captured cycles the forger averages to estimate the sequence.
        estimate_cycles: u64,
        /// White-noise σ of the synthetic trace, in watts.
        noise_watts: f64,
    },
}

impl AttackSpec {
    /// The spec's `kind` tag (also the row label in scenario reports).
    pub fn kind(&self) -> &'static str {
        match self {
            AttackSpec::None => "none",
            AttackSpec::ClockJitter { .. } => "clock_jitter",
            AttackSpec::Dvfs { .. } => "dvfs",
            AttackSpec::GateDisable { .. } => "gate_disable",
            AttackSpec::Jamming { .. } => "jamming",
            AttackSpec::Replay { .. } => "replay",
        }
    }

    /// Every attack kind with its default parameters — the template the
    /// CLI's `scenario template` emits and the determinism proptest sweeps.
    pub fn all_defaults() -> Vec<AttackSpec> {
        vec![
            AttackSpec::None,
            AttackSpec::ClockJitter { sigma_cycles: 2.0 },
            AttackSpec::Dvfs {
                dwell_cycles: 2_048,
                max_shift: 32,
            },
            AttackSpec::GateDisable {
                fraction: 0.5,
                estimate_cycles: 16_384,
            },
            AttackSpec::Jamming {
                amplitude_watts: 1.5e-3,
            },
            AttackSpec::Replay {
                estimate_cycles: 16_384,
                noise_watts: 0.045,
            },
        ]
    }

    /// Serialises the spec as one JSON object, appended to `out`.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            AttackSpec::None => out.push_str("{\"kind\":\"none\"}"),
            AttackSpec::ClockJitter { sigma_cycles } => {
                out.push_str("{\"kind\":\"clock_jitter\",\"sigma_cycles\":");
                json::write_f64(out, *sigma_cycles);
                out.push('}');
            }
            AttackSpec::Dvfs {
                dwell_cycles,
                max_shift,
            } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"dvfs\",\"dwell_cycles\":{dwell_cycles},\"max_shift\":{max_shift}}}"
                );
            }
            AttackSpec::GateDisable {
                fraction,
                estimate_cycles,
            } => {
                out.push_str("{\"kind\":\"gate_disable\",\"fraction\":");
                json::write_f64(out, *fraction);
                let _ = write!(out, ",\"estimate_cycles\":{estimate_cycles}}}");
            }
            AttackSpec::Jamming { amplitude_watts } => {
                out.push_str("{\"kind\":\"jamming\",\"amplitude_watts\":");
                json::write_f64(out, *amplitude_watts);
                out.push('}');
            }
            AttackSpec::Replay {
                estimate_cycles,
                noise_watts,
            } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"replay\",\"estimate_cycles\":{estimate_cycles}"
                );
                out.push_str(",\"noise_watts\":");
                json::write_f64(out, *noise_watts);
                out.push('}');
            }
        }
    }

    /// Serialises the spec as one JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a spec from a parsed JSON value.
    ///
    /// Tolerant: unknown extra fields are ignored, and a known `kind`
    /// missing parameter fields falls back to that variant's defaults —
    /// the policy that lets spec files and `campaign.json` survive
    /// version skew in either direction.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for a missing or unknown `kind`.
    pub fn decode_value(value: &Json) -> Result<Self, SpecError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("attack spec is missing string field `kind`"))?;
        let num =
            |key: &str, default: f64| value.get(key).and_then(Json::as_f64).unwrap_or(default);
        Ok(match kind {
            "none" => AttackSpec::None,
            "clock_jitter" => AttackSpec::ClockJitter {
                sigma_cycles: num("sigma_cycles", 2.0),
            },
            "dvfs" => AttackSpec::Dvfs {
                dwell_cycles: num("dwell_cycles", 2_048.0) as u64,
                max_shift: num("max_shift", 32.0) as u64,
            },
            "gate_disable" => AttackSpec::GateDisable {
                fraction: num("fraction", 0.5),
                estimate_cycles: num("estimate_cycles", 16_384.0) as u64,
            },
            "jamming" => AttackSpec::Jamming {
                amplitude_watts: num("amplitude_watts", 1.5e-3),
            },
            "replay" => AttackSpec::Replay {
                estimate_cycles: num("estimate_cycles", 16_384.0) as u64,
                noise_watts: num("noise_watts", 0.045),
            },
            other => return Err(SpecError::new(format!("unknown attack kind `{other}`"))),
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for malformed JSON or an unknown `kind`.
    pub fn decode(text: &str) -> Result<Self, SpecError> {
        let value = json::parse(text).map_err(|e| SpecError::new(format!("invalid JSON: {e}")))?;
        Self::decode_value(&value)
    }

    /// Checks every parameter is in range.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            AttackSpec::None => Ok(()),
            AttackSpec::ClockJitter { sigma_cycles } => {
                finite("sigma_cycles", *sigma_cycles)?;
                if *sigma_cycles < 0.0 {
                    return Err(SpecError::new("sigma_cycles must be >= 0"));
                }
                Ok(())
            }
            AttackSpec::Dvfs {
                dwell_cycles,
                max_shift,
            } => {
                if *dwell_cycles == 0 {
                    return Err(SpecError::new("dvfs dwell_cycles must be >= 1"));
                }
                if *max_shift > 1 << 20 {
                    return Err(SpecError::new("dvfs max_shift is implausibly large"));
                }
                Ok(())
            }
            AttackSpec::GateDisable {
                fraction,
                estimate_cycles,
            } => {
                finite("fraction", *fraction)?;
                if !(0.0..=1.0).contains(fraction) {
                    return Err(SpecError::new("gate_disable fraction must be in 0..=1"));
                }
                if *estimate_cycles == 0 {
                    return Err(SpecError::new("gate_disable estimate_cycles must be >= 1"));
                }
                Ok(())
            }
            AttackSpec::Jamming { amplitude_watts } => {
                finite("amplitude_watts", *amplitude_watts)?;
                if *amplitude_watts < 0.0 {
                    return Err(SpecError::new("jamming amplitude_watts must be >= 0"));
                }
                Ok(())
            }
            AttackSpec::Replay {
                estimate_cycles,
                noise_watts,
            } => {
                finite("noise_watts", *noise_watts)?;
                if *estimate_cycles == 0 {
                    return Err(SpecError::new("replay estimate_cycles must be >= 1"));
                }
                if *noise_watts < 0.0 {
                    return Err(SpecError::new("replay noise_watts must be >= 0"));
                }
                Ok(())
            }
        }
    }
}

/// What the verifier deploys against the adversary.
///
/// A defense has two halves, both executed by the scenario engine: an
/// *embedding schedule* (what watermark signal the defended device emits,
/// overlaid onto the stored base trace at the cell's SNR-scaled amplitude)
/// and a *verification procedure* (how the verifier decides, which may be
/// stricter than plain peak detection). [`DefenseSpec::None`] deploys
/// nothing: the verifier runs plain detection of the campaign pattern
/// against whatever the corpus trace natively carries.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseSpec {
    /// No defense: plain detection of the campaign pattern.
    None,
    /// Multi-watermark coexistence: alongside the primary pattern, one
    /// extra m-sequence watermark per listed LFSR width is embedded
    /// (different widths → coprime-ish periods → near-orthogonal spectra).
    /// Verification requires a majority of all embedded watermarks to be
    /// detected, so an attack that strips or jams the primary still fails
    /// to evade the secondaries.
    MultiWatermark {
        /// LFSR widths of the extra watermarks (each 2..=32, and distinct
        /// from the primary's period).
        extra_widths: Vec<u32>,
    },
    /// Seed-hopping: every `dwell_cycles` the WGC hops to a new
    /// hash-scheduled phase of the sequence. The verifier knows the
    /// schedule, detects each dwell segment independently and checks the
    /// de-hopped phases agree; an adversary without the schedule sees a
    /// non-periodic signal that defeats estimation.
    SeedHopping {
        /// Cycles between phase hops (must cover at least two periods of
        /// the campaign pattern).
        dwell_cycles: u64,
    },
    /// SIGNED-style challenge-response: mid-trace, the verifier commands
    /// the WGC to advance its phase by `phase_delta` cycles. Verification
    /// detects both halves and accepts only when the response half shows
    /// exactly the commanded phase change — a replayed or forged trace
    /// estimated from old captures cannot answer the challenge.
    ChallengeResponse {
        /// The commanded phase advance, in cycles (non-zero modulo the
        /// pattern period).
        phase_delta: u64,
    },
}

impl DefenseSpec {
    /// The spec's `kind` tag (also the column label in scenario reports).
    pub fn kind(&self) -> &'static str {
        match self {
            DefenseSpec::None => "none",
            DefenseSpec::MultiWatermark { .. } => "multi_watermark",
            DefenseSpec::SeedHopping { .. } => "seed_hopping",
            DefenseSpec::ChallengeResponse { .. } => "challenge_response",
        }
    }

    /// Every defense kind with its default parameters.
    pub fn all_defaults() -> Vec<DefenseSpec> {
        vec![
            DefenseSpec::None,
            DefenseSpec::MultiWatermark {
                extra_widths: vec![5, 7],
            },
            DefenseSpec::SeedHopping {
                dwell_cycles: 2_048,
            },
            DefenseSpec::ChallengeResponse { phase_delta: 17 },
        ]
    }

    /// Serialises the spec as one JSON object, appended to `out`.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            DefenseSpec::None => out.push_str("{\"kind\":\"none\"}"),
            DefenseSpec::MultiWatermark { extra_widths } => {
                out.push_str("{\"kind\":\"multi_watermark\",\"extra_widths\":[");
                for (i, w) in extra_widths.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{w}");
                }
                out.push_str("]}");
            }
            DefenseSpec::SeedHopping { dwell_cycles } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"seed_hopping\",\"dwell_cycles\":{dwell_cycles}}}"
                );
            }
            DefenseSpec::ChallengeResponse { phase_delta } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"challenge_response\",\"phase_delta\":{phase_delta}}}"
                );
            }
        }
    }

    /// Serialises the spec as one JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a spec from a parsed JSON value (same tolerance policy as
    /// [`AttackSpec::decode_value`]).
    ///
    /// # Errors
    ///
    /// [`SpecError`] for a missing or unknown `kind`.
    pub fn decode_value(value: &Json) -> Result<Self, SpecError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("defense spec is missing string field `kind`"))?;
        Ok(match kind {
            "none" => DefenseSpec::None,
            "multi_watermark" => {
                let extra_widths = match value.get("extra_widths") {
                    Some(Json::Array(items)) => items
                        .iter()
                        .filter_map(Json::as_f64)
                        .map(|w| w as u32)
                        .collect(),
                    _ => vec![5, 7],
                };
                DefenseSpec::MultiWatermark { extra_widths }
            }
            "seed_hopping" => DefenseSpec::SeedHopping {
                dwell_cycles: value
                    .get("dwell_cycles")
                    .and_then(Json::as_f64)
                    .unwrap_or(2_048.0) as u64,
            },
            "challenge_response" => DefenseSpec::ChallengeResponse {
                phase_delta: value
                    .get("phase_delta")
                    .and_then(Json::as_f64)
                    .unwrap_or(17.0) as u64,
            },
            other => return Err(SpecError::new(format!("unknown defense kind `{other}`"))),
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for malformed JSON or an unknown `kind`.
    pub fn decode(text: &str) -> Result<Self, SpecError> {
        let value = json::parse(text).map_err(|e| SpecError::new(format!("invalid JSON: {e}")))?;
        Self::decode_value(&value)
    }

    /// Checks every parameter is in range. Period-dependent constraints
    /// (hopping dwell vs pattern length, challenge delta vs period) are
    /// checked by the scenario engine, which knows the pattern.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            DefenseSpec::None => Ok(()),
            DefenseSpec::MultiWatermark { extra_widths } => {
                if extra_widths.is_empty() {
                    return Err(SpecError::new(
                        "multi_watermark needs at least one extra width",
                    ));
                }
                for &w in extra_widths {
                    if !(clockmark_seq::MIN_LFSR_WIDTH..=clockmark_seq::MAX_LFSR_WIDTH).contains(&w)
                    {
                        return Err(SpecError::new(format!(
                            "multi_watermark width {w} outside the LFSR range"
                        )));
                    }
                }
                Ok(())
            }
            DefenseSpec::SeedHopping { dwell_cycles } => {
                if *dwell_cycles == 0 {
                    return Err(SpecError::new("seed_hopping dwell_cycles must be >= 1"));
                }
                Ok(())
            }
            DefenseSpec::ChallengeResponse { phase_delta } => {
                if *phase_delta == 0 {
                    return Err(SpecError::new(
                        "challenge_response phase_delta must be >= 1",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// One cell of the attack↔defense matrix: which attack, which defense,
/// at what SNR — persisted into `campaign.json` exactly like the spectrum
/// kernel, so a resumed cell replays the same adversary.
///
/// The SNR axis scales both sides of the signal-to-noise ratio at once:
/// the defense's overlay watermarks are embedded at
/// `amplitude_watts × snr`, and deterministic white measurement noise of
/// `noise_watts × (1/snr − 1)` is added after the attack (zero at
/// `snr = 1`, growing as the cell degrades). A cell with no attack, no
/// defense and `snr = 1` is the *identity cell*: its jobs run the plain
/// campaign path and its `report.json` is byte-for-byte a plain
/// campaign's.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The adversary's trace transform.
    pub attack: AttackSpec,
    /// The verifier's deployment and decision procedure.
    pub defense: DefenseSpec,
    /// Signal-to-noise scale of the cell (1.0 = nominal).
    pub snr: f64,
    /// Overlay watermark amplitude at `snr = 1`, in watts.
    pub amplitude_watts: f64,
    /// Reference measurement-noise σ used by the SNR axis, in watts.
    pub noise_watts: f64,
    /// Root seed of every deterministic draw in the cell (per-job seeds
    /// are counter-hashed from it).
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            attack: AttackSpec::None,
            defense: DefenseSpec::None,
            snr: 1.0,
            // The paper's watermark amplitude and the calibrated chain
            // noise — so snr=1 reproduces Fig. 5 conditions.
            amplitude_watts: 1.5e-3,
            noise_watts: 0.045,
            seed: 0,
        }
    }
}

impl ScenarioSpec {
    /// Whether this cell is the identity scenario: no attack, no defense,
    /// nominal SNR. Identity jobs run the plain campaign path (streaming
    /// fold, mid-trace checkpoints) and land byte-identical outcomes to a
    /// plain campaign over the same traces.
    pub fn is_identity(&self) -> bool {
        self.attack == AttackSpec::None && self.defense == DefenseSpec::None && self.snr == 1.0
    }

    /// The σ of the deterministic white noise this cell adds, in watts.
    pub fn added_noise_sigma(&self) -> f64 {
        if self.snr >= 1.0 {
            0.0
        } else {
            self.noise_watts * (1.0 / self.snr - 1.0)
        }
    }

    /// The overlay watermark amplitude of this cell, in watts.
    pub fn overlay_amplitude(&self) -> f64 {
        self.amplitude_watts * self.snr
    }

    /// Serialises the spec as one JSON object, appended to `out`.
    pub fn encode_into(&self, out: &mut String) {
        out.push_str("{\"attack\":");
        self.attack.encode_into(out);
        out.push_str(",\"defense\":");
        self.defense.encode_into(out);
        out.push_str(",\"snr\":");
        json::write_f64(out, self.snr);
        out.push_str(",\"amplitude_watts\":");
        json::write_f64(out, self.amplitude_watts);
        out.push_str(",\"noise_watts\":");
        json::write_f64(out, self.noise_watts);
        // The seed is a full-range u64 (cell seeds are splitmix64 output),
        // and the JSON model parses numbers as f64 — which silently drops
        // the low bits past 2^53 and would de-synchronise every seeded
        // draw on resume. A decimal string round-trips exactly.
        let _ = write!(out, ",\"seed\":\"{}\"}}", self.seed);
    }

    /// Serialises the spec as one JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(160);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a spec from a parsed JSON value. Missing numeric fields
    /// fall back to [`ScenarioSpec::default`]'s values; missing attack or
    /// defense objects mean "none".
    ///
    /// # Errors
    ///
    /// [`SpecError`] for unknown attack/defense kinds.
    pub fn decode_value(value: &Json) -> Result<Self, SpecError> {
        let defaults = ScenarioSpec::default();
        let attack = match value.get("attack") {
            Some(v) => AttackSpec::decode_value(v)?,
            None => AttackSpec::None,
        };
        let defense = match value.get("defense") {
            Some(v) => DefenseSpec::decode_value(v)?,
            None => DefenseSpec::None,
        };
        let num =
            |key: &str, default: f64| value.get(key).and_then(Json::as_f64).unwrap_or(default);
        Ok(ScenarioSpec {
            attack,
            defense,
            snr: num("snr", defaults.snr),
            amplitude_watts: num("amplitude_watts", defaults.amplitude_watts),
            noise_watts: num("noise_watts", defaults.noise_watts),
            seed: match value.get("seed") {
                Some(v) => decode_seed(v)?,
                None => 0,
            },
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for malformed JSON or unknown kinds.
    pub fn decode(text: &str) -> Result<Self, SpecError> {
        let value = json::parse(text).map_err(|e| SpecError::new(format!("invalid JSON: {e}")))?;
        Self::decode_value(&value)
    }

    /// Checks every parameter (and both sub-specs) is in range.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.attack.validate()?;
        self.defense.validate()?;
        finite("snr", self.snr)?;
        if self.snr <= 0.0 {
            return Err(SpecError::new("snr must be > 0"));
        }
        finite("amplitude_watts", self.amplitude_watts)?;
        if self.amplitude_watts < 0.0 {
            return Err(SpecError::new("amplitude_watts must be >= 0"));
        }
        finite("noise_watts", self.noise_watts)?;
        if self.noise_watts < 0.0 {
            return Err(SpecError::new("noise_watts must be >= 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_specs_round_trip_through_json() {
        for spec in AttackSpec::all_defaults() {
            let text = spec.encode();
            let back = AttackSpec::decode(&text).expect("round trips");
            assert_eq!(back, spec, "{text}");
            spec.validate().expect("defaults validate");
        }
    }

    #[test]
    fn defense_specs_round_trip_through_json() {
        for spec in DefenseSpec::all_defaults() {
            let text = spec.encode();
            let back = DefenseSpec::decode(&text).expect("round trips");
            assert_eq!(back, spec, "{text}");
            spec.validate().expect("defaults validate");
        }
    }

    #[test]
    fn scenario_spec_round_trips_through_json() {
        for attack in AttackSpec::all_defaults() {
            for defense in DefenseSpec::all_defaults() {
                let spec = ScenarioSpec {
                    attack,
                    defense,
                    snr: 0.5,
                    amplitude_watts: 2e-3,
                    noise_watts: 0.03,
                    // A full-range u64 (past 2^53): cell seeds are
                    // splitmix64 output, and the round-trip must not
                    // squeeze them through an f64.
                    seed: 0x9e37_79b9_7f4a_7c15,
                };
                let back = ScenarioSpec::decode(&spec.encode()).expect("round trips");
                assert_eq!(back, spec);
                break;
            }
        }
    }

    #[test]
    fn hand_written_numeric_seeds_are_accepted() {
        let spec = ScenarioSpec::decode("{\"seed\":42}").expect("valid");
        assert_eq!(spec.seed, 42);
        assert!(ScenarioSpec::decode("{\"seed\":\"not a number\"}").is_err());
    }

    #[test]
    fn decode_is_tolerant_of_missing_and_unknown_fields() {
        // A bare kind uses the documented defaults.
        assert_eq!(
            AttackSpec::decode("{\"kind\":\"clock_jitter\"}").expect("tolerant"),
            AttackSpec::ClockJitter { sigma_cycles: 2.0 }
        );
        // Unknown extra fields are ignored.
        assert_eq!(
            DefenseSpec::decode("{\"kind\":\"seed_hopping\",\"dwell_cycles\":512,\"future\":1}")
                .expect("tolerant"),
            DefenseSpec::SeedHopping { dwell_cycles: 512 }
        );
        // A legacy scenario object with neither side means identity-ish.
        let spec = ScenarioSpec::decode("{\"snr\":1}").expect("tolerant");
        assert!(spec.is_identity());
        // Unknown kinds fail loudly — silently running the wrong adversary
        // would corrupt a whole campaign.
        assert!(AttackSpec::decode("{\"kind\":\"quantum\"}").is_err());
        assert!(DefenseSpec::decode("{\"kind\":\"prayer\"}").is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        assert!(AttackSpec::ClockJitter { sigma_cycles: -1.0 }
            .validate()
            .is_err());
        assert!(AttackSpec::GateDisable {
            fraction: 1.5,
            estimate_cycles: 1024
        }
        .validate()
        .is_err());
        assert!(AttackSpec::Dvfs {
            dwell_cycles: 0,
            max_shift: 4
        }
        .validate()
        .is_err());
        assert!(DefenseSpec::MultiWatermark {
            extra_widths: vec![]
        }
        .validate()
        .is_err());
        assert!(DefenseSpec::ChallengeResponse { phase_delta: 0 }
            .validate()
            .is_err());
        let bad_snr = ScenarioSpec {
            snr: 0.0,
            ..ScenarioSpec::default()
        };
        assert!(bad_snr.validate().is_err());
    }

    #[test]
    fn identity_detection_is_exact() {
        assert!(ScenarioSpec::default().is_identity());
        let attacked = ScenarioSpec {
            attack: AttackSpec::Jamming {
                amplitude_watts: 1e-3,
            },
            ..ScenarioSpec::default()
        };
        assert!(!attacked.is_identity());
        let degraded = ScenarioSpec {
            snr: 0.5,
            ..ScenarioSpec::default()
        };
        assert!(!degraded.is_identity());
        assert!(degraded.added_noise_sigma() > 0.0);
    }
}
