//! # clockmark — clock-modulation power watermarking
//!
//! A full reproduction of **Kufel, Wilson, Hill, Al-Hashimi, Whatmough,
//! Myers, "Clock-Modulation Based Watermark for Protection of Embedded
//! Processors", DATE 2014** (DOI 10.7873/DATE.2014.053) as a Rust library.
//!
//! ## The idea
//!
//! A *power watermark* lets an IP vendor prove their block is inside a
//! finished chip by measuring the supply current: a small on-chip circuit
//! superimposes a weak pseudo-random power pattern that correlation power
//! analysis (CPA) can pull out of the noise. The prior state of the art
//! spends most of its area on a dedicated *load circuit* of shift
//! registers. This paper's observation: **clock-tree buffers burn more
//! power than data switching** (1.476 µW vs 1.126 µW per register in the
//! authors' 65 nm library), and every design is already full of clock-gated
//! registers — so modulating existing clock-gate enables with the watermark
//! sequence generates the power pattern *for free*, cutting the watermark's
//! area by ~98 % and making it far harder to excise from the RTL.
//!
//! ## What this crate provides
//!
//! - [`WgcConfig`] — the watermark generation circuit (12-bit maximal LFSR
//!   in the silicon experiments), with bit-identical software and
//!   structural (netlist) realisations;
//! - [`ClockModulationWatermark`] (proposed) and [`LoadCircuitWatermark`]
//!   (state of the art), both implementing [`WatermarkArchitecture`];
//! - [`Experiment`] — the end-to-end silicon-measurement pipeline:
//!   cycle-accurate simulation, SoC background (Dhrystone-like workload on
//!   chip-I/chip-II models), shunt + oscilloscope digitisation, rotational
//!   CPA and peak detection;
//! - [`overhead`] — the Table I / Table II area & power analysis;
//! - [`attack`] — the Section VI removal-attack analysis.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), clockmark::ClockmarkError> {
//! use clockmark::{ClockModulationWatermark, Experiment, WgcConfig};
//!
//! // A scaled-down experiment (the paper-scale configuration lives in
//! // Experiment::paper_chip_i() with ClockModulationWatermark::paper()).
//! let architecture = ClockModulationWatermark {
//!     wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
//!     ..ClockModulationWatermark::paper()
//! };
//! let outcome = Experiment::quick(15_000, 42).run(&architecture)?;
//!
//! assert!(outcome.detection.detected);
//! println!("{outcome}");
//! # Ok(())
//! # }
//! ```
//!
//! The `clockmark-bench` crate regenerates every table and figure of the
//! paper's evaluation; see `EXPERIMENTS.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
pub mod attack;
mod batch;
pub mod campaign;
mod error;
pub mod overhead;
mod pipeline;
pub mod prelude;
pub mod scenario;
pub mod theory;
mod wgc;

pub use arch::{
    ClockModulationWatermark, EmbeddedWatermark, FunctionalBlock, LoadCircuitWatermark,
    WatermarkArchitecture,
};
pub use attack::{
    apply_gate_disable, gate_disable_plan, removal_attack, Attack, AttackContext, AttackReport,
    AttackSpec, AttackVerdict, DefenseSpec, GateDisablePlan, ScenarioSpec, SpecError,
};
pub use batch::{parallel_map, BatchProgress, BatchReport, ExperimentBatch, WorkerStats};
pub use campaign::{
    Campaign, CampaignError, CampaignLimits, CampaignProgress, CampaignReport, CampaignSpec,
    CampaignStatus, JobOutcome, JobSpec,
};
// `CampaignSpec::algo` is of this type; surface it next to the campaign API.
pub use clockmark_cpa::CpaAlgo;
pub use error::ClockmarkError;
pub use pipeline::{ChipModel, Experiment, ExperimentOutcome, MeasuredRun};
pub use scenario::{
    ScenarioCampaign, ScenarioCell, ScenarioCellReport, ScenarioMatrix, ScenarioReport,
    ScenarioStatus,
};
pub use wgc::{StructuralWgc, WgcConfig};

// Re-export the substrate crates so downstream users need one dependency.
pub use clockmark_corpus as corpus;
pub use clockmark_cpa as cpa;
pub use clockmark_measure as measure;
pub use clockmark_netlist as netlist;
pub use clockmark_power as power;
pub use clockmark_seq as seq;
pub use clockmark_sim as sim;
pub use clockmark_soc as soc;
