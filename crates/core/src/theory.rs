//! Analytic detection theory for the clock-modulation watermark.
//!
//! These closed forms tie the reproduction's knobs together and predict
//! the experiments before they run.
//!
//! # The signal model
//!
//! The watermark adds `A·xᵢ` to each cycle's power, where `x ∈ {0, 1}` is
//! the `WMARK` bit with duty cycle `p` (½ + 1/2P for a maximal sequence)
//! and `A` is the gated block's power step (1.51 mW for the paper's 1,024
//! clock-buffer-only registers). The measured cycle is `yᵢ = A·xᵢ + nᵢ`
//! with per-cycle noise σₙ (front-end noise after 50-sample averaging plus
//! background variation).
//!
//! # The correlation
//!
//! Pearson's ρ between `x` and `y` is then
//!
//! ```text
//! ρ = A·σₓ / √(A²σₓ² + σₙ²),   σₓ = √(p(1−p))
//! ```
//!
//! and since each off-phase rotation of an m-sequence is nearly orthogonal
//! to the watermark, the spread-spectrum floor is `≈ N(0, 1/√N)`: the
//! peak's z-score grows as `ρ·√N`. Inverting gives the trace length a
//! target confidence needs — the law behind the paper's choice of
//! N = 300,000 and behind every sweep in `ablation_sweeps`.
//!
//! ```
//! use clockmark::theory;
//! use clockmark_power::Power;
//!
//! // The paper-scale numbers: 1.51 mW amplitude against the calibrated
//! // ~45 mW cycle noise of the full measurement chain.
//! let rho = theory::expected_peak_rho(
//!     Power::from_milliwatts(1.511),
//!     0.5,
//!     Power::from_milliwatts(45.3),
//! );
//! assert!((rho - 0.0167).abs() < 0.001, "predicts the Fig. 5 peak: {rho}");
//!
//! // 300,000 cycles put that peak ~9 sigma above the floor.
//! let z = theory::expected_zscore(rho, 300_000);
//! assert!(z > 8.0 && z < 10.0, "z = {z}");
//! ```

use clockmark_power::Power;

/// The expected correlation-peak height for a binary watermark of
/// amplitude `amplitude`, duty cycle `duty`, against per-cycle noise of
/// standard deviation `noise_sigma`.
pub fn expected_peak_rho(amplitude: Power, duty: f64, noise_sigma: Power) -> f64 {
    let a = amplitude.watts();
    let sigma_x = (duty * (1.0 - duty)).max(0.0).sqrt();
    let signal = a * sigma_x;
    let denom = (signal * signal + noise_sigma.watts().powi(2)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    signal / denom
}

/// The expected z-score of the peak over the spread-spectrum floor after
/// `n_cycles` cycles (`floor σ ≈ 1/√N`).
pub fn expected_zscore(rho: f64, n_cycles: usize) -> f64 {
    rho * (n_cycles as f64).sqrt()
}

/// The trace length needed for the peak to reach `target_z` standard
/// deviations above the floor.
///
/// Returns `usize::MAX` when the predicted ρ is zero (undetectable at any
/// length).
pub fn cycles_for_zscore(amplitude: Power, duty: f64, noise_sigma: Power, target_z: f64) -> usize {
    let rho = expected_peak_rho(amplitude, duty, noise_sigma);
    if rho <= 0.0 {
        return usize::MAX;
    }
    (target_z / rho).powi(2).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ChipModel, ClockModulationWatermark, Experiment, WatermarkArchitecture, WgcConfig,
    };
    use clockmark_power::{EnergyLibrary, PowerModel};

    #[test]
    fn rho_limits_behave() {
        let a = Power::from_milliwatts(1.5);
        // No noise: perfect correlation.
        assert!((expected_peak_rho(a, 0.5, Power::ZERO) - 1.0).abs() < 1e-12);
        // No amplitude or degenerate duty: no correlation.
        assert_eq!(expected_peak_rho(Power::ZERO, 0.5, a), 0.0);
        assert_eq!(expected_peak_rho(a, 0.0, a), 0.0);
        assert_eq!(expected_peak_rho(a, 1.0, a), 0.0);
        // Monotone in amplitude.
        let lo = expected_peak_rho(Power::from_milliwatts(0.5), 0.5, a);
        let hi = expected_peak_rho(Power::from_milliwatts(5.0), 0.5, a);
        assert!(hi > lo);
    }

    #[test]
    fn cycles_inverts_zscore() {
        let a = Power::from_milliwatts(1.5);
        let sigma = Power::from_milliwatts(45.0);
        let n = cycles_for_zscore(a, 0.5, sigma, 5.0);
        let rho = expected_peak_rho(a, 0.5, sigma);
        let z = expected_zscore(rho, n);
        assert!((z - 5.0).abs() < 0.05, "z({n}) = {z}");
        assert_eq!(cycles_for_zscore(Power::ZERO, 0.5, sigma, 5.0), usize::MAX);
    }

    #[test]
    fn prediction_matches_the_simulated_pipeline() {
        // A bare-chip quiet-probe experiment: the measured peak must land
        // near the closed-form prediction.
        let mut experiment = Experiment::quick(20_000, 55);
        experiment.chip = ChipModel::Bare;
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let outcome = experiment.run(&arch).expect("runs");

        let model = PowerModel::new(EnergyLibrary::tsmc65ll(), experiment.f_clk);
        let amplitude = arch.signal_amplitude(&model);
        let noise = experiment.acquisition.cycle_noise_sigma();
        let predicted = expected_peak_rho(amplitude, 0.5, noise);

        let measured = outcome.detection.peak_rho;
        assert!(
            (measured - predicted).abs() / predicted < 0.15,
            "measured rho {measured:.4} vs predicted {predicted:.4}"
        );
    }

    #[test]
    fn paper_scale_cycle_budget_is_consistent() {
        // With the calibrated chain, detecting the 1.51 mW watermark at
        // z = 5 needs well under the paper's 300,000 cycles — the paper's
        // choice carries margin, as Fig. 6's 100/100 repeatability shows.
        let needed = cycles_for_zscore(
            Power::from_milliwatts(1.511),
            0.5,
            Power::from_milliwatts(45.3),
            5.0,
        );
        assert!(needed < 300_000, "needed {needed}");
        assert!(needed > 30_000, "needed {needed}");
    }
}
