//! A vendored, std-only subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment for this repository has no reachable crate
//! registry, so the real `criterion` crate cannot be downloaded. This
//! shim keeps the workspace's `cargo bench` targets compiling and
//! producing useful wall-clock numbers: each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and prints the median
//! per-iteration time (plus throughput when configured).
//!
//! It does **not** implement criterion's statistical machinery (outlier
//! analysis, regression detection, HTML reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace already uses).
pub use std::hint::black_box;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), 30, None, &mut f);
    }
}

/// A group of benchmarks sharing throughput/sample settings (mirrors
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/second reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
    }

    /// Benchmarks a closure against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (a no-op placeholder for API compatibility).
    pub fn finish(self) {}
}

/// A function+parameter benchmark label (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter description.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Work performed per iteration, for derived rates (mirrors
/// `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; runs and times the workload
/// (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one duration per sample after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50 ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // One timed call per sample; for very fast bodies, batch enough
        // iterations that each sample is at least ~100 µs.
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        let batch = (Duration::from_micros(100).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let median = bencher.median();
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
            format!("  ({per_sec:.3e} {unit}/s)")
        })
        .unwrap_or_default();
    println!("{label:<55} {median:>12.2?}/iter{rate}");
}

/// Declares a group function running each benchmark target in order
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running each group (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
