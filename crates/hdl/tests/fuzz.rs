//! Parser robustness: arbitrary input must never panic — only parse or
//! return a line-located error — and valid outputs must validate.

use clockmark_hdl::parse;
use proptest::prelude::*;

/// Grammar-adjacent fragments that stress the parser more than pure noise.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("clock clk".to_owned()),
        Just("group g".to_owned()),
        Just("signal s = external".to_owned()),
        Just("signal t = and(s, s)".to_owned()),
        Just("signal u = const(1)".to_owned()),
        Just("buffer b clock=clk".to_owned()),
        Just("icg i clock=clk enable=s".to_owned()),
        Just("reg r clock=clk data=toggle init=1".to_owned()),
        Just("reg r2 clock=i data=shift(r)".to_owned()),
        Just("rewire r data=hold".to_owned()),
        Just("rewire i enable=u".to_owned()),
        Just("# a comment".to_owned()),
        Just("".to_owned()),
        // Deliberately broken lines.
        Just("reg".to_owned()),
        Just("signal = external".to_owned()),
        Just("reg r clock=".to_owned()),
        Just("icg i clock=clk enable=clk".to_owned()),
        Just("clock clk extra".to_owned()),
        Just("reg r clock=clk data=shift()".to_owned()),
        "[a-z]{1,8} [a-z]{1,8}=[a-z]{1,8}",
        "[ -~]{0,40}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_fragment_programs_never_panic(lines in proptest::collection::vec(fragment(), 0..25)) {
        let source = lines.join("\n");
        match parse(&source) {
            Ok(netlist) => {
                // Whatever parses must be a valid netlist.
                prop_assert!(netlist.validate().is_ok());
            }
            Err(e) => {
                // Errors must point at a line within the source (or 0 for
                // whole-netlist validation).
                prop_assert!(e.line() <= lines.len());
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn arbitrary_text_never_panics(source in "[\\PC\n]{0,300}") {
        let _ = parse(&source);
    }
}
