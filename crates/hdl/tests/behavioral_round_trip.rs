//! Behavioural round-trip: a full watermark embedding serialised to `.cmn`
//! and reparsed must simulate identically to the original, cycle for
//! cycle.

use clockmark::sim::{CycleSim, SignalDriver};
use clockmark::{ClockModulationWatermark, LoadCircuitWatermark, WatermarkArchitecture, WgcConfig};
use clockmark_hdl::{parse, serialize};
use clockmark_netlist::Netlist;

fn total_activity_trace(netlist: &Netlist, cycles: usize) -> Vec<(u32, u32, u32, u32)> {
    let mut sim = CycleSim::new(netlist).expect("valid netlist");
    // Drive every external signal high (the watermark enable and any
    // functional enables), matching on both sides of the round trip.
    for (id, decl) in netlist.signals() {
        if matches!(decl.expr, clockmark_netlist::SignalExpr::External) {
            sim.drive(id, SignalDriver::Constant(true))
                .expect("external");
        }
    }
    let trace = sim.run(cycles).expect("runs");
    (0..cycles)
        .map(|c| {
            let a = trace.total(c);
            (
                a.reg_clock_events,
                a.reg_data_toggles,
                a.buffer_events,
                a.icg_events,
            )
        })
        .collect()
}

fn assert_round_trip_equivalent(netlist: &Netlist, cycles: usize) {
    let text = serialize(netlist);
    let reparsed =
        parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n--- serialized ---\n{text}"));
    assert_eq!(reparsed.register_count(), netlist.register_count());
    assert_eq!(reparsed.icg_count(), netlist.icg_count());
    assert_eq!(reparsed.buffer_count(), netlist.buffer_count());

    let original = total_activity_trace(netlist, cycles);
    let round_tripped = total_activity_trace(&reparsed, cycles);
    assert_eq!(
        original, round_tripped,
        "simulation diverged after round trip"
    );
}

#[test]
fn clock_modulation_embedding_round_trips() {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        words: 4,
        regs_per_word: 8,
        switching_registers: 5,
        wgc: WgcConfig::MaxLengthLfsr { width: 6, seed: 1 },
    };
    arch.embed(&mut netlist, clk.into()).expect("embeds");
    assert_round_trip_equivalent(&netlist, 200);
}

#[test]
fn load_circuit_embedding_round_trips() {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = LoadCircuitWatermark {
        load_registers: 16,
        regs_per_gate: 8,
        clock_gated: true,
        wgc: WgcConfig::CircularShift {
            pattern: vec![true, false, false, true],
        },
    };
    arch.embed(&mut netlist, clk.into()).expect("embeds");
    assert_round_trip_equivalent(&netlist, 100);
}

#[test]
fn gold_wgc_embedding_round_trips() {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        words: 2,
        regs_per_word: 4,
        switching_registers: 0,
        wgc: WgcConfig::Gold {
            width: 5,
            seed_a: 1,
            seed_b: 9,
        },
    };
    arch.embed(&mut netlist, clk.into()).expect("embeds");
    assert_round_trip_equivalent(&netlist, 150);
}

#[test]
fn double_round_trip_is_stable() {
    // serialize(parse(serialize(n))) must equal serialize(parse(...)) up to
    // the placeholder signal, i.e. the second round trip is a fixpoint.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        words: 2,
        regs_per_word: 4,
        switching_registers: 2,
        wgc: WgcConfig::MaxLengthLfsr { width: 4, seed: 1 },
    };
    arch.embed(&mut netlist, clk.into()).expect("embeds");

    let once = parse(&serialize(&netlist)).expect("first round trip");
    let twice = parse(&serialize(&once)).expect("second round trip");
    // After the first trip the placeholder already exists, so the second
    // trip adds exactly one more; counts are otherwise stable.
    assert_eq!(twice.register_count(), once.register_count());
    assert_eq!(twice.icg_count(), once.icg_count());
    assert_eq!(twice.signal_count(), once.signal_count() + 1);
    assert_eq!(
        total_activity_trace(&once, 100),
        total_activity_trace(&twice, 100)
    );
}
