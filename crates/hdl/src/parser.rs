use crate::lexer::{tokenize, Line, Token};
use crate::HdlError;
use clockmark_netlist::{
    CellId, ClockInput, ClockRootId, DataSource, GroupId, Netlist, NetlistError, RegisterConfig,
    SignalExpr, SignalId,
};
use std::collections::HashMap;

/// What a declared name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Clock(ClockRootId),
    Group(GroupId),
    Cell(CellId),
    Signal(SignalId),
}

impl Binding {
    fn kind(&self) -> &'static str {
        match self {
            Binding::Clock(_) => "clock",
            Binding::Group(_) => "group",
            Binding::Cell(_) => "cell",
            Binding::Signal(_) => "signal",
        }
    }
}

/// Parses `.cmn` source into a validated [`Netlist`].
///
/// # Errors
///
/// Returns an [`HdlError`] carrying the offending 1-based source line for
/// lexical, syntactic, name-resolution and netlist-consistency problems.
pub fn parse(source: &str) -> Result<Netlist, HdlError> {
    let lines = tokenize(source)?;
    let mut parser = Parser {
        netlist: Netlist::new(),
        names: HashMap::new(),
    };
    parser
        .names
        .insert("top".to_owned(), Binding::Group(GroupId::TOP));
    for line in &lines {
        parser.statement(line)?;
    }
    parser
        .netlist
        .validate()
        .map_err(|source| HdlError::Netlist { line: 0, source })?;
    Ok(parser.netlist)
}

struct Parser {
    netlist: Netlist,
    names: HashMap<String, Binding>,
}

/// A cursor over one line's tokens.
struct Cursor<'a> {
    line: usize,
    tokens: &'a [Token],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a Line) -> Self {
        Cursor {
            line: line.number,
            tokens: &line.tokens,
            at: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.at);
        self.at += 1;
        t
    }

    fn unexpected(&self, expected: &str) -> HdlError {
        HdlError::Unexpected {
            line: self.line,
            expected: expected.to_owned(),
            found: match self.tokens.get(self.at) {
                Some(t) => t.to_string(),
                None => "end of line".to_owned(),
            },
        }
    }

    fn ident(&mut self, expected: &str) -> Result<String, HdlError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.at += 1;
                Ok(s)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn expect(&mut self, token: Token, expected: &str) -> Result<(), HdlError> {
        if self.peek() == Some(&token) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn end(&self) -> Result<(), HdlError> {
        if self.at == self.tokens.len() {
            Ok(())
        } else {
            Err(self.unexpected("end of line"))
        }
    }
}

/// Key-value pairs of a cell declaration.
struct KeyValues {
    line: usize,
    values: HashMap<String, KeyValue>,
}

enum KeyValue {
    Name(String),
    Data { head: String, arg: Option<String> },
}

impl KeyValues {
    fn take_name(&mut self, key: &'static str) -> Result<Option<String>, HdlError> {
        match self.values.remove(key) {
            None => Ok(None),
            Some(KeyValue::Name(n)) => Ok(Some(n)),
            Some(KeyValue::Data { .. }) => Err(HdlError::Unexpected {
                line: self.line,
                expected: format!("plain name for `{key}`"),
                found: "call syntax".to_owned(),
            }),
        }
    }

    fn require_name(&mut self, key: &'static str) -> Result<String, HdlError> {
        self.take_name(key)?.ok_or(HdlError::MissingKey {
            line: self.line,
            key,
        })
    }

    fn finish(self) -> Result<(), HdlError> {
        if let Some(key) = self.values.into_keys().next() {
            return Err(HdlError::Unexpected {
                line: self.line,
                expected: "a known key".to_owned(),
                found: format!("`{key}`"),
            });
        }
        Ok(())
    }
}

impl Parser {
    fn bind(&mut self, line: usize, name: &str, binding: Binding) -> Result<(), HdlError> {
        if self.names.contains_key(name) {
            return Err(HdlError::DuplicateName {
                line,
                name: name.to_owned(),
            });
        }
        self.names.insert(name.to_owned(), binding);
        Ok(())
    }

    fn lookup(&self, line: usize, name: &str) -> Result<Binding, HdlError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| HdlError::UnknownName {
                line,
                name: name.to_owned(),
            })
    }

    fn lookup_signal(&self, line: usize, name: &str) -> Result<SignalId, HdlError> {
        match self.lookup(line, name)? {
            Binding::Signal(s) => Ok(s),
            other => Err(HdlError::Unexpected {
                line,
                expected: "a signal name".to_owned(),
                found: format!("{} `{name}`", other.kind()),
            }),
        }
    }

    fn lookup_cell(&self, line: usize, name: &str) -> Result<CellId, HdlError> {
        match self.lookup(line, name)? {
            Binding::Cell(c) => Ok(c),
            other => Err(HdlError::Unexpected {
                line,
                expected: "a cell name".to_owned(),
                found: format!("{} `{name}`", other.kind()),
            }),
        }
    }

    fn lookup_clock(&self, line: usize, name: &str) -> Result<ClockInput, HdlError> {
        match self.lookup(line, name)? {
            Binding::Clock(c) => Ok(ClockInput::Root(c)),
            Binding::Cell(c) => Ok(ClockInput::Cell(c)),
            other => Err(HdlError::Unexpected {
                line,
                expected: "a clock root or clock-source cell".to_owned(),
                found: format!("{} `{name}`", other.kind()),
            }),
        }
    }

    fn lookup_group(&self, line: usize, name: Option<String>) -> Result<GroupId, HdlError> {
        match name {
            None => Ok(GroupId::TOP),
            Some(name) => match self.lookup(line, &name)? {
                Binding::Group(g) => Ok(g),
                other => Err(HdlError::Unexpected {
                    line,
                    expected: "a group name".to_owned(),
                    found: format!("{} `{name}`", other.kind()),
                }),
            },
        }
    }

    fn netlist_err(line: usize) -> impl Fn(NetlistError) -> HdlError {
        move |source| HdlError::Netlist { line, source }
    }

    fn statement(&mut self, line: &Line) -> Result<(), HdlError> {
        let mut cursor = Cursor::new(line);
        let keyword = cursor.ident("a statement keyword")?;
        match keyword.as_str() {
            "clock" => {
                let name = cursor.ident("a clock name")?;
                cursor.end()?;
                let id = self.netlist.add_clock_root(&name);
                self.bind(line.number, &name, Binding::Clock(id))
            }
            "group" => {
                let name = cursor.ident("a group name")?;
                cursor.end()?;
                let id = self.netlist.add_group(&name);
                self.bind(line.number, &name, Binding::Group(id))
            }
            "signal" => self.signal_statement(line.number, &mut cursor),
            "buffer" | "icg" | "reg" => self.cell_statement(&keyword, line.number, &mut cursor),
            "rewire" => self.rewire_statement(line.number, &mut cursor),
            other => Err(HdlError::Unexpected {
                line: line.number,
                expected: "clock/group/signal/buffer/icg/reg/rewire".to_owned(),
                found: format!("`{other}`"),
            }),
        }
    }

    fn signal_statement(&mut self, line: usize, cursor: &mut Cursor<'_>) -> Result<(), HdlError> {
        let name = cursor.ident("a signal name")?;
        cursor.expect(Token::Equals, "`=`")?;
        let head = cursor.ident("a signal expression")?;
        let expr = match head.as_str() {
            "external" => SignalExpr::External,
            "const" => {
                let bit = self.call_one_arg(line, cursor)?;
                SignalExpr::Const(parse_bit(line, &bit)?)
            }
            "reg" => {
                let cell = self.call_one_arg(line, cursor)?;
                SignalExpr::RegOutput(self.lookup_cell(line, &cell)?)
            }
            "not" => {
                let a = self.call_one_arg(line, cursor)?;
                SignalExpr::Not(self.lookup_signal(line, &a)?)
            }
            op @ ("and" | "or" | "xor") => {
                let (a, b) = self.call_two_args(line, cursor)?;
                let a = self.lookup_signal(line, &a)?;
                let b = self.lookup_signal(line, &b)?;
                match op {
                    "and" => SignalExpr::And(a, b),
                    "or" => SignalExpr::Or(a, b),
                    _ => SignalExpr::Xor(a, b),
                }
            }
            other => {
                return Err(HdlError::Unexpected {
                    line,
                    expected: "external/const/reg/and/or/xor/not".to_owned(),
                    found: format!("`{other}`"),
                })
            }
        };
        cursor.end()?;
        let id = self
            .netlist
            .add_signal(&name, expr)
            .map_err(Self::netlist_err(line))?;
        self.bind(line, &name, Binding::Signal(id))
    }

    fn call_one_arg(&self, _line: usize, cursor: &mut Cursor<'_>) -> Result<String, HdlError> {
        cursor.expect(Token::LParen, "`(`")?;
        let arg = cursor.ident("an argument")?;
        cursor.expect(Token::RParen, "`)`")?;
        Ok(arg)
    }

    fn call_two_args(
        &self,
        _line: usize,
        cursor: &mut Cursor<'_>,
    ) -> Result<(String, String), HdlError> {
        cursor.expect(Token::LParen, "`(`")?;
        let a = cursor.ident("an argument")?;
        cursor.expect(Token::Comma, "`,`")?;
        let b = cursor.ident("an argument")?;
        cursor.expect(Token::RParen, "`)`")?;
        Ok((a, b))
    }

    fn key_values(&self, line: usize, cursor: &mut Cursor<'_>) -> Result<KeyValues, HdlError> {
        let mut values = HashMap::new();
        while cursor.peek().is_some() {
            let key = cursor.ident("a key")?;
            cursor.expect(Token::Equals, "`=`")?;
            let head = cursor.ident("a value")?;
            let value = if cursor.peek() == Some(&Token::LParen) {
                cursor.next();
                let arg = cursor.ident("an argument")?;
                cursor.expect(Token::RParen, "`)`")?;
                KeyValue::Data {
                    head,
                    arg: Some(arg),
                }
            } else {
                KeyValue::Name(head)
            };
            if values.insert(key.clone(), value).is_some() {
                return Err(HdlError::DuplicateKey { line, key });
            }
        }
        Ok(KeyValues { line, values })
    }

    fn take_data(&self, kv: &mut KeyValues) -> Result<Option<DataSource>, HdlError> {
        let line = kv.line;
        let Some(value) = kv.values.remove("data") else {
            return Ok(None);
        };
        let (head, arg) = match value {
            KeyValue::Name(n) => (n, None),
            KeyValue::Data { head, arg } => (head, arg),
        };
        let data = match (head.as_str(), arg) {
            ("toggle", None) => DataSource::Toggle,
            ("hold", None) => DataSource::Hold,
            ("const", Some(bit)) => DataSource::Constant(parse_bit(line, &bit)?),
            ("shift", Some(cell)) => DataSource::ShiftFrom(self.lookup_cell(line, &cell)?),
            ("signal", Some(sig)) => DataSource::Signal(self.lookup_signal(line, &sig)?),
            (other, _) => {
                return Err(HdlError::Unexpected {
                    line,
                    expected: "toggle/hold/const(b)/shift(cell)/signal(sig)".to_owned(),
                    found: format!("`{other}`"),
                })
            }
        };
        Ok(Some(data))
    }

    fn cell_statement(
        &mut self,
        kind: &str,
        line: usize,
        cursor: &mut Cursor<'_>,
    ) -> Result<(), HdlError> {
        let name = cursor.ident("a cell name")?;
        let mut kv = self.key_values(line, cursor)?;

        let clock_name = kv.require_name("clock")?;
        let clock = self.lookup_clock(line, &clock_name)?;
        let group = {
            let g = kv.take_name("group")?;
            self.lookup_group(line, g)?
        };

        let id = match kind {
            "buffer" => {
                kv.finish()?;
                self.netlist
                    .add_buffer(group, clock)
                    .map_err(Self::netlist_err(line))?
            }
            "icg" => {
                let enable_name = kv.require_name("enable")?;
                let enable = self.lookup_signal(line, &enable_name)?;
                kv.finish()?;
                self.netlist
                    .add_icg(group, clock, enable)
                    .map_err(Self::netlist_err(line))?
            }
            "reg" => {
                let mut config = RegisterConfig::new(clock);
                if let Some(data) = self.take_data(&mut kv)? {
                    config = config.data(data);
                }
                if let Some(init) = kv.take_name("init")? {
                    config = config.init(parse_bit(line, &init)?);
                }
                if let Some(enable) = kv.take_name("enable")? {
                    config = config.sync_enable(self.lookup_signal(line, &enable)?);
                }
                kv.finish()?;
                self.netlist
                    .add_register(group, config)
                    .map_err(Self::netlist_err(line))?
            }
            _ => unreachable!("caller matched the keyword"),
        };
        self.netlist
            .name_cell(id, &name)
            .map_err(Self::netlist_err(line))?;
        self.bind(line, &name, Binding::Cell(id))
    }

    fn rewire_statement(&mut self, line: usize, cursor: &mut Cursor<'_>) -> Result<(), HdlError> {
        let name = cursor.ident("a cell name")?;
        let cell = self.lookup_cell(line, &name)?;
        let mut kv = self.key_values(line, cursor)?;

        if let Some(data) = self.take_data(&mut kv)? {
            self.netlist
                .set_register_data(cell, data)
                .map_err(Self::netlist_err(line))?;
        }
        if let Some(enable) = kv.take_name("enable")? {
            let enable = self.lookup_signal(line, &enable)?;
            self.netlist
                .set_icg_enable(cell, enable)
                .map_err(Self::netlist_err(line))?;
        }
        kv.finish()
    }
}

fn parse_bit(line: usize, text: &str) -> Result<bool, HdlError> {
    match text {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(HdlError::Unexpected {
            line,
            expected: "`0` or `1`".to_owned(),
            found: format!("`{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_netlist::CellKind;

    #[test]
    fn parses_the_crate_docs_example() {
        let source = "\
# comments run to end of line
clock clk
group watermark

signal en    = external
signal n_en  = not(en)

buffer b0 clock=clk
icg    g0 clock=b0 enable=en group=watermark
reg    r0 clock=g0 data=toggle init=1 group=watermark
reg    r1 clock=g0 data=shift(r0)
signal q1 = reg(r1)
reg    r2 clock=clk data=signal(q1) enable=en

rewire r0 data=shift(r1)
rewire g0 enable=n_en
";
        let netlist = parse(source).expect("parses");
        assert_eq!(netlist.clock_root_count(), 1);
        assert_eq!(netlist.group_count(), 2);
        assert_eq!(netlist.register_count(), 3);
        assert_eq!(netlist.icg_count(), 1);
        assert_eq!(netlist.buffer_count(), 1);
        assert_eq!(netlist.signal_count(), 3);

        // The rewires took effect.
        let wm = netlist.group("watermark").expect("declared");
        let cells = netlist.cells_in_group(wm);
        assert_eq!(cells.len(), 2); // g0 + r0
        let r0 = cells
            .iter()
            .find(|&&c| netlist.cell(c).expect("known").kind.is_register())
            .copied()
            .expect("r0 in group");
        match netlist.cell(r0).expect("known").kind {
            CellKind::Register(config) => {
                assert!(matches!(config.data, DataSource::ShiftFrom(_)));
                assert!(config.init);
            }
            _ => panic!("not a register"),
        }
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let cases: &[(&str, usize)] = &[
            ("clock clk\nreg r0 clock=nope", 2),
            ("signal s = and(a, b)", 1),
            ("clock clk\nclock clk", 2),
            ("clock clk\nreg r0 data=toggle", 2),
            ("clock clk\nreg r0 clock=clk clock=clk", 2),
            ("clock clk\nreg r0 clock=clk init=2", 2),
            ("widget w", 1),
        ];
        for (source, line) in cases {
            let err = parse(source).unwrap_err();
            assert_eq!(err.line(), *line, "for {source:?}: {err}");
        }
    }

    #[test]
    fn kind_mismatches_are_diagnosed() {
        // A group used as a clock.
        let err = parse("group g\nreg r0 clock=g").unwrap_err();
        assert!(err.to_string().contains("clock root"), "{err}");

        // A cell used as a signal.
        let err = parse("clock clk\nbuffer b clock=clk\nsignal s = not(b)").unwrap_err();
        assert!(err.to_string().contains("signal name"), "{err}");

        // Rewiring a buffer's data.
        let err = parse("clock clk\nbuffer b clock=clk\nrewire b data=toggle").unwrap_err();
        assert!(matches!(err, HdlError::Netlist { line: 3, .. }), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = parse("clock clk\nreg r0 clock=clk colour=red").unwrap_err();
        assert!(err.to_string().contains("colour"), "{err}");
    }

    #[test]
    fn top_group_is_predeclared() {
        let netlist = parse("clock clk\nreg r clock=clk group=top").expect("parses");
        assert_eq!(netlist.register_count_in_group(GroupId::TOP), 1);
    }

    #[test]
    fn cell_names_survive_into_the_netlist() {
        let netlist = parse("clock clk\nreg counter_q clock=clk").expect("parses");
        let (_, cell) = netlist.cells().next().expect("one cell");
        assert_eq!(cell.name.as_deref(), Some("counter_q"));
    }
}
