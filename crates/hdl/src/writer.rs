use clockmark_netlist::{
    CellId, CellKind, ClockInput, DataSource, GroupId, Netlist, SignalExpr, SignalId,
};
use std::fmt::Write as _;

/// Serialises a netlist to `.cmn` text that [`parse`](crate::parse)
/// accepts and that reconstructs a behaviourally identical netlist.
///
/// Names are canonical (`clk0`, `grp1`, `s0`, `c0`…); original cell names
/// are preserved as comments. Sequential data loops and retargeted clock
/// gates come out as `rewire` statements, and clock-gate enables are
/// always rewired (through a constant placeholder signal) so arbitrary
/// post-construction retargeting serialises correctly. The placeholder
/// shifts signal ids by one, so round-trip comparisons should be
/// behavioural, not id-based.
pub fn serialize(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# clockmark netlist v1");

    // --- clock roots and groups -----------------------------------------
    for i in 0..netlist.clock_root_count() {
        let name = netlist
            .clock_root_name(clockmark_netlist_root(i))
            .unwrap_or("");
        let _ = writeln!(out, "clock clk{i} # {name}");
    }
    for i in 1..netlist.group_count() {
        let name = netlist.group_name(group_id(i)).unwrap_or("");
        let _ = writeln!(out, "group grp{i} # {name}");
    }

    let group_name = |g: GroupId| {
        if g == GroupId::TOP {
            "top".to_owned()
        } else {
            format!("grp{}", g.index())
        }
    };
    let clock_name = |c: ClockInput| match c {
        ClockInput::Root(r) => format!("clk{}", r.index()),
        ClockInput::Cell(c) => format!("c{}", c.index()),
    };
    let sig_name = |s: SignalId| format!("s{}", s.index());
    let cell_name = |c: CellId| format!("c{}", c.index());

    // --- placeholder enable for clock gates ------------------------------
    let has_icg = netlist.icg_count() > 0;
    if has_icg {
        let _ = writeln!(out, "signal ph_en = const(0) # placeholder, rewired below");
    }

    // --- precompute emission dependencies --------------------------------
    let signals: Vec<(SignalId, SignalExpr)> = netlist
        .signals()
        .map(|(id, decl)| (id, decl.expr))
        .collect();
    let cells: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();

    // For a signal: the largest cell id it reads (RegOutput), if any.
    let sig_cell_dep = |expr: SignalExpr| -> Option<usize> {
        match expr {
            SignalExpr::RegOutput(c) => Some(c.index()),
            _ => None,
        }
    };
    // For a cell: the largest signal id its *inline* declaration needs
    // (sync enables only; data and ICG enables are rewired).
    let cell_sig_dep = |id: CellId| -> Option<usize> {
        match netlist.cell(id).expect("iterating own ids").kind {
            CellKind::Register(config) => config.sync_enable.map(|s| s.index()),
            _ => None,
        }
    };

    // --- merged emission --------------------------------------------------
    let mut next_sig = 0usize;
    let mut next_cell = 0usize;
    let mut rewires: Vec<String> = Vec::new();

    while next_sig < signals.len() || next_cell < cells.len() {
        // Prefer signals; fall back to cells when the signal is blocked on
        // a not-yet-emitted register.
        let emit_signal = match signals.get(next_sig) {
            Some((_, expr)) => match sig_cell_dep(*expr) {
                Some(cell_dep) => cell_dep < next_cell,
                None => true,
            },
            None => false,
        };
        if emit_signal {
            let (id, expr) = signals[next_sig];
            let rhs = match expr {
                SignalExpr::Const(b) => format!("const({})", b as u8),
                SignalExpr::External => "external".to_owned(),
                SignalExpr::RegOutput(c) => format!("reg({})", cell_name(c)),
                SignalExpr::And(a, b) => format!("and({}, {})", sig_name(a), sig_name(b)),
                SignalExpr::Or(a, b) => format!("or({}, {})", sig_name(a), sig_name(b)),
                SignalExpr::Xor(a, b) => format!("xor({}, {})", sig_name(a), sig_name(b)),
                SignalExpr::Not(a) => format!("not({})", sig_name(a)),
            };
            let original = netlist.signal(id).expect("own id").name.clone();
            let _ = writeln!(out, "signal {} = {rhs} # {original}", sig_name(id));
            next_sig += 1;
            continue;
        }

        let id = cells[next_cell];
        if let Some(dep) = cell_sig_dep(id) {
            assert!(
                dep < next_sig,
                "emission deadlock: cell {id} needs signal s{dep} (emitted {next_sig})"
            );
        }
        let cell = netlist.cell(id).expect("own id");
        let comment = cell.name.as_deref().unwrap_or("");
        match cell.kind {
            CellKind::ClockBuffer { clock } => {
                let _ = writeln!(
                    out,
                    "buffer {} clock={} group={} # {comment}",
                    cell_name(id),
                    clock_name(clock),
                    group_name(cell.group),
                );
            }
            CellKind::ClockGate { clock, enable } => {
                let _ = writeln!(
                    out,
                    "icg {} clock={} enable=ph_en group={} # {comment}",
                    cell_name(id),
                    clock_name(clock),
                    group_name(cell.group),
                );
                rewires.push(format!(
                    "rewire {} enable={}",
                    cell_name(id),
                    sig_name(enable)
                ));
            }
            CellKind::Register(config) => {
                let inline_data = match config.data {
                    DataSource::Hold => Some("hold".to_owned()),
                    DataSource::Toggle => Some("toggle".to_owned()),
                    DataSource::Constant(b) => Some(format!("const({})", b as u8)),
                    DataSource::ShiftFrom(src) => {
                        rewires.push(format!(
                            "rewire {} data=shift({})",
                            cell_name(id),
                            cell_name(src)
                        ));
                        None
                    }
                    DataSource::Signal(sig) => {
                        rewires.push(format!(
                            "rewire {} data=signal({})",
                            cell_name(id),
                            sig_name(sig)
                        ));
                        None
                    }
                };
                let mut decl = format!(
                    "reg {} clock={} data={} init={} group={}",
                    cell_name(id),
                    clock_name(config.clock),
                    inline_data.unwrap_or_else(|| "hold".to_owned()),
                    config.init as u8,
                    group_name(cell.group),
                );
                if let Some(enable) = config.sync_enable {
                    let _ = write!(decl, " enable={}", sig_name(enable));
                }
                let _ = writeln!(out, "{decl} # {comment}");
            }
        }
        next_cell += 1;
    }

    for rewire in rewires {
        let _ = writeln!(out, "{rewire}");
    }
    out
}

fn clockmark_netlist_root(index: usize) -> clockmark_netlist::ClockRootId {
    clockmark_netlist::ClockRootId::from_index(index)
}

fn group_id(index: usize) -> GroupId {
    GroupId::from_index(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use clockmark_netlist::{Netlist, RegisterConfig, SignalExpr};

    fn round_trip(netlist: &Netlist) -> Netlist {
        let text = serialize(netlist);
        parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n--- text ---\n{text}"))
    }

    #[test]
    fn simple_netlist_round_trips_counts() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), en).expect("icg");
        let r0 = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(icg.into()).data(DataSource::Toggle),
            )
            .expect("register");
        let r1 = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into())
                    .data(DataSource::ShiftFrom(r0))
                    .sync_enable(en),
            )
            .expect("register");
        n.set_register_data(r0, DataSource::ShiftFrom(r1))
            .expect("rewire");

        let back = round_trip(&n);
        assert_eq!(back.register_count(), 2);
        assert_eq!(back.icg_count(), 1);
        assert_eq!(back.clock_root_count(), 1);
        // Placeholder adds one signal.
        assert_eq!(back.signal_count(), n.signal_count() + 1);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn netlist_without_icgs_has_no_placeholder() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        n.add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("register");
        let text = serialize(&n);
        assert!(!text.contains("ph_en"));
        assert_eq!(round_trip(&n).signal_count(), 0);
    }

    #[test]
    fn original_names_survive_as_comments() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("main_clock");
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("register");
        n.name_cell(reg, "status_flag").expect("known");
        let text = serialize(&n);
        assert!(text.contains("main_clock"));
        assert!(text.contains("status_flag"));
    }
}
