use clockmark_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing `.cmn` text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdlError {
    /// A character the lexer does not recognise.
    UnexpectedCharacter {
        /// 1-based source line.
        line: usize,
        /// The offending character.
        character: char,
    },
    /// The parser expected something else here.
    Unexpected {
        /// 1-based source line.
        line: usize,
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A name was used before being declared.
    UnknownName {
        /// 1-based source line.
        line: usize,
        /// The undeclared name.
        name: String,
    },
    /// A name was declared twice.
    DuplicateName {
        /// 1-based source line.
        line: usize,
        /// The re-declared name.
        name: String,
    },
    /// A required key (e.g. a register's `clock=`) is missing.
    MissingKey {
        /// 1-based source line.
        line: usize,
        /// The missing key.
        key: &'static str,
    },
    /// A key appeared twice in one declaration.
    DuplicateKey {
        /// 1-based source line.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// The netlist rejected a construction (with the source line that
    /// caused it).
    Netlist {
        /// 1-based source line.
        line: usize,
        /// The underlying error.
        source: NetlistError,
    },
}

impl HdlError {
    /// The 1-based source line the error points at.
    pub fn line(&self) -> usize {
        match self {
            HdlError::UnexpectedCharacter { line, .. }
            | HdlError::Unexpected { line, .. }
            | HdlError::UnknownName { line, .. }
            | HdlError::DuplicateName { line, .. }
            | HdlError::MissingKey { line, .. }
            | HdlError::DuplicateKey { line, .. }
            | HdlError::Netlist { line, .. } => *line,
        }
    }
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::UnexpectedCharacter { line, character } => {
                write!(f, "line {line}: unexpected character {character:?}")
            }
            HdlError::Unexpected {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected {expected}, found {found}")
            }
            HdlError::UnknownName { line, name } => {
                write!(f, "line {line}: unknown name `{name}`")
            }
            HdlError::DuplicateName { line, name } => {
                write!(f, "line {line}: name `{name}` is already declared")
            }
            HdlError::MissingKey { line, key } => {
                write!(f, "line {line}: missing required key `{key}`")
            }
            HdlError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key `{key}`")
            }
            HdlError::Netlist { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl Error for HdlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HdlError::Netlist { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_accessor_and_display() {
        let err = HdlError::UnknownName {
            line: 7,
            name: "x".into(),
        };
        assert_eq!(err.line(), 7);
        assert!(err.to_string().contains("line 7"));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn netlist_errors_chain() {
        let err = HdlError::Netlist {
            line: 3,
            source: NetlistError::UnknownClockRoot,
        };
        assert!(err.source().is_some());
    }
}
