//! The `.cmn` text netlist format: parse and serialize
//! [`Netlist`](clockmark_netlist::Netlist)s.
//!
//! The watermark-insertion flow the paper targets operates on RTL files an
//! IP vendor ships and an integrator synthesises. This crate provides the
//! file interchange for the `clockmark` tool suite: a small line-oriented
//! netlist language covering exactly the model of `clockmark-netlist`
//! (clock roots, groups, combinational signals, buffers, clock gates,
//! registers, and post-declaration rewires for sequential loops).
//!
//! # Format
//!
//! ```text
//! # comments run to end of line
//! clock clk
//! group watermark
//!
//! signal en    = external
//! signal n_en  = not(en)
//!
//! buffer b0 clock=clk
//! icg    g0 clock=b0 enable=en group=watermark
//! reg    r0 clock=g0 data=toggle init=1 group=watermark
//! reg    r1 clock=g0 data=shift(r0)
//! signal q1 = reg(r1)
//! reg    r2 clock=clk data=signal(q1) enable=en
//!
//! # sequential loops are closed after declaration:
//! rewire r0 data=shift(r1)
//! # clock-gate enables can also be retargeted (watermark insertion):
//! rewire g0 enable=n_en
//! ```
//!
//! # Round trip
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use clockmark_hdl::{parse, serialize};
//! use clockmark_netlist::{GroupId, Netlist, RegisterConfig};
//!
//! let mut netlist = Netlist::new();
//! let clk = netlist.add_clock_root("clk");
//! netlist.add_register(GroupId::TOP, RegisterConfig::new(clk.into()))?;
//!
//! let text = serialize(&netlist);
//! let reparsed = parse(&text)?;
//! assert_eq!(reparsed.register_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lexer;
mod parser;
mod verilog;
mod writer;

pub use error::HdlError;
pub use parser::parse;
pub use verilog::to_verilog;
pub use writer::serialize;
