use crate::HdlError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    /// Identifier or bare number (`r0`, `toggle`, `1`).
    Ident(String),
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Equals => write!(f, "`=`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
        }
    }
}

/// A tokenised source line that still knows its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Line {
    pub number: usize,
    pub tokens: Vec<Token>,
}

/// Splits source text into non-empty token lines. Comments (`#` to end of
/// line) and blank lines disappear.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Line>, HdlError> {
    let mut lines = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        let mut tokens = Vec::new();
        let mut chars = raw.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                '#' => break,
                c if c.is_whitespace() => {
                    chars.next();
                }
                '=' => {
                    chars.next();
                    tokens.push(Token::Equals);
                }
                '(' => {
                    chars.next();
                    tokens.push(Token::LParen);
                }
                ')' => {
                    chars.next();
                    tokens.push(Token::RParen);
                }
                ',' => {
                    chars.next();
                    tokens.push(Token::Comma);
                }
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            ident.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(ident));
                }
                other => {
                    return Err(HdlError::UnexpectedCharacter {
                        line: number,
                        character: other,
                    })
                }
            }
        }
        if !tokens.is_empty() {
            lines.push(Line { number, tokens });
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_declaration() {
        let lines = tokenize("reg r0 clock=clk data=shift(r1)").expect("lexes");
        assert_eq!(lines.len(), 1);
        let t = &lines[0].tokens;
        assert_eq!(t[0], Token::Ident("reg".into()));
        assert_eq!(t[1], Token::Ident("r0".into()));
        assert_eq!(t[2], Token::Ident("clock".into()));
        assert_eq!(t[3], Token::Equals);
        assert_eq!(t[4], Token::Ident("clk".into()));
        assert_eq!(t[8], Token::LParen);
        assert_eq!(t[10], Token::RParen);
    }

    #[test]
    fn comments_and_blank_lines_vanish() {
        let lines = tokenize("# header\n\nclock clk # trailing\n\n# done\n").expect("lexes");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].number, 3);
        assert_eq!(lines[0].tokens.len(), 2);
    }

    #[test]
    fn bad_characters_report_their_line() {
        let err = tokenize("clock clk\nreg r0 @clock").unwrap_err();
        assert_eq!(
            err,
            HdlError::UnexpectedCharacter {
                line: 2,
                character: '@'
            }
        );
    }

    #[test]
    fn numbers_lex_as_identifiers() {
        let lines = tokenize("reg r0 init=1").expect("lexes");
        assert_eq!(lines[0].tokens[4], Token::Ident("1".into()));
    }
}
