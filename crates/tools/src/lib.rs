//! The `clockmark-cli` tool suite: the watermark-insertion and detection
//! flow as command-line operations over `.cmn` netlist files and CSV power
//! traces.
//!
//! Subcommands (all implemented as library functions so they are
//! unit-testable; the binary is a thin dispatcher):
//!
//! | command | what it does |
//! |---|---|
//! | `parse <file.cmn>` | validate a netlist and print statistics |
//! | `embed <file.cmn> --arch clockmod\|load --out <file>` | insert a watermark and write the result |
//! | `simulate <file.cmn> --cycles N [--vcd f] [--power f]` | run the cycle simulator, optionally dumping waveforms / a power trace |
//! | `attack <file.cmn> --group <name>` | removal-attack (influence) analysis of a cell group |
//! | `detect --trace <csv> --lfsr W [--seed S]` | rotational CPA on a recorded trace |
//! | `experiment --chip i\|ii --cycles N [--trace-out f]` | full pipeline run on a chip model |
//! | `corpus build\|ls\|verify\|convert` | manage an on-disk corpus of binary `.cmt` power traces |
//! | `campaign run\|resume\|status` | resumable sharded detection campaigns over a corpus (`run --scenarios` for an attack × defense matrix) |
//! | `scenario report\|template` | render a scenario campaign's detection-rate-under-attack report; write a starter `scenarios.json` |
//! | `serve [--addr A]` | run the concurrent detection server in the foreground |
//! | `client ping\|status\|detect\|detect-corpus\|shutdown` | drive a running server over the wire |
//! | `fleet serve\|run\|status` | shard one campaign across many worker nodes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
mod error;
pub mod fleet;
pub mod fleet_cmd;
pub mod opts;
pub mod scenario_cmd;
pub mod serve_cmd;
pub mod tracefile;

pub use error::ToolError;
