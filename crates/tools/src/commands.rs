//! The subcommand implementations, as pure(ish) functions over strings so
//! they are unit-testable; the binary handles file I/O and printing.

use crate::tracefile;
use crate::ToolError;
use clockmark::{
    ChipModel, ClockModulationWatermark, Experiment, LoadCircuitWatermark, WatermarkArchitecture,
    WgcConfig,
};
use clockmark_cpa::{DetectOptions, DetectionCriterion, Detector};
use clockmark_hdl::{parse, serialize};
use clockmark_netlist::{ClockInput, ClockRootId, Netlist, SignalExpr};
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
use clockmark_seq::{Lfsr, SequenceGenerator};
use clockmark_sim::{CycleSim, SignalDriver, VcdProbe};
use std::collections::HashSet;
use std::fmt::Write as _;

fn first_clock(netlist: &Netlist) -> Result<ClockInput, ToolError> {
    if netlist.clock_root_count() == 0 {
        return Err(ToolError::Usage(
            "the netlist declares no clock root; add `clock clk`".to_owned(),
        ));
    }
    Ok(ClockInput::Root(ClockRootId::from_index(0)))
}

/// `parse`: validate a `.cmn` file and report statistics.
///
/// # Errors
///
/// Returns parse/validation failures with their source line.
pub fn cmd_parse(source: &str) -> Result<String, ToolError> {
    let netlist = parse(source)?;
    let mut out = String::new();
    let _ = writeln!(out, "netlist ok");
    let _ = writeln!(out, "  clock roots : {}", netlist.clock_root_count());
    let _ = writeln!(out, "  groups      : {}", netlist.group_count());
    let _ = writeln!(out, "  signals     : {}", netlist.signal_count());
    let _ = writeln!(out, "  registers   : {}", netlist.register_count());
    let _ = writeln!(out, "  clock gates : {}", netlist.icg_count());
    let _ = writeln!(out, "  buffers     : {}", netlist.buffer_count());
    for i in 0..netlist.group_count() {
        let g = clockmark_netlist::GroupId::from_index(i);
        let _ = writeln!(
            out,
            "  group {:<12}: {} registers",
            netlist.group_name(g).unwrap_or("?"),
            netlist.register_count_in_group(g)
        );
    }
    Ok(out)
}

/// Which watermark architecture `embed` inserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchChoice {
    /// The proposed clock-modulation watermark.
    ClockMod,
    /// The state-of-the-art load-circuit watermark.
    Load,
}

impl std::str::FromStr for ArchChoice {
    type Err = ToolError;
    fn from_str(s: &str) -> Result<Self, ToolError> {
        match s {
            "clockmod" => Ok(ArchChoice::ClockMod),
            "load" => Ok(ArchChoice::Load),
            other => Err(ToolError::Usage(format!(
                "--arch must be `clockmod` or `load`, not `{other}`"
            ))),
        }
    }
}

/// Options of the `embed` subcommand.
#[derive(Debug, Clone)]
pub struct EmbedOptions {
    /// Architecture to insert.
    pub arch: ArchChoice,
    /// LFSR width of the WGC.
    pub width: u32,
    /// LFSR seed.
    pub seed: u32,
    /// Clock-gated words (clockmod).
    pub words: u32,
    /// Registers per word (clockmod).
    pub regs_per_word: u32,
    /// Load registers (load).
    pub load_registers: u32,
}

impl Default for EmbedOptions {
    fn default() -> Self {
        EmbedOptions {
            arch: ArchChoice::ClockMod,
            width: 12,
            seed: 1,
            words: 32,
            regs_per_word: 32,
            load_registers: 576,
        }
    }
}

/// `embed`: insert a watermark into a parsed netlist, returning the new
/// `.cmn` text and a report.
///
/// # Errors
///
/// Returns parse failures and watermark configuration errors.
pub fn cmd_embed(source: &str, options: &EmbedOptions) -> Result<(String, String), ToolError> {
    let mut netlist = parse(source)?;
    let clock = first_clock(&netlist)?;
    let before_regs = netlist.register_count();
    let wgc = WgcConfig::MaxLengthLfsr {
        width: options.width,
        seed: options.seed,
    };

    let (wm, name, amplitude) = match options.arch {
        ArchChoice::ClockMod => {
            let arch = ClockModulationWatermark {
                words: options.words,
                regs_per_word: options.regs_per_word,
                switching_registers: 0,
                wgc,
            };
            let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
            let amplitude = arch.signal_amplitude(&model);
            (arch.embed(&mut netlist, clock)?, arch.name(), amplitude)
        }
        ArchChoice::Load => {
            let arch = LoadCircuitWatermark {
                load_registers: options.load_registers,
                regs_per_gate: 32,
                clock_gated: true,
                wgc,
            };
            let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
            let amplitude = arch.signal_amplitude(&model);
            (arch.embed(&mut netlist, clock)?, arch.name(), amplitude)
        }
    };

    let mut report = String::new();
    let _ = writeln!(report, "embedded: {name}");
    let _ = writeln!(report, "  WGC registers      : {}", wm.wgc_cells.len());
    let _ = writeln!(report, "  body registers     : {}", wm.body_cells.len());
    let _ = writeln!(report, "  clock gates        : {}", wm.icg_cells.len());
    let _ = writeln!(report, "  sequence period    : {}", wm.period());
    let _ = writeln!(report, "  signal amplitude   : {amplitude}");
    let _ = writeln!(
        report,
        "  system registers   : {before_regs} before, {} after",
        netlist.register_count()
    );
    Ok((serialize(&netlist), report))
}

/// Output of the `simulate` subcommand.
#[derive(Debug, Clone)]
pub struct SimulateOutput {
    /// Human-readable activity summary.
    pub report: String,
    /// VCD waveforms (signals + clock gates), when requested.
    pub vcd: Option<String>,
    /// CSV power trace, when requested.
    pub power_csv: Option<String>,
}

/// `simulate`: run the cycle simulator with every external signal driven
/// high, reporting activity and optionally VCD / power-trace dumps.
///
/// # Errors
///
/// Returns parse and simulation failures.
pub fn cmd_simulate(
    source: &str,
    cycles: usize,
    want_vcd: bool,
    want_power: bool,
) -> Result<SimulateOutput, ToolError> {
    let netlist = parse(source)?;
    let mut sim = CycleSim::new(&netlist)?;
    for (id, decl) in netlist.signals() {
        if matches!(decl.expr, SignalExpr::External) {
            sim.drive(id, SignalDriver::Constant(true))?;
        }
    }

    let mut probe = want_vcd.then(|| {
        let mut probe = VcdProbe::new("clockmark-cli simulate");
        // Watch all signals and every clock gate's output activity; cap the
        // channel count so pathological netlists stay viewable.
        const MAX_CHANNELS: usize = 256;
        for (id, decl) in netlist.signals().take(MAX_CHANNELS / 2) {
            probe.watch_signal(id, &format!("s{}_{}", id.index(), decl.name));
        }
        for (id, cell) in netlist.cells() {
            if probe.channel_count() >= MAX_CHANNELS {
                break;
            }
            if matches!(cell.kind, clockmark_netlist::CellKind::ClockGate { .. }) {
                probe.watch_clock(id, &format!("c{}_gated_clk", id.index()));
            }
        }
        probe
    });

    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let mut activity = clockmark_sim::ActivityTrace::new(netlist.group_count());
    for _ in 0..cycles {
        let row = sim.step().to_vec();
        activity.push_cycle(&row);
        if let Some(probe) = probe.as_mut() {
            probe.sample(&sim);
        }
    }
    let power = model.trace(&activity);

    let mut report = String::new();
    let _ = writeln!(report, "simulated {cycles} cycles");
    let _ = writeln!(
        report,
        "  dynamic power : mean {}, min {}, max {}",
        power.mean(),
        power.min().unwrap_or(clockmark_power::Power::ZERO),
        power.max().unwrap_or(clockmark_power::Power::ZERO),
    );
    for i in 0..netlist.group_count() {
        let g = clockmark_netlist::GroupId::from_index(i);
        let sum = activity.group_sum(g);
        let _ = writeln!(
            report,
            "  group {:<12}: {} reg-clock events, {} data toggles",
            netlist.group_name(g).unwrap_or("?"),
            sum.reg_clock_events,
            sum.reg_data_toggles,
        );
    }

    let vcd = match probe {
        Some(probe) => {
            let mut out = Vec::new();
            probe.write(&mut out).expect("writing to a Vec cannot fail");
            Some(String::from_utf8(out).expect("vcd output is ascii"))
        }
        None => None,
    };
    let power_csv = want_power.then(|| tracefile::write_trace(&power));
    Ok(SimulateOutput {
        report,
        vcd,
        power_csv,
    })
}

/// `verilog`: convert a `.cmn` netlist to a synthesizable Verilog module.
///
/// # Errors
///
/// Returns parse failures with their source line.
pub fn cmd_verilog(source: &str, module_name: &str) -> Result<String, ToolError> {
    let netlist = parse(source)?;
    Ok(clockmark_hdl::to_verilog(&netlist, module_name))
}

/// `attack`: removal-attack analysis of one named cell group.
///
/// # Errors
///
/// Returns parse failures and an error for unknown group names.
pub fn cmd_attack(source: &str, group_name: &str) -> Result<String, ToolError> {
    let netlist = parse(source)?;
    let group = netlist
        .group(group_name)
        .ok_or_else(|| ToolError::Usage(format!("no group named `{group_name}`")))?;
    let set: HashSet<_> = netlist.cells_in_group(group).into_iter().collect();
    if set.is_empty() {
        return Err(ToolError::Usage(format!(
            "group `{group_name}` holds no cells"
        )));
    }
    let influence = netlist.influence_of(&set)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "removal attack against group `{group_name}` ({} cells):",
        set.len()
    );
    if influence.is_standalone() {
        let _ = writeln!(
            out,
            "  STAND-ALONE: removal leaves the rest of the design intact"
        );
    } else {
        let _ = writeln!(
            out,
            "  NOT REMOVABLE: {} outside registers change behaviour",
            influence.affected_register_count()
        );
        let _ = writeln!(
            out,
            "    de-clocked        : {}",
            influence.clocked_through_set.len()
        );
        let _ = writeln!(
            out,
            "    gated incorrectly : {}",
            influence.clock_dependents.len()
        );
        let _ = writeln!(
            out,
            "    data corrupted    : {}",
            influence.data_dependents.len()
        );
    }
    Ok(out)
}

/// The expected-sequence specification of `detect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternSpec {
    /// A maximal LFSR: width and seed.
    Lfsr {
        /// Register width.
        width: u32,
        /// Initial state.
        seed: u32,
    },
    /// Explicit bits, e.g. `10110`.
    Bits(Vec<bool>),
}

impl PatternSpec {
    /// Expands to one period of the expected sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] for invalid LFSR parameters.
    pub fn pattern(&self) -> Result<Vec<bool>, ToolError> {
        match self {
            PatternSpec::Lfsr { width, seed } => {
                let mut lfsr = Lfsr::maximal_with_seed(*width, *seed)
                    .map_err(|e| ToolError::Usage(format!("invalid LFSR parameters: {e}")))?;
                let period = (1usize << width) - 1;
                Ok((0..period).map(|_| lfsr.next_bit()).collect())
            }
            PatternSpec::Bits(bits) => Ok(bits.clone()),
        }
    }
}

/// `detect`: rotational CPA of a recorded trace against an expected
/// sequence.
///
/// # Errors
///
/// Returns trace-format and CPA errors.
pub fn cmd_detect(
    trace_text: &str,
    spec: &PatternSpec,
    lenient: bool,
) -> Result<String, ToolError> {
    let trace = tracefile::read_trace(trace_text)?;
    let pattern = spec.pattern()?;
    let criterion = if lenient {
        DetectionCriterion::lenient()
    } else {
        DetectionCriterion::default()
    };
    let detector =
        Detector::with_options(&pattern, DetectOptions::default().with_criterion(criterion))?;
    let spectrum = detector.spectrum(trace.as_watts())?;
    let result = detector.criterion().evaluate(&spectrum);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles, pattern period {}",
        trace.len(),
        pattern.len()
    );
    let _ = writeln!(out, "{result}");
    let _ = writeln!(
        out,
        "floor: mean {:+.6}, std {:.6}",
        spectrum.floor_mean(),
        spectrum.floor_std()
    );
    Ok(out)
}

/// `experiment`: a full pipeline run on a chip model, optionally exporting
/// the measured trace for later `detect` runs.
///
/// # Errors
///
/// Returns pipeline failures.
pub fn cmd_experiment(
    chip: ChipModel,
    cycles: usize,
    seed: u64,
    quick_noise: bool,
    export_trace: bool,
) -> Result<(String, Option<String>), ToolError> {
    let mut experiment = if quick_noise {
        Experiment::quick(cycles, seed)
    } else {
        let mut e = Experiment::paper_chip_i();
        e.cycles = cycles;
        e.seed = seed;
        e
    };
    experiment.chip = chip;

    let arch = ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr {
            width: if quick_noise { 8 } else { 12 },
            seed: 1,
        },
        ..ClockModulationWatermark::paper()
    };
    let outcome = experiment.run(&arch)?;

    let trace_csv = export_trace.then(|| {
        // Re-derive Y from the spectrum is impossible; rerun acquisition is
        // wasteful — export the per-rotation spectrum instead when asked
        // for machine-readable output.
        let mut csv = String::from("# spread spectrum: rotation, rho\n");
        for (r, rho) in outcome.spectrum.rho().iter().enumerate() {
            csv.push_str(&format!("{r}, {rho:.9}\n"));
        }
        csv
    });
    Ok((format!("{outcome}\n"), trace_csv))
}

/// `metrics`: validate and summarise a `CLOCKMARK_METRICS` JSON-lines
/// artifact.
///
/// Every non-empty line must parse as a JSON object with a known `t`
/// tag (`span`, `counter`, `gauge`, `hist`, `span_stat`, `win_hist`,
/// `win_rate`); span lines are re-aggregated by name and windowed
/// records are rendered as per-window percentile tables, so the summary
/// is readable without any other tooling.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] naming the first malformed line.
pub fn cmd_metrics(contents: &str) -> Result<String, ToolError> {
    use clockmark_obs::json::{parse as parse_json, Json};
    use std::collections::BTreeMap;

    let mut type_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut span_agg: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    let mut summary_lines: Vec<String> = Vec::new();
    let mut window_lines: BTreeMap<String, Vec<String>> = BTreeMap::new();

    let mut total = 0usize;
    for (lineno, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        let value = parse_json(line).map_err(|e| {
            ToolError::Usage(format!("metrics line {}: invalid JSON: {e}", lineno + 1))
        })?;
        let tag = value.get("t").and_then(Json::as_str).ok_or_else(|| {
            ToolError::Usage(format!("metrics line {}: missing `t` tag", lineno + 1))
        })?;
        let name = value.get("name").and_then(Json::as_str).ok_or_else(|| {
            ToolError::Usage(format!("metrics line {}: missing `name`", lineno + 1))
        })?;
        match tag {
            "span" => {
                let dur_ns = value.get("dur_ns").and_then(Json::as_f64).ok_or_else(|| {
                    ToolError::Usage(format!("metrics line {}: span lacks dur_ns", lineno + 1))
                })?;
                *type_counts.entry("span").or_default() += 1;
                let entry = span_agg.entry(name.to_owned()).or_insert((0, 0.0, 0.0));
                entry.0 += 1;
                entry.1 += dur_ns / 1e9;
                entry.2 = entry.2.max(dur_ns / 1e9);
            }
            "counter" | "gauge" => {
                let v = value.get("value").and_then(Json::as_f64).ok_or_else(|| {
                    ToolError::Usage(format!("metrics line {}: {tag} lacks value", lineno + 1))
                })?;
                *type_counts
                    .entry(if tag == "counter" { "counter" } else { "gauge" })
                    .or_default() += 1;
                summary_lines.push(format!("  {tag:<9} {name:<32} {v}"));
            }
            "hist" => {
                *type_counts.entry("hist").or_default() += 1;
                let stat = |k: &str| value.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                summary_lines.push(format!(
                    "  hist      {name:<32} n {:>6}  mean {:.3e}  p50 {:.3e}  p90 {:.3e}  p99 {:.3e}",
                    stat("count") as u64,
                    stat("mean"),
                    stat("p50"),
                    stat("p90"),
                    stat("p99"),
                ));
            }
            "span_stat" => {
                *type_counts.entry("span_stat").or_default() += 1;
            }
            "win_hist" | "win_rate" => {
                let window = value.get("window").and_then(Json::as_str).ok_or_else(|| {
                    ToolError::Usage(format!("metrics line {}: {tag} lacks window", lineno + 1))
                })?;
                let stat = |k: &str| value.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let tag_key: &'static str = if tag == "win_hist" {
                    "win_hist"
                } else {
                    "win_rate"
                };
                *type_counts.entry(tag_key).or_default() += 1;
                let rendered = if tag == "win_hist" {
                    format!(
                        "    {window:<4} n {:>6}  {:>8.1}/s  p50 {:.3e}  p95 {:.3e}  p99 {:.3e}",
                        stat("count") as u64,
                        stat("rate_per_sec"),
                        stat("p50"),
                        stat("p95"),
                        stat("p99"),
                    )
                } else {
                    format!(
                        "    {window:<4} n {:>6}  {:>8.1}/s",
                        stat("count") as u64,
                        stat("rate_per_sec"),
                    )
                };
                window_lines
                    .entry(name.to_owned())
                    .or_default()
                    .push(rendered);
            }
            other => {
                return Err(ToolError::Usage(format!(
                    "metrics line {}: unknown tag `{other}`",
                    lineno + 1
                )))
            }
        }
    }

    if total == 0 {
        return Err(ToolError::Usage(
            "metrics file contains no events; run with CLOCKMARK_METRICS set".to_owned(),
        ));
    }

    let mut out = String::new();
    let _ = write!(out, "metrics ok: {total} event(s)");
    for (tag, n) in &type_counts {
        let _ = write!(out, ", {n} {tag}");
    }
    out.push('\n');
    if !span_agg.is_empty() {
        out.push_str("spans by name:\n");
        for (name, (count, total_s, max_s)) in &span_agg {
            let _ = writeln!(
                out,
                "  {name:<32} count {count:>6}  total {total_s:>9.3}s  max {max_s:>9.3}s"
            );
        }
    }
    for line in summary_lines {
        out.push_str(&line);
        out.push('\n');
    }
    if !window_lines.is_empty() {
        out.push_str("sliding windows:\n");
        for (name, lines) in &window_lines {
            let _ = writeln!(out, "  {name}");
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    Ok(out)
}

/// `metrics --collapse`: rebuild the per-span-path self-time rollup
/// from an artifact's `span` lines as collapsed-stack text (one
/// `path;to;frame self_ns` line per path), ready for any flamegraph
/// renderer.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] on malformed lines or when the artifact
/// holds no span events.
pub fn cmd_metrics_collapse(contents: &str) -> Result<String, ToolError> {
    use clockmark_obs::json::{parse as parse_json, Json};

    let mut agg = clockmark_obs::PathAgg::default();
    for (lineno, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| {
            ToolError::Usage(format!("metrics line {}: invalid JSON: {e}", lineno + 1))
        })?;
        if value.get("t").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let path = value.get("path").and_then(Json::as_str).ok_or_else(|| {
            ToolError::Usage(format!("metrics line {}: span lacks path", lineno + 1))
        })?;
        let dur_ns = value.get("dur_ns").and_then(Json::as_f64).ok_or_else(|| {
            ToolError::Usage(format!("metrics line {}: span lacks dur_ns", lineno + 1))
        })? as u128;
        agg.record(path, dur_ns);
    }
    if agg.is_empty() {
        return Err(ToolError::Usage(
            "artifact holds no span events to collapse".to_owned(),
        ));
    }
    Ok(agg.collapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
clock clk
group cpu
signal run = external
icg g0 clock=clk enable=run group=cpu
reg r0 clock=g0 data=toggle group=cpu
reg r1 clock=g0 data=shift(r0) group=cpu
";

    #[test]
    fn parse_reports_counts() {
        let report = cmd_parse(SMALL).expect("parses");
        assert!(report.contains("registers   : 2"));
        assert!(report.contains("clock gates : 1"));
        assert!(report.contains("group cpu"));
    }

    #[test]
    fn parse_propagates_errors_with_lines() {
        let err = cmd_parse("clock clk\nreg r0").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn embed_clockmod_grows_the_netlist_and_round_trips() {
        let options = EmbedOptions {
            width: 6,
            words: 2,
            regs_per_word: 4,
            ..EmbedOptions::default()
        };
        let (text, report) = cmd_embed(SMALL, &options).expect("embeds");
        assert!(report.contains("WGC registers      : 6"));
        assert!(report.contains("body registers     : 8"));
        // The output is valid .cmn with the watermark inside.
        let reparsed = cmd_parse(&text).expect("re-parses");
        assert!(reparsed.contains("registers   : 16")); // 2 + 6 + 8
    }

    #[test]
    fn embed_load_circuit() {
        let options = EmbedOptions {
            arch: ArchChoice::Load,
            width: 6,
            load_registers: 24,
            ..EmbedOptions::default()
        };
        let (_, report) = cmd_embed(SMALL, &options).expect("embeds");
        assert!(report.contains("body registers     : 24"));
        assert!(report.contains("state of the art"));
    }

    #[test]
    fn embed_requires_a_clock() {
        let err = cmd_embed("group g\n", &EmbedOptions::default()).unwrap_err();
        assert!(err.to_string().contains("clock root"), "{err}");
    }

    #[test]
    fn simulate_reports_and_dumps() {
        let out = cmd_simulate(SMALL, 50, true, true).expect("simulates");
        assert!(out.report.contains("simulated 50 cycles"));
        assert!(out.report.contains("group cpu"));
        let vcd = out.vcd.expect("requested");
        assert!(vcd.contains("$enddefinitions"));
        let power = out.power_csv.expect("requested");
        let trace = tracefile::read_trace(&power).expect("valid trace");
        assert_eq!(trace.len(), 50);
        assert!(trace.mean().watts() > 0.0);
    }

    #[test]
    fn verilog_conversion_produces_a_module() {
        let v = cmd_verilog(SMALL, "cpu_block").expect("converts");
        assert!(v.contains("module cpu_block"));
        assert!(v.contains("endmodule"));
        assert!(v.contains("always @(posedge"));
    }

    #[test]
    fn attack_distinguishes_standalone_groups() {
        // The `cpu` group contains its own ICG and registers and nothing
        // else reads them → stand-alone.
        let report = cmd_attack(SMALL, "cpu").expect("analyses");
        assert!(report.contains("STAND-ALONE"), "{report}");

        // Unknown group.
        let err = cmd_attack(SMALL, "gpu").unwrap_err();
        assert!(err.to_string().contains("gpu"));
    }

    #[test]
    fn attack_detects_entanglement() {
        // A register OUTSIDE the group clocked through the group's ICG.
        let source = format!("{SMALL}reg outsider clock=g0\n");
        let report = cmd_attack(&source, "cpu").expect("analyses");
        assert!(report.contains("NOT REMOVABLE"), "{report}");
        assert!(report.contains("de-clocked        : 1"), "{report}");
    }

    #[test]
    fn detect_finds_a_planted_pattern() {
        // Synthesise a trace with a known LFSR pattern.
        let spec = PatternSpec::Lfsr { width: 7, seed: 1 };
        let pattern = spec.pattern().expect("valid");
        let mut csv = String::new();
        for i in 0..5000 {
            let wm = if pattern[(i + 31) % 127] { 1.0e-3 } else { 0.0 };
            let noise = ((i * 2654435761usize) % 997) as f64 * 1e-6;
            csv.push_str(&format!("{}\n", wm + noise));
        }
        let report = cmd_detect(&csv, &spec, false).expect("detects");
        assert!(report.contains("DETECTED"), "{report}");
        assert!(report.contains("rotation 31"), "{report}");
    }

    #[test]
    fn detect_rejects_bad_specs_and_traces() {
        let err = cmd_detect("1.0\n", &PatternSpec::Lfsr { width: 1, seed: 1 }, false).unwrap_err();
        assert!(err.to_string().contains("invalid LFSR"), "{err}");

        let err = cmd_detect("oops\n", &PatternSpec::Bits(vec![true, false]), false).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn experiment_quick_runs_end_to_end() {
        let (report, spectrum_csv) =
            cmd_experiment(ChipModel::ChipI, 12_000, 3, true, true).expect("runs");
        assert!(report.contains("DETECTED"), "{report}");
        let csv = spectrum_csv.expect("requested");
        assert!(csv.lines().count() > 250);
    }

    #[test]
    fn metrics_summarises_a_recorded_artifact() {
        // Produce a real artifact with a private recorder rather than
        // hand-writing lines, so the CLI validator and the exporter can
        // never drift apart.
        let buffer = clockmark_obs::SharedBuffer::new();
        let recorder = std::sync::Arc::new(clockmark_obs::Recorder::new(vec![Box::new(
            clockmark_obs::JsonLinesExporter::new(buffer.clone()),
        )]));
        {
            let _span = recorder.span("sim.run").field("cycles", 300u64);
        }
        {
            let _span = recorder.span("cpa.rotate").field("worker", 0usize);
        }
        recorder.counter_add("sim.cycles", 300);
        recorder.gauge_set("cpa.peak_rho_abs", 0.0153);
        recorder.observe("cpa.chunk_seconds", 0.25);
        recorder.flush();

        let report = cmd_metrics(&buffer.contents()).expect("valid artifact");
        assert!(report.starts_with("metrics ok:"), "{report}");
        assert!(report.contains("sim.run"), "{report}");
        assert!(report.contains("cpa.rotate"), "{report}");
        assert!(report.contains("sim.cycles"), "{report}");
        assert!(report.contains("cpa.chunk_seconds"), "{report}");
        // The exporter now emits live-window records; the validator must
        // accept them and render the per-window table.
        assert!(report.contains("win_hist"), "{report}");
        assert!(report.contains("sliding windows:"), "{report}");
        assert!(report.contains("60s"), "{report}");

        let collapsed = cmd_metrics_collapse(&buffer.contents()).expect("collapsible");
        assert!(collapsed.contains("sim.run "), "{collapsed}");
        assert!(collapsed.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, ns)| ns.parse::<u64>().is_ok())));
    }

    #[test]
    fn metrics_accepts_windowed_records_and_rejects_unknown_windows() {
        let report = cmd_metrics(
            "{\"t\":\"win_hist\",\"name\":\"serve.request_seconds\",\"window\":\"10s\",\
             \"count\":41,\"rate_per_sec\":4.1,\"mean\":0.002,\"min\":0.001,\"max\":0.004,\
             \"p50\":0.002,\"p95\":0.0038,\"p99\":0.004}\n\
             {\"t\":\"win_rate\",\"name\":\"serve.accept\",\"window\":\"1s\",\
             \"count\":5,\"rate_per_sec\":5}\n",
        )
        .expect("windowed records are valid");
        assert!(report.contains("1 win_hist, 1 win_rate"), "{report}");
        assert!(report.contains("serve.request_seconds"), "{report}");
        assert!(report.contains("p95 3.800e-3"), "{report}");
        assert!(report.contains("5.0/s"), "{report}");

        let err = cmd_metrics("{\"t\":\"win_hist\",\"name\":\"x\",\"count\":1}\n").unwrap_err();
        assert!(err.to_string().contains("lacks window"), "{err}");
    }

    #[test]
    fn metrics_rejects_malformed_lines() {
        let err = cmd_metrics("not json\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");

        let err = cmd_metrics("{\"t\":\"mystery\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.to_string().contains("unknown tag"), "{err}");

        let err = cmd_metrics("\n\n").unwrap_err();
        assert!(err.to_string().contains("no events"), "{err}");
    }
}
