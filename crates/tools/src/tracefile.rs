//! CSV power-trace files: one watts value per line, `#` comments.
//!
//! The interchange between `clockmark-cli simulate`/`experiment` (which
//! record traces) and `clockmark-cli detect` (which runs CPA on them) —
//! standing in for the oscilloscope's exported capture.

use crate::ToolError;
use clockmark_power::PowerTrace;

/// Serialises a trace, one value per line with a small header.
pub fn write_trace(trace: &PowerTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 16 + 64);
    out.push_str("# clockmark power trace, watts per clock cycle\n");
    out.push_str(&format!("# cycles: {}\n", trace.len()));
    for w in trace.as_watts() {
        out.push_str(&format!("{w:.9e}\n"));
    }
    out
}

/// Parses a trace produced by [`write_trace`] (or any one-value-per-line
/// file with `#` comments).
///
/// # Errors
///
/// Returns [`ToolError::Trace`] with the offending 1-based line for
/// malformed or non-finite values.
pub fn read_trace(text: &str) -> Result<PowerTrace, ToolError> {
    let mut watts = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let value: f64 = line.parse().map_err(|_| ToolError::Trace {
            line: i + 1,
            message: format!("cannot parse `{line}` as a number"),
        })?;
        if !value.is_finite() {
            return Err(ToolError::Trace {
                line: i + 1,
                message: "values must be finite".to_owned(),
            });
        }
        watts.push(value);
    }
    Ok(PowerTrace::from_watts(watts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_power::Power;
    use proptest::prelude::*;

    #[test]
    fn round_trip_preserves_values() {
        let trace: PowerTrace = [1.5e-3, 2.25e-3, 0.0, 4.75e-3]
            .into_iter()
            .map(Power::from_watts)
            .collect();
        let text = write_trace(&trace);
        let back = read_trace(&text).expect("parses");
        assert_eq!(back.len(), 4);
        for (a, b) in back.as_watts().iter().zip(trace.as_watts()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let back = read_trace("# header\n\n1.0 # inline\n\n2.0\n").expect("parses");
        assert_eq!(back.as_watts(), &[1.0, 2.0]);
    }

    #[test]
    fn bad_lines_are_located() {
        let err = read_trace("1.0\nnot_a_number\n").unwrap_err();
        match err {
            ToolError::Trace { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        assert!(read_trace("inf\n").is_err());
        assert!(read_trace("NaN\n").is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip(values in proptest::collection::vec(-1.0f64..1.0, 0..200)) {
            let trace = PowerTrace::from_watts(values.clone());
            let back = read_trace(&write_trace(&trace)).expect("parses");
            prop_assert_eq!(back.len(), values.len());
            for (a, b) in back.as_watts().iter().zip(&values) {
                prop_assert!((a - b).abs() <= b.abs() * 1e-8 + 1e-12);
            }
        }
    }
}
