//! CSV power-trace files: one watts value per line, `#` comments.
//!
//! The interchange between `clockmark-cli simulate`/`experiment` (which
//! record traces) and `clockmark-cli detect` (which runs CPA on them) —
//! standing in for the oscilloscope's exported capture.

use crate::ToolError;
use clockmark_power::PowerTrace;
use std::fmt::Write as _;

/// Serialises a trace, one value per line with a small header.
pub fn write_trace(trace: &PowerTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 16 + 64);
    out.push_str("# clockmark power trace, watts per clock cycle\n");
    let _ = writeln!(out, "# cycles: {}", trace.len());
    for w in trace.as_watts() {
        // `write!` formats straight into `out`; a per-line `format!`
        // here used to allocate (and drop) one String per cycle, which
        // dominated the cost of exporting paper-scale traces.
        let _ = writeln!(out, "{w:.9e}");
    }
    out
}

/// Parses a trace produced by [`write_trace`] (or any one-value-per-line
/// file with `#` comments).
///
/// # Errors
///
/// Returns [`ToolError::Trace`] with the offending 1-based line for
/// malformed or non-finite values.
pub fn read_trace(text: &str) -> Result<PowerTrace, ToolError> {
    let mut watts = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let value: f64 = line.parse().map_err(|_| ToolError::Trace {
            line: i + 1,
            message: format!("cannot parse `{line}` as a number"),
        })?;
        if !value.is_finite() {
            return Err(ToolError::Trace {
                line: i + 1,
                message: "values must be finite".to_owned(),
            });
        }
        watts.push(value);
    }
    Ok(PowerTrace::from_watts(watts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_power::Power;
    use proptest::prelude::*;

    #[test]
    fn round_trip_preserves_values() {
        let trace: PowerTrace = [1.5e-3, 2.25e-3, 0.0, 4.75e-3]
            .into_iter()
            .map(Power::from_watts)
            .collect();
        let text = write_trace(&trace);
        let back = read_trace(&text).expect("parses");
        assert_eq!(back.len(), 4);
        for (a, b) in back.as_watts().iter().zip(trace.as_watts()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let back = read_trace("# header\n\n1.0 # inline\n\n2.0\n").expect("parses");
        assert_eq!(back.as_watts(), &[1.0, 2.0]);
    }

    #[test]
    fn bad_lines_are_located() {
        let err = read_trace("1.0\nnot_a_number\n").unwrap_err();
        match err {
            ToolError::Trace { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        assert!(read_trace("inf\n").is_err());
        assert!(read_trace("NaN\n").is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip(values in proptest::collection::vec(-1.0f64..1.0, 0..200)) {
            let trace = PowerTrace::from_watts(values.clone());
            let back = read_trace(&write_trace(&trace)).expect("parses");
            prop_assert_eq!(back.len(), values.len());
            for (a, b) in back.as_watts().iter().zip(&values) {
                prop_assert!((a - b).abs() <= b.abs() * 1e-8 + 1e-12);
            }
        }

        #[test]
        fn csv_and_binary_codecs_round_trip(values in proptest::collection::vec(-1.0f64..1.0, 1..200)) {
            use clockmark::corpus::{decode_trace, encode_trace, TraceHeader};

            // CSV → parse → binary → decode → CSV. Only the initial CSV
            // parse may round (its format is decimal text); the binary
            // codec is bit-exact, so the second CSV must equal the first.
            let csv = write_trace(&PowerTrace::from_watts(values.clone()));
            let parsed = read_trace(&csv).expect("parses");
            let bytes = encode_trace(TraceHeader::bare(parsed.len() as u64), parsed.as_watts())
                .expect("encodes");
            let (header, back) = decode_trace(&bytes).expect("decodes");
            prop_assert_eq!(header.cycles as usize, values.len());
            for (a, b) in back.iter().zip(parsed.as_watts()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(write_trace(&PowerTrace::from_watts(back)), csv);
        }

        #[test]
        fn non_finite_values_are_rejected_by_both_codecs(
            bad in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
            prefix in proptest::collection::vec(-1.0f64..1.0, 0..8),
        ) {
            use clockmark::corpus::{encode_trace, CorpusError, TraceHeader};

            let mut watts = prefix.clone();
            watts.push(bad);

            // Binary side: the absolute sample index of the offender.
            let err = encode_trace(TraceHeader::bare(watts.len() as u64), &watts).unwrap_err();
            prop_assert!(
                matches!(err, CorpusError::NonFinite { index } if index == prefix.len() as u64),
                "{err}"
            );

            // CSV side: the 1-based line, counting the comment header.
            let mut csv = String::from("# header\n");
            for w in &watts {
                let _ = writeln!(csv, "{w:e}");
            }
            let err = read_trace(&csv).unwrap_err();
            prop_assert!(
                matches!(err, ToolError::Trace { line, .. } if line == prefix.len() + 2),
                "{err}"
            );
        }
    }
}
