//! The `serve` and `client …` subcommands: the detection service from
//! the command line.
//!
//! `cmd_serve` runs a server in the foreground until a wire `Shutdown`
//! request drains it; the `client` commands drive one request each and
//! render the reply in the same format the in-process `detect` command
//! uses, so scripts can diff the two outputs byte for byte.

use std::fmt::Write as _;

use clockmark_cpa::{
    CandidatePattern, CpaAlgo, DetectOptions, DetectionCriterion, SequentialOptions,
    SequentialResult, TraceDetection,
};
use clockmark_serve::{Client, ServeLimits, Server};

use crate::commands::PatternSpec;
use crate::{tracefile, ToolError};

/// Settings of the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:4780` (port 0 picks a free one).
    pub addr: String,
    /// Resource limits to enforce.
    pub limits: ServeLimits,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4780".to_owned(),
            limits: ServeLimits::default(),
        }
    }
}

/// Detection settings shared by `client detect` and `client detect-corpus`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientDetectOptions {
    /// Use the lenient criterion instead of the paper default.
    pub lenient: bool,
    /// Pin a spectrum kernel instead of the server-side heuristic.
    pub algo: Option<CpaAlgo>,
    /// Propagate a wire trace context and report the trace/span ids.
    pub traced: bool,
}

impl ClientDetectOptions {
    fn detect_options(self) -> DetectOptions {
        let criterion = if self.lenient {
            DetectionCriterion::lenient()
        } else {
            DetectionCriterion::default()
        };
        let mut options = DetectOptions::default().with_criterion(criterion);
        if let Some(algo) = self.algo {
            options = options.with_algo(algo);
        }
        options
    }
}

/// `serve`: run a detection server in the foreground until drained.
///
/// The bound address is printed (and flushed) before blocking, so a
/// harness can spawn the process, read the first line, and connect.
///
/// # Errors
///
/// Returns bind failures.
pub fn cmd_serve(options: &ServeOptions) -> Result<String, ToolError> {
    let handle = Server::new()
        .with_limits(options.limits)
        .bind(options.addr.as_str())?;
    println!("listening on {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let status = handle.wait();
    Ok(format!(
        "drained: served {} detects, rejected {} connections\n",
        status.served, status.rejected
    ))
}

/// `client ping`: round-trip a liveness probe.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_ping(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    client.ping()?;
    Ok(format!("pong from {addr}\n"))
}

/// `client status`: fetch and render the server's load counters.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_status(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    let status = client.status()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sessions: {}/{} active{}, {} total",
        status.active_sessions,
        status.max_sessions,
        if status.draining { " (draining)" } else { "" },
        status.total_sessions,
    );
    let _ = writeln!(
        out,
        "served: {} detects, rejected: {} connections",
        status.served, status.rejected
    );
    let _ = writeln!(
        out,
        "algos: naive {}, folded {}, fft {}",
        status.algo_naive, status.algo_folded, status.algo_fft
    );
    let _ = writeln!(
        out,
        "engine: {} registered, {} readable, {} in-flight",
        status.registered, status.readable, status.in_flight
    );
    let _ = writeln!(out, "uptime: {}s", status.uptime_secs);
    Ok(out)
}

/// `client metrics`: dump the server's Prometheus text snapshot.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_metrics(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    Ok(client.metrics()?)
}

/// Looks up one sample value in Prometheus exposition text by its full
/// series id (name plus label set, exactly as rendered).
fn prom_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (id, value) = line.rsplit_once(' ')?;
        if id == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

fn fmt_seconds(v: Option<f64>) -> String {
    match v {
        Some(s) if s >= 1.0 => format!("{s:.2}s"),
        Some(s) if s >= 1e-3 => format!("{:.2}ms", s * 1e3),
        Some(s) if s > 0.0 => format!("{:.1}us", s * 1e6),
        Some(_) => "0".to_owned(),
        None => "-".to_owned(),
    }
}

fn fmt_rate(v: Option<f64>) -> String {
    match v {
        Some(r) => format!("{r:.1}"),
        None => "-".to_owned(),
    }
}

/// Renders a consumed-cycle quantile: whole cycles, `k` past 10⁴.
fn fmt_cycles(v: Option<f64>) -> String {
    match v {
        Some(c) if c >= 10_000.0 => format!("{:.1}k", c / 1_000.0),
        Some(c) => format!("{}", c.round() as u64),
        None => "-".to_owned(),
    }
}

/// Renders one `client watch` dashboard frame from a status report and
/// a Prometheus metrics snapshot.
pub fn render_watch_frame(
    addr: &str,
    status: &clockmark_serve::ServerStatus,
    metrics: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "clockmark serve {addr} — up {}s{}",
        status.uptime_secs,
        if status.draining { " (draining)" } else { "" }
    );
    let _ = writeln!(
        out,
        "sessions: {}/{} active, {} total, {} rejected",
        status.active_sessions, status.max_sessions, status.total_sessions, status.rejected
    );
    let _ = writeln!(
        out,
        "served:   {} verdicts (naive {}, folded {}, fft {})",
        status.served, status.algo_naive, status.algo_folded, status.algo_fft
    );
    let _ = writeln!(
        out,
        "engine:   {} registered, {} readable, {} in-flight",
        status.registered, status.readable, status.in_flight
    );
    let rate = |w: &str| {
        prom_value(
            metrics,
            &format!("clockmark_serve_requests_window_rate{{window=\"{w}\"}}"),
        )
    };
    let _ = writeln!(
        out,
        "req/s:    1s {}  10s {}  60s {}",
        fmt_rate(rate("1s")),
        fmt_rate(rate("10s")),
        fmt_rate(rate("60s"))
    );
    let quant = |q: &str| {
        prom_value(
            metrics,
            &format!("clockmark_serve_request_seconds_window{{window=\"10s\",quantile=\"{q}\"}}"),
        )
    };
    let _ = writeln!(
        out,
        "latency:  p50 {}  p95 {}  p99 {}  (10s window)",
        fmt_seconds(quant("0.5")),
        fmt_seconds(quant("0.95")),
        fmt_seconds(quant("0.99"))
    );
    let cycles_quant = |q: &str| {
        prom_value(
            metrics,
            &format!(
                "clockmark_serve_detect_cycles_consumed_window{{window=\"60s\",quantile=\"{q}\"}}"
            ),
        )
    };
    let _ = writeln!(
        out,
        "cycles:   p50 {}  p95 {}  p99 {} consumed/verdict (60s window)",
        fmt_cycles(cycles_quant("0.5")),
        fmt_cycles(cycles_quant("0.95")),
        fmt_cycles(cycles_quant("0.99"))
    );
    let errors = prom_value(metrics, "clockmark_serve_errors_total").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "errors:   {} request failures, {} busy rejections",
        errors, status.rejected
    );
    out
}

/// `client watch`: a refreshing terminal dashboard over `Status` +
/// `Metrics`. Draws `count` frames `interval_ms` apart (`count: None`
/// runs until the connection drops).
///
/// # Errors
///
/// Returns connection or protocol failures from the first exchange;
/// later failures (e.g. the server draining away) end the watch
/// gracefully.
pub fn cmd_client_watch(
    addr: &str,
    interval_ms: u64,
    count: Option<u64>,
) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    let mut frames = 0u64;
    let mut last = String::new();
    loop {
        let frame = client
            .status()
            .and_then(|status| Ok((status, client.metrics()?)));
        match frame {
            Ok((status, metrics)) => {
                last = render_watch_frame(addr, &status, &metrics);
                frames += 1;
            }
            Err(e) if frames == 0 => return Err(e.into()),
            // The server drained or dropped us after at least one good
            // frame: end the watch gracefully.
            Err(_) => return Ok(format!("{last}watch ended: server went away\n")),
        }
        if count.is_some_and(|n| frames >= n) {
            return Ok(last);
        }
        // Clear and home between frames so the dashboard repaints in
        // place on an ANSI terminal.
        print!("\x1b[2J\x1b[H{last}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// `client shutdown`: ask the server to drain and exit.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_shutdown(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    client.shutdown()?;
    Ok(format!("{addr} acknowledged shutdown, draining\n"))
}

/// `client detect`: stream a CSV trace to the server and render its
/// verdict exactly like the in-process `detect` command renders one.
///
/// With `sequential` set the server evaluates the trace incrementally
/// and the rendering gains the consumed-cycles / checkpoint-trail
/// summary; the verdict block itself stays byte-compatible.
///
/// # Errors
///
/// Returns trace-file, connection, or detection failures.
pub fn cmd_client_detect(
    addr: &str,
    trace_text: &str,
    spec: &PatternSpec,
    options: ClientDetectOptions,
    sequential: Option<SequentialOptions>,
) -> Result<String, ToolError> {
    let trace = tracefile::read_trace(trace_text)?;
    let pattern = spec.pattern()?;
    let mut client = connect(addr)?;
    if options.traced {
        client.enable_tracing();
    }
    let mut out = match sequential {
        Some(seq) => {
            let outcome = client.detect_sequential(
                &pattern,
                options.detect_options(),
                seq,
                trace.as_watts(),
            )?;
            render_sequential(&outcome, pattern.len())
        }
        None => {
            let detection = client.detect(&pattern, options.detect_options(), trace.as_watts())?;
            render_detection(&detection, pattern.len())
        }
    };
    append_trace_line(&mut out, &client);
    Ok(out)
}

/// `client identify`: stream a CSV trace once and rank candidate
/// watermark patterns by correlation strength — the batched replacement
/// for one `client detect` per candidate seed.
///
/// # Errors
///
/// Returns trace-file, connection, or identification failures.
pub fn cmd_client_identify(
    addr: &str,
    trace_text: &str,
    spec: &PatternSpec,
    options: ClientDetectOptions,
    candidates: &[CandidatePattern],
) -> Result<String, ToolError> {
    let trace = tracefile::read_trace(trace_text)?;
    let pattern = spec.pattern()?;
    let mut client = connect(addr)?;
    if options.traced {
        client.enable_tracing();
    }
    let identification = client.identify(
        &pattern,
        options.detect_options(),
        candidates,
        trace.as_watts(),
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles, pattern period {}, {} candidates",
        identification.cycles,
        pattern.len(),
        identification.scores.len()
    );
    for (rank, score) in identification.scores.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>3}. {:<24} |rho| {:.6}  ratio {:.2}  zscore {:.2}{}",
            rank + 1,
            score.label,
            score.result.peak_rho.abs(),
            score.result.ratio,
            score.result.zscore,
            if score.result.detected {
                "  DETECTED"
            } else {
                ""
            }
        );
    }
    let best = identification.best();
    let _ = writeln!(
        out,
        "best: {} (candidate {}{})",
        best.label,
        best.index,
        if best.result.detected {
            ", passes the detection criterion"
        } else {
            ", below the detection criterion"
        }
    );
    append_trace_line(&mut out, &client);
    Ok(out)
}

/// `client detect-corpus`: detect against a trace stored in a corpus on
/// the server's filesystem.
///
/// # Errors
///
/// Returns connection or detection failures.
pub fn cmd_client_detect_corpus(
    addr: &str,
    corpus: &str,
    trace: &str,
    spec: &PatternSpec,
    options: ClientDetectOptions,
) -> Result<String, ToolError> {
    let pattern = spec.pattern()?;
    let mut client = connect(addr)?;
    if options.traced {
        client.enable_tracing();
    }
    let detection = client.detect_corpus(corpus, trace, &pattern, options.detect_options())?;
    let mut out = render_detection(&detection, pattern.len());
    append_trace_line(&mut out, &client);
    Ok(out)
}

/// Appends the trace-propagation summary line after a traced verdict.
fn append_trace_line(out: &mut String, client: &Client) {
    if let Some(trace_id) = client.trace_id_hex() {
        let _ = writeln!(
            out,
            "trace: id {trace_id}, server span {:#018x}, {} B sent, {} B received",
            client.last_server_span(),
            client.bytes_sent(),
            client.bytes_received()
        );
    }
}

/// Parses the `client identify` candidate list: comma-separated
/// `label=bits` entries (`bits` alone auto-labels as `cand<index>`).
///
/// Candidates should be genuinely different sequences — other seeds of
/// the same LFSR are cyclic shifts of one m-sequence, which the
/// phase-blind rotational correlator cannot tell apart.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] for empty entries or non-binary digits.
pub fn parse_candidate_list(raw: &str) -> Result<Vec<CandidatePattern>, ToolError> {
    raw.split(',')
        .enumerate()
        .map(|(index, entry)| {
            let (label, bits) = match entry.split_once('=') {
                Some((label, bits)) => (label.to_owned(), bits),
                None => (format!("cand{index}"), entry),
            };
            if bits.is_empty() {
                return Err(ToolError::Usage(format!(
                    "--candidates entry {index} has no bits"
                )));
            }
            let pattern = bits
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(ToolError::Usage(format!(
                        "--candidates bits must be 0s and 1s, found {other:?}"
                    ))),
                })
                .collect::<Result<Vec<bool>, _>>()?;
            Ok(CandidatePattern::new(label, pattern))
        })
        .collect()
}

fn connect(addr: &str) -> Result<Client, ToolError> {
    Ok(Client::connect(addr)?)
}

fn render_detection(detection: &TraceDetection, period: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles, pattern period {}",
        detection.cycles, period
    );
    let _ = writeln!(out, "{}", detection.result);
    out
}

fn render_sequential(outcome: &SequentialResult, period: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles consumed, pattern period {}",
        outcome.cycles_consumed, period
    );
    let _ = writeln!(out, "{}", outcome.result);
    let _ = writeln!(
        out,
        "sequential: {} after {} checkpoint{}",
        if outcome.early_stopped {
            "stopped early"
        } else {
            "ran to the end of the trace"
        },
        outcome.checkpoints.len(),
        if outcome.checkpoints.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_options_map_flags() {
        let options = ClientDetectOptions {
            lenient: true,
            algo: Some(CpaAlgo::Fft),
            traced: false,
        };
        let mapped = options.detect_options();
        assert_eq!(mapped.criterion, DetectionCriterion::lenient());
        assert_eq!(mapped.algo, Some(CpaAlgo::Fft));

        let mapped = ClientDetectOptions::default().detect_options();
        assert_eq!(mapped.criterion, DetectionCriterion::default());
        assert_eq!(mapped.algo, None);
    }

    #[test]
    fn end_to_end_over_loopback() {
        let handle = Server::new().bind("127.0.0.1:0").expect("bind");
        let addr = handle.local_addr().to_string();

        assert!(cmd_client_ping(&addr).expect("ping").contains("pong"));
        // The status session itself occupies a slot while it is served.
        assert!(cmd_client_status(&addr)
            .expect("status")
            .contains("/8 active"));

        // A short watermarked trace in the CSV format `detect` reads.
        let pattern = PatternSpec::Lfsr { width: 5, seed: 1 }
            .pattern()
            .expect("pattern");
        let csv: String = (0..pattern.len() * 30)
            .map(|i| {
                let wm = if pattern[i % pattern.len()] {
                    1.0
                } else {
                    -1.0
                };
                format!("{}\n", wm + ((i * 37) % 101) as f64 * 0.002)
            })
            .collect();
        let rendered = cmd_client_detect(
            &addr,
            &csv,
            &PatternSpec::Lfsr { width: 5, seed: 1 },
            ClientDetectOptions::default(),
            None,
        )
        .expect("detect");
        assert!(rendered.contains("pattern period 31"), "{rendered}");
        assert!(!rendered.contains("trace: id"), "untraced by default");

        // The same detect with tracing on: identical verdict rendering
        // plus the trace-propagation summary line.
        let traced = cmd_client_detect(
            &addr,
            &csv,
            &PatternSpec::Lfsr { width: 5, seed: 1 },
            ClientDetectOptions {
                traced: true,
                ..ClientDetectOptions::default()
            },
            None,
        )
        .expect("traced detect");
        assert!(traced.contains("pattern period 31"), "{traced}");
        assert!(traced.contains("trace: id "), "{traced}");
        assert!(traced.starts_with(&rendered), "verdict rendering unchanged");

        // Sequential mode reports consumed cycles and the trail length.
        let sequential = cmd_client_detect(
            &addr,
            &csv,
            &PatternSpec::Lfsr { width: 5, seed: 1 },
            ClientDetectOptions::default(),
            Some(SequentialOptions::every(93)),
        )
        .expect("sequential detect");
        assert!(sequential.contains("cycles consumed"), "{sequential}");
        assert!(sequential.contains("sequential: "), "{sequential}");

        // Identify ranks the embedded pattern first. The decoys must be
        // genuinely different sequences, not other seeds of the same
        // LFSR: those are cyclic shifts of one m-sequence, and
        // rotational CPA is phase-blind by construction.
        let decoy = |salt: u64| -> Vec<bool> {
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
            (0..pattern.len())
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 1 == 1
                })
                .collect()
        };
        let candidates = vec![
            CandidatePattern::new("decoy-a", decoy(1)),
            CandidatePattern::new("embedded", pattern.clone()),
            CandidatePattern::new("decoy-b", decoy(2)),
        ];
        let identified = cmd_client_identify(
            &addr,
            &csv,
            &PatternSpec::Lfsr { width: 5, seed: 1 },
            ClientDetectOptions::default(),
            &candidates,
        )
        .expect("identify");
        assert!(identified.contains("3 candidates"), "{identified}");
        assert!(identified.contains("best: embedded"), "{identified}");

        // Metrics exposition and a single watch frame over the wire.
        let metrics = cmd_client_metrics(&addr).expect("metrics");
        assert!(
            metrics.contains("clockmark_serve_served_verdicts_total 4"),
            "{metrics}"
        );
        assert!(
            metrics.contains("clockmark_serve_uptime_seconds"),
            "{metrics}"
        );
        let frame = cmd_client_watch(&addr, 10, Some(1)).expect("watch frame");
        assert!(frame.contains("served:   4 verdicts"), "{frame}");
        assert!(frame.contains("cycles:   p50 "), "{frame}");
        assert!(frame.contains("req/s:"), "{frame}");
        assert!(frame.contains("latency:"), "{frame}");

        assert!(cmd_client_shutdown(&addr)
            .expect("shutdown")
            .contains("draining"));
        let status = handle.wait();
        assert!(status.draining);
    }

    #[test]
    fn watch_frame_renders_from_prometheus_text() {
        let status = clockmark_serve::ServerStatus {
            active_sessions: 1,
            max_sessions: 8,
            served: 40,
            rejected: 2,
            draining: false,
            uptime_secs: 123,
            total_sessions: 42,
            algo_naive: 5,
            algo_folded: 20,
            algo_fft: 15,
            registered: 7,
            readable: 1,
            in_flight: 2,
        };
        let metrics = "\
clockmark_serve_requests_window_rate{window=\"1s\"} 12\n\
clockmark_serve_requests_window_rate{window=\"10s\"} 9.75\n\
clockmark_serve_request_seconds_window{window=\"10s\",quantile=\"0.5\"} 0.0012\n\
clockmark_serve_request_seconds_window{window=\"10s\",quantile=\"0.95\"} 0.0034\n\
clockmark_serve_request_seconds_window{window=\"10s\",quantile=\"0.99\"} 0.0079\n\
clockmark_serve_detect_cycles_consumed_window{window=\"60s\",quantile=\"0.5\"} 8192\n\
clockmark_serve_detect_cycles_consumed_window{window=\"60s\",quantile=\"0.95\"} 24576\n\
clockmark_serve_detect_cycles_consumed_window{window=\"60s\",quantile=\"0.99\"} 65536\n\
clockmark_serve_errors_total 3\n";
        let frame = render_watch_frame("127.0.0.1:4780", &status, metrics);
        assert!(frame.contains("up 123s"), "{frame}");
        assert!(
            frame.contains("1/8 active, 42 total, 2 rejected"),
            "{frame}"
        );
        assert!(frame.contains("naive 5, folded 20, fft 15"), "{frame}");
        assert!(
            frame.contains("7 registered, 1 readable, 2 in-flight"),
            "{frame}"
        );
        assert!(frame.contains("1s 12.0  10s 9.8  60s -"), "{frame}");
        assert!(
            frame.contains("p50 1.20ms  p95 3.40ms  p99 7.90ms"),
            "{frame}"
        );
        assert!(
            frame.contains("3 request failures, 2 busy rejections"),
            "{frame}"
        );
        assert!(
            frame.contains("cycles:   p50 8192  p95 24.6k  p99 65.5k"),
            "{frame}"
        );
    }

    #[test]
    fn candidate_lists_parse_labels_and_bits() {
        let candidates = parse_candidate_list("a=10110,0111011,b=110").expect("valid");
        assert_eq!(candidates.len(), 3);
        assert_eq!(candidates[0].label, "a");
        assert_eq!(candidates[0].pattern, vec![true, false, true, true, false]);
        assert_eq!(candidates[1].label, "cand1");
        assert_eq!(candidates[2].label, "b");

        assert!(parse_candidate_list("a=10,b=").is_err(), "empty bits");
        assert!(parse_candidate_list("a=102").is_err(), "non-binary digit");
    }
}
