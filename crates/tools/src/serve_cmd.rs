//! The `serve` and `client …` subcommands: the detection service from
//! the command line.
//!
//! `cmd_serve` runs a server in the foreground until a wire `Shutdown`
//! request drains it; the `client` commands drive one request each and
//! render the reply in the same format the in-process `detect` command
//! uses, so scripts can diff the two outputs byte for byte.

use std::fmt::Write as _;

use clockmark_cpa::{CpaAlgo, DetectOptions, DetectionCriterion, TraceDetection};
use clockmark_serve::{Client, ServeLimits, Server};

use crate::commands::PatternSpec;
use crate::{tracefile, ToolError};

/// Settings of the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:4780` (port 0 picks a free one).
    pub addr: String,
    /// Resource limits to enforce.
    pub limits: ServeLimits,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4780".to_owned(),
            limits: ServeLimits::default(),
        }
    }
}

/// Detection settings shared by `client detect` and `client detect-corpus`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientDetectOptions {
    /// Use the lenient criterion instead of the paper default.
    pub lenient: bool,
    /// Pin a spectrum kernel instead of the server-side heuristic.
    pub algo: Option<CpaAlgo>,
}

impl ClientDetectOptions {
    fn detect_options(self) -> DetectOptions {
        let criterion = if self.lenient {
            DetectionCriterion::lenient()
        } else {
            DetectionCriterion::default()
        };
        let mut options = DetectOptions::default().with_criterion(criterion);
        if let Some(algo) = self.algo {
            options = options.with_algo(algo);
        }
        options
    }
}

/// `serve`: run a detection server in the foreground until drained.
///
/// The bound address is printed (and flushed) before blocking, so a
/// harness can spawn the process, read the first line, and connect.
///
/// # Errors
///
/// Returns bind failures.
pub fn cmd_serve(options: &ServeOptions) -> Result<String, ToolError> {
    let handle = Server::new()
        .with_limits(options.limits)
        .bind(options.addr.as_str())?;
    println!("listening on {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let status = handle.wait();
    Ok(format!(
        "drained: served {} detects, rejected {} connections\n",
        status.served, status.rejected
    ))
}

/// `client ping`: round-trip a liveness probe.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_ping(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    client.ping()?;
    Ok(format!("pong from {addr}\n"))
}

/// `client status`: fetch and render the server's load counters.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_status(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    let status = client.status()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sessions: {}/{} active{}",
        status.active_sessions,
        status.max_sessions,
        if status.draining { " (draining)" } else { "" }
    );
    let _ = writeln!(
        out,
        "served: {} detects, rejected: {} connections",
        status.served, status.rejected
    );
    Ok(out)
}

/// `client shutdown`: ask the server to drain and exit.
///
/// # Errors
///
/// Returns connection or protocol failures.
pub fn cmd_client_shutdown(addr: &str) -> Result<String, ToolError> {
    let mut client = connect(addr)?;
    client.shutdown()?;
    Ok(format!("{addr} acknowledged shutdown, draining\n"))
}

/// `client detect`: stream a CSV trace to the server and render its
/// verdict exactly like the in-process `detect` command renders one.
///
/// # Errors
///
/// Returns trace-file, connection, or detection failures.
pub fn cmd_client_detect(
    addr: &str,
    trace_text: &str,
    spec: &PatternSpec,
    options: ClientDetectOptions,
) -> Result<String, ToolError> {
    let trace = tracefile::read_trace(trace_text)?;
    let pattern = spec.pattern()?;
    let mut client = connect(addr)?;
    let detection = client.detect(&pattern, options.detect_options(), trace.as_watts())?;
    Ok(render_detection(&detection, pattern.len()))
}

/// `client detect-corpus`: detect against a trace stored in a corpus on
/// the server's filesystem.
///
/// # Errors
///
/// Returns connection or detection failures.
pub fn cmd_client_detect_corpus(
    addr: &str,
    corpus: &str,
    trace: &str,
    spec: &PatternSpec,
    options: ClientDetectOptions,
) -> Result<String, ToolError> {
    let pattern = spec.pattern()?;
    let mut client = connect(addr)?;
    let detection = client.detect_corpus(corpus, trace, &pattern, options.detect_options())?;
    Ok(render_detection(&detection, pattern.len()))
}

fn connect(addr: &str) -> Result<Client, ToolError> {
    Ok(Client::connect(addr)?)
}

fn render_detection(detection: &TraceDetection, period: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles, pattern period {}",
        detection.cycles, period
    );
    let _ = writeln!(out, "{}", detection.result);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_options_map_flags() {
        let options = ClientDetectOptions {
            lenient: true,
            algo: Some(CpaAlgo::Fft),
        };
        let mapped = options.detect_options();
        assert_eq!(mapped.criterion, DetectionCriterion::lenient());
        assert_eq!(mapped.algo, Some(CpaAlgo::Fft));

        let mapped = ClientDetectOptions::default().detect_options();
        assert_eq!(mapped.criterion, DetectionCriterion::default());
        assert_eq!(mapped.algo, None);
    }

    #[test]
    fn end_to_end_over_loopback() {
        let handle = Server::new().bind("127.0.0.1:0").expect("bind");
        let addr = handle.local_addr().to_string();

        assert!(cmd_client_ping(&addr).expect("ping").contains("pong"));
        // The status session itself occupies a slot while it is served.
        assert!(cmd_client_status(&addr)
            .expect("status")
            .contains("/8 active"));

        // A short watermarked trace in the CSV format `detect` reads.
        let pattern = PatternSpec::Lfsr { width: 5, seed: 1 }
            .pattern()
            .expect("pattern");
        let csv: String = (0..pattern.len() * 30)
            .map(|i| {
                let wm = if pattern[i % pattern.len()] {
                    1.0
                } else {
                    -1.0
                };
                format!("{}\n", wm + ((i * 37) % 101) as f64 * 0.002)
            })
            .collect();
        let rendered = cmd_client_detect(
            &addr,
            &csv,
            &PatternSpec::Lfsr { width: 5, seed: 1 },
            ClientDetectOptions::default(),
        )
        .expect("detect");
        assert!(rendered.contains("pattern period 31"), "{rendered}");

        assert!(cmd_client_shutdown(&addr)
            .expect("shutdown")
            .contains("draining"));
        let status = handle.wait();
        assert!(status.draining);
    }
}
