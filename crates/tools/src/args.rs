//! A minimal flag parser for the tool suite (no external dependency).

use crate::ToolError;

/// Parsed command-line arguments: positionals plus `--flag value` /
/// `--flag` pairs, consumed destructively so leftovers can be diagnosed.
///
/// ```
/// use clockmark_tools::args::Args;
///
/// let mut args = Args::new(vec![
///     "design.cmn".into(),
///     "--cycles".into(),
///     "500".into(),
///     "--verbose".into(),
/// ]);
/// assert_eq!(args.positional("file").unwrap(), "design.cmn");
/// assert_eq!(args.value_of("--cycles").unwrap(), Some("500".into()));
/// assert!(args.flag("--verbose"));
/// assert!(args.finish().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    tokens: Vec<Option<String>>,
}

impl Args {
    /// Wraps raw arguments (without the program / subcommand names).
    pub fn new(tokens: Vec<String>) -> Self {
        Args {
            tokens: tokens.into_iter().map(Some).collect(),
        }
    }

    /// Takes the next unconsumed positional (non-`--`) argument.
    ///
    /// A token immediately following a still-unconsumed `--flag` is assumed
    /// to be that flag's value and is skipped, so `--out x.cmn in.cmn`
    /// yields `in.cmn` regardless of consumption order. (Boolean flags
    /// should therefore be placed after positionals on the command line.)
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] naming `what` when none remains.
    pub fn positional(&mut self, what: &str) -> Result<String, ToolError> {
        for i in 0..self.tokens.len() {
            let Some(tok) = self.tokens[i].as_deref() else {
                continue;
            };
            if tok.starts_with("--") {
                continue;
            }
            let follows_flag = i > 0
                && self.tokens[i - 1]
                    .as_deref()
                    .is_some_and(|prev| prev.starts_with("--"));
            if follows_flag {
                continue;
            }
            return Ok(self.tokens[i].take().expect("just checked"));
        }
        Err(ToolError::Usage(format!("missing <{what}>")))
    }

    /// Takes `--name value` if present.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] when the flag is present without a
    /// value.
    pub fn value_of(&mut self, name: &str) -> Result<Option<String>, ToolError> {
        for i in 0..self.tokens.len() {
            if self.tokens[i].as_deref() == Some(name) {
                self.tokens[i] = None;
                let value = self
                    .tokens
                    .get_mut(i + 1)
                    .and_then(Option::take)
                    .ok_or_else(|| ToolError::Usage(format!("{name} needs a value")))?;
                if value.starts_with("--") {
                    return Err(ToolError::Usage(format!("{name} needs a value")));
                }
                return Ok(Some(value));
            }
        }
        Ok(None)
    }

    /// Takes `--name value`, requiring it.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] when absent or valueless.
    pub fn require(&mut self, name: &str) -> Result<String, ToolError> {
        self.value_of(name)?
            .ok_or_else(|| ToolError::Usage(format!("missing {name}")))
    }

    /// Takes a numeric `--name value` with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] on a malformed number.
    pub fn numeric<T: std::str::FromStr>(
        &mut self,
        name: &str,
        default: T,
    ) -> Result<T, ToolError> {
        match self.value_of(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ToolError::Usage(format!("{name}: cannot parse `{v}`"))),
        }
    }

    /// Takes a boolean `--name` flag.
    pub fn flag(&mut self, name: &str) -> bool {
        for slot in &mut self.tokens {
            if slot.as_deref() == Some(name) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Fails if any argument was not consumed.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Usage`] naming the leftover.
    pub fn finish(self) -> Result<(), ToolError> {
        match self.tokens.into_iter().flatten().next() {
            Some(tok) => Err(ToolError::Usage(format!("unexpected argument `{tok}`"))),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn positionals_and_flags_interleave() {
        let mut a = args(&["--out", "x.cmn", "in.cmn", "--force"]);
        assert_eq!(a.positional("input").expect("present"), "in.cmn");
        assert_eq!(a.require("--out").expect("present"), "x.cmn");
        assert!(a.flag("--force"));
        assert!(!a.flag("--force"), "flags are consumed");
        a.finish().expect("all consumed");
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        let mut a = args(&["--out"]);
        assert!(matches!(
            a.value_of("--out").unwrap_err(),
            ToolError::Usage(_)
        ));
        let mut a = args(&["--out", "--force"]);
        assert!(matches!(
            a.value_of("--out").unwrap_err(),
            ToolError::Usage(_)
        ));
    }

    #[test]
    fn numeric_parsing_with_default() {
        let mut a = args(&["--cycles", "123"]);
        assert_eq!(a.numeric("--cycles", 5usize).expect("parses"), 123);
        let mut a = args(&[]);
        assert_eq!(a.numeric("--cycles", 5usize).expect("default"), 5);
        let mut a = args(&["--cycles", "abc"]);
        assert!(a.numeric("--cycles", 5usize).is_err());
    }

    #[test]
    fn leftovers_are_rejected() {
        let a = args(&["stray"]);
        assert!(matches!(a.finish().unwrap_err(), ToolError::Usage(_)));
    }
}
