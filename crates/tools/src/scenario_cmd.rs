//! The adversarial-scenario subcommands: running an attack × defense ×
//! SNR matrix as a resumable campaign and rendering its
//! detection-rate-under-attack report.
//!
//! `campaign run <dir> --scenarios <file>` materialises the matrix from
//! a `scenarios.json` (write a starting point with `scenario template`)
//! and shards the cross-product through the standard campaign
//! checkpoint/resume machinery; `campaign resume` and `campaign status`
//! recognise a scenario directory by its `scenarios.json` and dispatch
//! here. `scenario report <dir>` renders the merged report as a matrix
//! table.

use crate::commands::PatternSpec;
use crate::fleet::CampaignRunOptions;
use crate::ToolError;
use clockmark::corpus::Corpus;
use clockmark::{CampaignLimits, ScenarioCampaign, ScenarioMatrix, ScenarioReport};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Whether `dir` holds a scenario campaign rather than a plain one.
pub fn is_scenario_dir(dir: &Path) -> bool {
    dir.join("scenarios.json").exists()
}

fn open(dir: &Path, options: CampaignRunOptions) -> Result<ScenarioCampaign, ToolError> {
    if options.no_mmap {
        std::env::set_var(clockmark::corpus::NO_MMAP_ENV, "1");
    }
    let campaign = ScenarioCampaign::open(dir)?;
    Ok(if options.threads > 0 {
        campaign.with_threads(options.threads)
    } else {
        campaign
    })
}

fn limits(options: CampaignRunOptions) -> CampaignLimits {
    CampaignLimits {
        max_jobs: options.max_jobs,
        ..CampaignLimits::none()
    }
}

fn render_run(campaign: &ScenarioCampaign, dir: &Path) -> Result<String, ToolError> {
    let status = campaign.status()?;
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}: {status}", dir.display());
    if status.is_complete() {
        out.push_str(&render_report(&campaign.report()?));
        let _ = writeln!(out, "report: {}", dir.join("report.json").display());
    } else {
        let _ = writeln!(out, "resume with: clockmark-cli campaign resume <dir>");
    }
    Ok(out)
}

/// `campaign run --scenarios`: creates a scenario campaign at `dir` from
/// the matrix in `scenarios_path` and runs it.
///
/// # Errors
///
/// Returns matrix decode/validation failures and cell campaign errors;
/// the directory must not already contain a scenario campaign (use
/// `campaign resume` to continue one).
pub fn cmd_scenario_run(
    dir: &Path,
    scenarios_path: &Path,
    options: CampaignRunOptions,
) -> Result<String, ToolError> {
    let text = fs::read_to_string(scenarios_path).map_err(|source| ToolError::Io {
        path: scenarios_path.display().to_string(),
        source,
    })?;
    let matrix = ScenarioMatrix::decode(text.trim())?;
    if options.no_mmap {
        std::env::set_var(clockmark::corpus::NO_MMAP_ENV, "1");
    }
    let mut campaign = ScenarioCampaign::create(dir, matrix)?;
    if options.threads > 0 {
        campaign = campaign.with_threads(options.threads);
    }
    campaign.run(&limits(options))?;
    render_run(&campaign, dir)
}

/// `campaign resume` on a scenario directory: continues pending cells.
///
/// # Errors
///
/// Returns matrix and cell campaign failures.
pub fn cmd_scenario_resume(dir: &Path, options: CampaignRunOptions) -> Result<String, ToolError> {
    let campaign = open(dir, options)?;
    campaign.run(&limits(options))?;
    render_run(&campaign, dir)
}

/// `campaign status` on a scenario directory: progress without running
/// any jobs.
///
/// # Errors
///
/// Returns matrix and cell campaign failures.
pub fn cmd_scenario_status(dir: &Path) -> Result<String, ToolError> {
    let campaign = ScenarioCampaign::open(dir)?;
    let status = campaign.status()?;
    let matrix = campaign.matrix();
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}: {status}", dir.display());
    let _ = writeln!(
        out,
        "corpus: {}, pattern period {}, {} trace(s) per cell, {} spectrum kernel",
        matrix.corpus.display(),
        matrix.pattern.len(),
        matrix.traces.len(),
        matrix.algo
    );
    let _ = writeln!(
        out,
        "matrix: {} attack(s) x {} defense(s) x {} snr(s) = {} cell(s)",
        matrix.attacks.len(),
        matrix.defenses.len(),
        matrix.snrs.len(),
        status.cells_total
    );
    if status.is_complete() {
        out.push_str(&render_report(&campaign.report()?));
    }
    Ok(out)
}

/// `scenario report`: renders the merged detection-rate report of a
/// completed (or still-running) scenario campaign.
///
/// # Errors
///
/// Returns matrix and cell campaign failures; an incomplete campaign
/// renders its status instead of failing.
pub fn cmd_scenario_report(dir: &Path) -> Result<String, ToolError> {
    let campaign = ScenarioCampaign::open(dir)?;
    let status = campaign.status()?;
    if !status.is_complete() {
        return Ok(format!(
            "scenario {}: {status}\nreport available once all cells complete\n",
            dir.display()
        ));
    }
    Ok(render_report(&campaign.report()?))
}

/// Renders the report as one attack × defense table per SNR.
pub fn render_report(report: &ScenarioReport) -> String {
    let mut attacks: Vec<&str> = Vec::new();
    let mut defenses: Vec<&str> = Vec::new();
    let mut snrs: Vec<f64> = Vec::new();
    for cell in &report.cells {
        if !attacks.contains(&cell.attack.as_str()) {
            attacks.push(&cell.attack);
        }
        if !defenses.contains(&cell.defense.as_str()) {
            defenses.push(&cell.defense);
        }
        if !snrs.contains(&cell.snr) {
            snrs.push(cell.snr);
        }
    }
    let attack_w = attacks
        .iter()
        .map(|a| a.len())
        .max()
        .unwrap_or(0)
        .max("attack".len());

    let mut out = String::new();
    for &snr in &snrs {
        let _ = writeln!(out, "detection rate under attack (snr {snr}):");
        let _ = write!(out, "  {:<attack_w$}", "attack");
        for defense in &defenses {
            let _ = write!(out, "  {defense:>18}");
        }
        out.push('\n');
        for attack in &attacks {
            let _ = write!(out, "  {attack:<attack_w$}");
            for defense in &defenses {
                match report.cell(attack, defense, snr) {
                    Some(cell) => {
                        let _ = write!(
                            out,
                            "  {:>12} {:>5.2}",
                            format!("{}/{}", cell.detected, cell.total),
                            cell.rate()
                        );
                    }
                    None => {
                        let _ = write!(out, "  {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Options for `scenario template`.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTemplateOptions {
    /// Trace subset; `None` targets every trace in the corpus.
    pub traces: Option<Vec<String>>,
    /// SNR axis override; `None` keeps the nominal `[1.0]`.
    pub snrs: Option<Vec<f64>>,
    /// Root seed of the matrix.
    pub seed: u64,
    /// Use the lenient detection criterion.
    pub lenient: bool,
}

/// `scenario template`: writes a complete `scenarios.json` over a corpus
/// — the default attack and defense axes, ready to edit and run.
///
/// Returns the serialized matrix text; the caller writes it to disk.
///
/// # Errors
///
/// Returns pattern-spec, corpus-manifest and matrix-validation failures.
pub fn cmd_scenario_template(
    corpus_dir: &Path,
    spec: &PatternSpec,
    options: ScenarioTemplateOptions,
) -> Result<String, ToolError> {
    let pattern = spec.pattern()?;
    let traces = match options.traces {
        Some(list) => list,
        None => {
            let corpus = Corpus::open(corpus_dir)?;
            corpus
                .entries()
                .iter()
                .map(|entry| entry.name.clone())
                .collect()
        }
    };
    let mut matrix = ScenarioMatrix::new(corpus_dir, pattern, traces);
    if let Some(snrs) = options.snrs {
        matrix.snrs = snrs;
    }
    matrix.seed = options.seed;
    if options.lenient {
        matrix.criterion = clockmark_cpa::DetectionCriterion::lenient();
    }
    matrix.validate()?;
    Ok(format!("{}\n", matrix.encode()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark::scenario::ScenarioCellReport;
    use clockmark::CpaAlgo;

    #[test]
    fn report_renders_one_table_per_snr() {
        let report = ScenarioReport {
            algo: CpaAlgo::Folded,
            cells: vec![
                ScenarioCellReport {
                    cell: "c000_none_none".into(),
                    attack: "none".into(),
                    defense: "none".into(),
                    snr: 1.0,
                    total: 4,
                    detected: 4,
                },
                ScenarioCellReport {
                    cell: "c001_jamming_none".into(),
                    attack: "jamming".into(),
                    defense: "none".into(),
                    snr: 1.0,
                    total: 4,
                    detected: 1,
                },
                ScenarioCellReport {
                    cell: "c002_none_none".into(),
                    attack: "none".into(),
                    defense: "none".into(),
                    snr: 0.5,
                    total: 4,
                    detected: 3,
                },
            ],
        };
        let text = render_report(&report);
        assert!(text.contains("snr 1"), "{text}");
        assert!(text.contains("snr 0.5"), "{text}");
        assert!(text.contains("4/4"), "{text}");
        assert!(text.contains("1/4  0.25"), "{text}");
        // The snr-0.5 table has no jamming row data beyond its one cell.
        assert!(text.contains("3/4"), "{text}");
    }
}
