use std::error::Error;
use std::fmt;

/// Errors produced by the command-line tools.
#[derive(Debug)]
#[non_exhaustive]
pub enum ToolError {
    /// Command-line usage error (unknown flag, missing value…).
    Usage(String),
    /// File I/O failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A `.cmn` file failed to parse.
    Hdl(clockmark_hdl::HdlError),
    /// A trace file was malformed.
    Trace {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A library operation failed.
    Clockmark(clockmark::ClockmarkError),
    /// A trace-corpus store operation failed.
    Corpus(clockmark::corpus::CorpusError),
    /// A detection campaign failed.
    Campaign(clockmark::CampaignError),
    /// A fleet run failed.
    Fleet(clockmark_fleet::FleetError),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Usage(msg) => write!(f, "usage error: {msg}"),
            ToolError::Io { path, source } => write!(f, "{path}: {source}"),
            ToolError::Hdl(e) => write!(f, "netlist: {e}"),
            ToolError::Trace { line, message } => {
                write!(f, "trace file line {line}: {message}")
            }
            ToolError::Clockmark(e) => write!(f, "{e}"),
            ToolError::Corpus(e) => write!(f, "corpus: {e}"),
            ToolError::Campaign(e) => write!(f, "campaign: {e}"),
            ToolError::Fleet(e) => write!(f, "fleet: {e}"),
        }
    }
}

impl Error for ToolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToolError::Io { source, .. } => Some(source),
            ToolError::Hdl(e) => Some(e),
            ToolError::Clockmark(e) => Some(e),
            ToolError::Corpus(e) => Some(e),
            ToolError::Campaign(e) => Some(e),
            ToolError::Fleet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<clockmark_hdl::HdlError> for ToolError {
    fn from(e: clockmark_hdl::HdlError) -> Self {
        ToolError::Hdl(e)
    }
}

impl From<clockmark::ClockmarkError> for ToolError {
    fn from(e: clockmark::ClockmarkError) -> Self {
        ToolError::Clockmark(e)
    }
}

impl From<clockmark_cpa::CpaError> for ToolError {
    fn from(e: clockmark_cpa::CpaError) -> Self {
        ToolError::Clockmark(clockmark::ClockmarkError::Cpa(e))
    }
}

impl From<clockmark_sim::SimError> for ToolError {
    fn from(e: clockmark_sim::SimError) -> Self {
        ToolError::Clockmark(clockmark::ClockmarkError::Sim(e))
    }
}

impl From<clockmark_netlist::NetlistError> for ToolError {
    fn from(e: clockmark_netlist::NetlistError) -> Self {
        ToolError::Clockmark(clockmark::ClockmarkError::Netlist(e))
    }
}

impl From<clockmark::corpus::CorpusError> for ToolError {
    fn from(e: clockmark::corpus::CorpusError) -> Self {
        ToolError::Corpus(e)
    }
}

impl From<clockmark::CampaignError> for ToolError {
    fn from(e: clockmark::CampaignError) -> Self {
        ToolError::Campaign(e)
    }
}

impl From<clockmark_fleet::FleetError> for ToolError {
    fn from(e: clockmark_fleet::FleetError) -> Self {
        ToolError::Fleet(e)
    }
}

/// Server/client failures route through the unified `ClockmarkError`
/// (which has the `Serve` variant), so the CLI propagates them with `?`.
impl From<clockmark_serve::ServeError> for ToolError {
    fn from(e: clockmark_serve::ServeError) -> Self {
        ToolError::Clockmark(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: ToolError = clockmark_cpa::CpaError::ConstantPattern.into();
        assert!(err.to_string().contains("constant"));
        let err = ToolError::Usage("missing --cycles".into());
        assert!(err.to_string().contains("--cycles"));
    }
}
