//! Corpus and campaign subcommands: building trace corpora on disk and
//! running resumable sharded detection campaigns over them.
//!
//! These are the filesystem-facing counterparts to [`crate::commands`]:
//! each function owns one `clockmark-cli corpus …` / `campaign …`
//! subcommand, talks to a [`Corpus`] or [`Campaign`] directory, and
//! returns the report
//! text to print.

use crate::commands::PatternSpec;
use crate::{tracefile, ToolError};
use clockmark::corpus::format::source;
use clockmark::corpus::{decode_trace, encode_trace, Corpus, CorpusError, TraceHeader};
use clockmark::{
    Campaign, CampaignLimits, CampaignSpec, ChipModel, ClockModulationWatermark, Experiment,
    JobOutcome, WgcConfig,
};
use clockmark_cpa::{CpaAlgo, DetectionCriterion};
use std::fmt::Write as _;
use std::path::Path;

/// Options for `corpus build`: the (chip × seed) measurement grid.
#[derive(Debug, Clone)]
pub struct CorpusBuildOptions {
    /// Chip models to measure.
    pub chips: Vec<ChipModel>,
    /// Acquisition seeds; each yields one trace per chip.
    pub seeds: Vec<u64>,
    /// Cycles per trace.
    pub cycles: usize,
    /// Use the full paper noise model instead of the quick one.
    pub full_noise: bool,
    /// WGC LFSR width.
    pub width: u32,
    /// WGC LFSR seed.
    pub wgc_seed: u32,
    /// Also record a watermark-disabled twin of every trace.
    pub unmarked: bool,
}

impl Default for CorpusBuildOptions {
    fn default() -> Self {
        CorpusBuildOptions {
            chips: vec![ChipModel::ChipI],
            seeds: vec![1],
            cycles: 20_000,
            full_noise: false,
            width: 8,
            wgc_seed: 1,
            unmarked: false,
        }
    }
}

/// Parses a `--chips` list such as `i`, `ii` or `i,ii`.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] for unknown chip names.
pub fn parse_chip_list(text: &str) -> Result<Vec<ChipModel>, ToolError> {
    text.split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| match part {
            "i" => Ok(ChipModel::ChipI),
            "ii" => Ok(ChipModel::ChipII),
            other => Err(ToolError::Usage(format!(
                "--chips must list `i` or `ii`, not `{other}`"
            ))),
        })
        .collect()
}

/// Parses a `--seeds` list: `3`, `1,2,5`, or the inclusive range `1..8`.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] for malformed numbers or empty/backward
/// ranges.
pub fn parse_seed_list(text: &str) -> Result<Vec<u64>, ToolError> {
    let bad = |part: &str| ToolError::Usage(format!("--seeds: cannot parse `{part}`"));
    let mut seeds = Vec::new();
    for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if let Some((lo, hi)) = part.split_once("..") {
            let lo: u64 = lo.trim().parse().map_err(|_| bad(part))?;
            let hi: u64 = hi.trim().parse().map_err(|_| bad(part))?;
            if hi < lo {
                return Err(ToolError::Usage(format!(
                    "--seeds: range `{part}` is empty (it is inclusive, low..high)"
                )));
            }
            seeds.extend(lo..=hi);
        } else {
            seeds.push(part.parse().map_err(|_| bad(part))?);
        }
    }
    if seeds.is_empty() {
        return Err(ToolError::Usage("--seeds lists no seeds".to_owned()));
    }
    Ok(seeds)
}

fn chip_tag(chip: ChipModel) -> (&'static str, u32) {
    match chip {
        ChipModel::ChipII => ("chip_ii", source::CHIP_II),
        _ => ("chip_i", source::CHIP_I),
    }
}

/// `corpus build`: measures the (chip × seed) grid through the full
/// pipeline and records every trace into the corpus at `dir`.
///
/// # Errors
///
/// Returns pipeline and store failures; adding a trace name that already
/// exists in the corpus is an error (build into a fresh directory or pick
/// disjoint seeds).
pub fn cmd_corpus_build(dir: &Path, options: &CorpusBuildOptions) -> Result<String, ToolError> {
    let _span = clockmark_obs::span("cli.corpus_build").field("cycles", options.cycles as u64);
    let mut corpus = Corpus::open_or_create(dir)?;
    let arch = ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr {
            width: options.width,
            seed: options.wgc_seed,
        },
        ..ClockModulationWatermark::paper()
    };

    let mut out = String::new();
    for &chip in &options.chips {
        for &seed in &options.seeds {
            let marks: &[bool] = if options.unmarked {
                &[true, false]
            } else {
                &[true]
            };
            for &enabled in marks {
                let mut experiment = if options.full_noise {
                    let mut e = match chip {
                        ChipModel::ChipII => Experiment::paper_chip_ii(),
                        _ => Experiment::paper_chip_i(),
                    };
                    e.cycles = options.cycles;
                    e.seed = seed;
                    e
                } else {
                    Experiment::quick(options.cycles, seed)
                };
                experiment.chip = chip;
                experiment.watermark_enabled = enabled;

                let run = experiment.run_measured(&arch)?;
                let (tag, src) = chip_tag(chip);
                let name = if enabled {
                    format!("{tag}_s{seed:04}")
                } else {
                    format!("{tag}_s{seed:04}_off")
                };
                let header = TraceHeader {
                    cycles: run.measured.len() as u64,
                    f_clk_hz: experiment.f_clk.hertz(),
                    seed,
                    source: src,
                };
                let entry = corpus.add(&name, header, run.measured.as_watts())?;
                let _ = writeln!(
                    out,
                    "added {name}: {} cycles, {} bytes, crc32 {:08x}",
                    entry.cycles, entry.bytes, entry.crc32
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "corpus {}: {} trace(s); detect with --lfsr {} --seed {}",
        dir.display(),
        corpus.len(),
        options.width,
        options.wgc_seed
    );
    Ok(out)
}

/// `corpus ls`: lists the manifest of the corpus at `dir`.
///
/// # Errors
///
/// Returns store failures (missing or malformed manifest).
pub fn cmd_corpus_ls(dir: &Path) -> Result<String, ToolError> {
    let corpus = Corpus::open(dir)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>8}  {:>12} {:>6} source",
        "name", "cycles", "bytes", "crc32", "f_clk", "seed"
    );
    for entry in corpus.entries() {
        let src = match entry.source {
            source::BARE => "bare",
            source::CHIP_I => "chip-i",
            source::CHIP_II => "chip-ii",
            _ => "unknown",
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:08x}  {:>10.3e}Hz {:>6} {src}",
            entry.name, entry.cycles, entry.bytes, entry.crc32, entry.f_clk_hz, entry.seed
        );
    }
    let _ = writeln!(out, "{} trace(s)", corpus.len());
    Ok(out)
}

/// `corpus verify`: re-reads every trace and checks lengths and CRCs
/// against the manifest.
///
/// # Errors
///
/// Returns store failures, or [`ToolError::Corpus`] naming the number of
/// failing traces so the process exits non-zero when any check fails.
pub fn cmd_corpus_verify(dir: &Path) -> Result<String, ToolError> {
    let corpus = Corpus::open(dir)?;
    let outcomes = corpus.verify()?;
    let mut out = String::new();
    let mut failed = 0usize;
    for outcome in &outcomes {
        let status = if outcome.ok { "ok" } else { "FAIL" };
        let _ = writeln!(out, "{status:<4} {:<24} {}", outcome.name, outcome.detail);
        failed += usize::from(!outcome.ok);
    }
    let _ = writeln!(
        out,
        "verified {} trace(s), {failed} failure(s)",
        outcomes.len()
    );
    if failed > 0 {
        print!("{out}");
        return Err(CorpusError::format(format!("{failed} trace(s) failed verification")).into());
    }
    Ok(out)
}

/// `corpus convert`: converts one trace between the CSV text format and
/// the `.cmt` binary format, detecting the input's format from its magic.
///
/// Returns the converted file bytes plus a one-line report.
///
/// # Errors
///
/// Returns format errors from either codec, including non-finite-value
/// rejection on the binary side.
pub fn cmd_corpus_convert(
    input: &[u8],
    header: TraceHeader,
) -> Result<(Vec<u8>, String), ToolError> {
    if input.starts_with(clockmark::corpus::format::MAGIC) {
        let (header, watts) = decode_trace(input)?;
        let trace = clockmark_power::PowerTrace::from_watts(watts);
        let mut csv = String::with_capacity(trace.len() * 16 + 96);
        let _ = writeln!(
            csv,
            "# converted from .cmt: f_clk {:.6e} Hz, seed {}, source {}",
            header.f_clk_hz, header.seed, header.source
        );
        csv.push_str(&tracefile::write_trace(&trace));
        let report = format!("binary → csv: {} cycles", trace.len());
        Ok((csv.into_bytes(), report))
    } else {
        let text = std::str::from_utf8(input).map_err(|_| ToolError::Trace {
            line: 0,
            message: "input is neither a .cmt file nor UTF-8 CSV text".to_owned(),
        })?;
        let trace = tracefile::read_trace(text)?;
        let header = TraceHeader {
            cycles: trace.len() as u64,
            ..header
        };
        let bytes = encode_trace(header, trace.as_watts())?;
        let report = format!(
            "csv → binary: {} cycles, {} bytes",
            trace.len(),
            bytes.len()
        );
        Ok((bytes, report))
    }
}

pub(crate) fn outcome_line(outcome: &JobOutcome) -> String {
    let r = &outcome.result;
    format!(
        "job {:>4}  {:<24} {}  rot {:>5}  rho {:+.6}  ratio {:>6.2}  z {:>6.2}",
        outcome.index,
        outcome.trace,
        if r.detected { "DETECTED" } else { "absent  " },
        r.peak_rotation,
        r.peak_rho,
        r.ratio,
        r.zscore
    )
}

fn render_run(
    campaign: &Campaign,
    status: &clockmark::CampaignStatus,
) -> Result<String, ToolError> {
    let mut out = String::new();
    let _ = writeln!(out, "campaign {}: {status}", campaign.dir().display());
    if status.is_complete() {
        let report = campaign.report()?;
        for outcome in &report.outcomes {
            out.push_str(&outcome_line(outcome));
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "report: {} ({} of {} detected)",
            campaign.dir().join("report.json").display(),
            report.detected(),
            report.outcomes.len()
        );
    } else {
        let _ = writeln!(out, "resume with: clockmark-cli campaign resume <dir>");
    }
    Ok(out)
}

/// Options for `campaign run` shared with `resume`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignRunOptions {
    /// Worker thread override (0 = auto).
    pub threads: usize,
    /// Stop after at most this many jobs this invocation.
    pub max_jobs: Option<usize>,
    /// Force buffered trace reads instead of memory-mapping (sets
    /// `CLOCKMARK_NO_MMAP` for this process; verdicts are bit-identical
    /// either way).
    pub no_mmap: bool,
}

impl CampaignRunOptions {
    fn limits(self) -> CampaignLimits {
        CampaignLimits {
            max_jobs: self.max_jobs,
            ..CampaignLimits::none()
        }
    }

    fn apply(self, campaign: Campaign) -> Campaign {
        if self.no_mmap {
            std::env::set_var(clockmark::corpus::NO_MMAP_ENV, "1");
        }
        if self.threads > 0 {
            campaign.with_threads(self.threads)
        } else {
            campaign
        }
    }
}

/// Spec-shaping options for `campaign run` (everything persisted into
/// `campaign.json`, as opposed to the per-invocation [`CampaignRunOptions`]).
#[derive(Debug, Clone, Default)]
pub struct CampaignCreateOptions {
    /// Trace subset; `None` targets every trace in the corpus.
    pub traces: Option<Vec<String>>,
    /// Use the lenient detection criterion.
    pub lenient: bool,
    /// Checkpoint interval override in cycles.
    pub checkpoint_cycles: Option<u64>,
    /// Read-chunk size override in cycles.
    pub chunk_cycles: Option<usize>,
    /// Sequential early-termination schedule; `None` keeps classic
    /// fixed-budget jobs. Persisted into `campaign.json`, so a resume
    /// replays the same schedule without re-passing the flags.
    pub sequential: Option<clockmark_cpa::SequentialOptions>,
    /// Spectrum kernel override; `None` resolves from `CLOCKMARK_CPA_ALGO`
    /// or the work heuristic and is then pinned in the spec.
    pub algo: Option<CpaAlgo>,
}

impl CampaignCreateOptions {
    /// Shapes a [`CampaignSpec`] over `corpus_dir` from these options:
    /// the shared front half of `campaign run` and `fleet run`.
    ///
    /// # Errors
    ///
    /// Returns pattern-spec and corpus-manifest failures.
    pub fn build_spec(
        self,
        corpus_dir: &Path,
        spec: &PatternSpec,
    ) -> Result<CampaignSpec, ToolError> {
        let pattern = spec.pattern()?;
        let traces = match self.traces {
            Some(list) => list,
            None => {
                let corpus = Corpus::open(corpus_dir)?;
                corpus
                    .entries()
                    .iter()
                    .map(|entry| entry.name.clone())
                    .collect()
            }
        };
        let mut campaign_spec = CampaignSpec::new(corpus_dir, pattern, traces);
        if self.lenient {
            campaign_spec.criterion = DetectionCriterion::lenient();
        }
        if let Some(cycles) = self.checkpoint_cycles {
            campaign_spec.checkpoint_cycles = cycles;
        }
        if let Some(cycles) = self.chunk_cycles {
            campaign_spec.chunk_cycles = cycles;
        }
        if let Some(algo) = self.algo {
            campaign_spec.algo = algo;
        }
        campaign_spec.sequential = self.sequential;
        Ok(campaign_spec)
    }
}

/// `campaign run`: creates a campaign directory over a corpus and runs it.
///
/// # Errors
///
/// Returns spec validation, store and job failures; the directory must
/// not already contain a campaign (use `resume` to continue one).
pub fn cmd_campaign_run(
    dir: &Path,
    corpus_dir: &Path,
    spec: &PatternSpec,
    create: CampaignCreateOptions,
    options: CampaignRunOptions,
) -> Result<String, ToolError> {
    let campaign_spec = create.build_spec(corpus_dir, spec)?;
    let campaign = options.apply(Campaign::create(dir, campaign_spec)?);
    let status = campaign.run(&options.limits())?;
    render_run(&campaign, &status)
}

/// `campaign resume`: continues a previously created campaign, reusing
/// its checkpoints. A scenario campaign directory (it holds a
/// `scenarios.json`) resumes its pending cells instead.
///
/// # Errors
///
/// Returns store and job failures.
pub fn cmd_campaign_resume(dir: &Path, options: CampaignRunOptions) -> Result<String, ToolError> {
    if crate::scenario_cmd::is_scenario_dir(dir) {
        return crate::scenario_cmd::cmd_scenario_resume(dir, options);
    }
    let campaign = options.apply(Campaign::open(dir)?);
    let status = campaign.run(&options.limits())?;
    render_run(&campaign, &status)
}

/// `campaign status`: reports progress without running any jobs. A
/// scenario campaign directory reports per-matrix progress instead.
///
/// # Errors
///
/// Returns store failures (missing or malformed campaign directory).
pub fn cmd_campaign_status(dir: &Path) -> Result<String, ToolError> {
    if crate::scenario_cmd::is_scenario_dir(dir) {
        return crate::scenario_cmd::cmd_scenario_status(dir);
    }
    let campaign = Campaign::open(dir)?;
    let status = campaign.status()?;
    let mut out = String::new();
    let _ = writeln!(out, "campaign {}: {status}", campaign.dir().display());
    let _ = writeln!(
        out,
        "corpus: {}, pattern period {}, {} trace(s), {} spectrum kernel",
        campaign.spec().corpus.display(),
        campaign.spec().pattern.len(),
        campaign.spec().traces.len(),
        campaign.spec().algo
    );
    if let Some(progress) = campaign.live_progress() {
        if !status.is_complete() {
            let _ = writeln!(
                out,
                "live: {}/{} jobs, {:.0} cycles/s, {:.1} jobs/s, ETA {:.0}s (published {:.1}s into run)",
                progress.done,
                progress.total,
                progress.cycles_per_sec,
                progress.jobs_per_sec,
                progress.eta_seconds,
                progress.elapsed_ms as f64 / 1e3,
            );
        }
    }
    if status.is_complete() {
        let report = campaign.report()?;
        let _ = writeln!(
            out,
            "{} of {} detected",
            report.detected(),
            report.outcomes.len()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static NEXT: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "clockmark_fleet_{tag}_{}_{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("mkdir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_build() -> CorpusBuildOptions {
        CorpusBuildOptions {
            cycles: 6_000,
            width: 6,
            unmarked: true,
            ..CorpusBuildOptions::default()
        }
    }

    #[test]
    fn build_ls_verify_round_trip() {
        let tmp = TempDir::new("build");
        let dir = tmp.0.join("corpus");
        let report = cmd_corpus_build(&dir, &small_build()).expect("builds");
        assert!(report.contains("added chip_i_s0001:"), "{report}");
        assert!(report.contains("added chip_i_s0001_off:"), "{report}");
        assert!(report.contains("2 trace(s)"), "{report}");

        let listing = cmd_corpus_ls(&dir).expect("lists");
        assert!(listing.contains("chip_i_s0001"), "{listing}");
        assert!(listing.contains("chip-i"), "{listing}");

        let verify = cmd_corpus_verify(&dir).expect("verifies");
        assert!(verify.contains("0 failure(s)"), "{verify}");
    }

    #[test]
    fn verify_catches_a_flipped_byte() {
        let tmp = TempDir::new("verify");
        let dir = tmp.0.join("corpus");
        cmd_corpus_build(
            &dir,
            &CorpusBuildOptions {
                cycles: 4_000,
                width: 6,
                ..CorpusBuildOptions::default()
            },
        )
        .expect("builds");

        let file = dir.join("traces").join("chip_i_s0001.cmt");
        let mut bytes = std::fs::read(&file).expect("readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&file, bytes).expect("writable");

        let err = cmd_corpus_verify(&dir).unwrap_err();
        assert!(err.to_string().contains("failed verification"), "{err}");
    }

    #[test]
    fn convert_round_trips_between_csv_and_binary() {
        let csv = "# demo\n1.5e-3\n2.25e-3\n0.0\n";
        let (bytes, report) =
            cmd_corpus_convert(csv.as_bytes(), TraceHeader::bare(0)).expect("to binary");
        assert!(report.contains("csv → binary: 3 cycles"), "{report}");

        let (back, report) = cmd_corpus_convert(&bytes, TraceHeader::bare(0)).expect("to csv");
        assert!(report.contains("binary → csv: 3 cycles"), "{report}");
        let text = String::from_utf8(back).expect("utf-8");
        let trace = tracefile::read_trace(&text).expect("parses");
        assert_eq!(trace.as_watts(), &[1.5e-3, 2.25e-3, 0.0]);
    }

    #[test]
    fn campaign_run_status_resume_flow() {
        let tmp = TempDir::new("campaign");
        let corpus_dir = tmp.0.join("corpus");
        cmd_corpus_build(&corpus_dir, &small_build()).expect("builds");

        let dir = tmp.0.join("campaign");
        let spec = PatternSpec::Lfsr { width: 6, seed: 1 };
        // First pass runs only one job, so the campaign is left pending…
        let report = cmd_campaign_run(
            &dir,
            &corpus_dir,
            &spec,
            CampaignCreateOptions {
                checkpoint_cycles: Some(1_000),
                chunk_cycles: Some(512),
                ..CampaignCreateOptions::default()
            },
            CampaignRunOptions {
                threads: 1,
                max_jobs: Some(1),
                ..CampaignRunOptions::default()
            },
        )
        .expect("runs");
        assert!(report.contains("1/2 jobs done"), "{report}");
        assert!(report.contains("campaign resume"), "{report}");

        let status = cmd_campaign_status(&dir).expect("status");
        assert!(status.contains("1/2 jobs done"), "{status}");

        // …and resume finishes it.
        let report = cmd_campaign_resume(&dir, CampaignRunOptions::default()).expect("resumes");
        assert!(report.contains("2/2 jobs done"), "{report}");
        assert!(report.contains("report:"), "{report}");
        assert!(report.contains("chip_i_s0001 "), "{report}");
        assert!(dir.join("report.json").exists());

        // `run` refuses to clobber an existing campaign.
        let err = cmd_campaign_run(
            &dir,
            &corpus_dir,
            &spec,
            CampaignCreateOptions::default(),
            CampaignRunOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("already"), "{err}");
    }

    #[test]
    fn seed_and_chip_lists_parse() {
        assert_eq!(parse_seed_list("3").expect("ok"), vec![3]);
        assert_eq!(parse_seed_list("1,2,5").expect("ok"), vec![1, 2, 5]);
        assert_eq!(parse_seed_list("1..4,9").expect("ok"), vec![1, 2, 3, 4, 9]);
        assert!(parse_seed_list("4..1").is_err());
        assert!(parse_seed_list("x").is_err());
        assert!(parse_seed_list("").is_err());

        assert_eq!(
            parse_chip_list("i,ii").expect("ok"),
            vec![ChipModel::ChipI, ChipModel::ChipII]
        );
        assert!(parse_chip_list("iii").is_err());
    }
}
