//! Shared flag parsing for options that appear on more than one
//! subcommand.
//!
//! `detect`, `campaign run`, `fleet run` and the `client detect` family
//! all accept the expected-sequence flags (`--lfsr W [--seed S] |
//! --bits 1011…`), and `client detect --sequential` shares the whole
//! `--seq-*` tuning group with `campaign run --sequential`. Parsing them
//! in each dispatcher arm drifted once already (the `--seq-*` group was
//! copied between the client and campaign arms); this module is the one
//! place those flag groups are interpreted.

use crate::args::Args;
use crate::commands::PatternSpec;
use crate::ToolError;
use clockmark_cpa::SequentialOptions;

/// Parses the shared `--lfsr W [--seed S] | --bits 1011…`
/// expected-sequence flags of `detect`, `campaign run`, `fleet run` and
/// the `client detect` family.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] when neither form is present or a value
/// fails to parse; `command` names the subcommand in the message.
pub fn pattern_spec(args: &mut Args, command: &str) -> Result<PatternSpec, ToolError> {
    if let Some(width) = args.value_of("--lfsr")? {
        let width: u32 = width
            .parse()
            .map_err(|_| ToolError::Usage("--lfsr needs a width".to_owned()))?;
        let seed = args.numeric("--seed", 1u32)?;
        Ok(PatternSpec::Lfsr { width, seed })
    } else if let Some(bits) = args.value_of("--bits")? {
        let parsed: Result<Vec<bool>, _> = bits
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(ToolError::Usage(format!(
                    "--bits must be 0s and 1s, found {other:?}"
                ))),
            })
            .collect();
        Ok(PatternSpec::Bits(parsed?))
    } else {
        Err(ToolError::Usage(format!(
            "{command} needs --lfsr or --bits"
        )))
    }
}

/// Parses the `--sequential [--seq-base N] [--seq-growth F]
/// [--seq-confidence P] [--seq-min-cycles N] [--seq-max-cycles N]` flags
/// shared by `client detect` and `campaign run`. Without `--sequential`
/// the tuning flags are left unconsumed, so `finish()` rejects them.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] for unparsable tuning values.
pub fn sequential_options(args: &mut Args) -> Result<Option<SequentialOptions>, ToolError> {
    if !args.flag("--sequential") {
        return Ok(None);
    }
    let defaults = SequentialOptions::default();
    Ok(Some(SequentialOptions {
        base_cycles: args.numeric("--seq-base", defaults.base_cycles)?,
        growth: args.numeric("--seq-growth", defaults.growth)?,
        min_cycles: args.numeric("--seq-min-cycles", defaults.min_cycles)?,
        confidence: args
            .value_of("--seq-confidence")?
            .map(|v| {
                v.parse()
                    .map_err(|_| ToolError::Usage(format!("--seq-confidence: cannot parse `{v}`")))
            })
            .transpose()?,
        max_cycles: args
            .value_of("--seq-max-cycles")?
            .map(|v| {
                v.parse()
                    .map_err(|_| ToolError::Usage(format!("--seq-max-cycles: cannot parse `{v}`")))
            })
            .transpose()?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn pattern_spec_parses_both_forms() {
        let mut a = args(&["--lfsr", "8", "--seed", "3"]);
        assert_eq!(
            pattern_spec(&mut a, "detect").expect("ok"),
            PatternSpec::Lfsr { width: 8, seed: 3 }
        );
        a.finish().expect("consumed");

        let mut a = args(&["--bits", "101"]);
        assert_eq!(
            pattern_spec(&mut a, "detect").expect("ok"),
            PatternSpec::Bits(vec![true, false, true])
        );

        let mut a = args(&[]);
        let err = pattern_spec(&mut a, "campaign run").unwrap_err();
        assert!(err.to_string().contains("campaign run"), "{err}");

        let mut a = args(&["--bits", "10x"]);
        assert!(pattern_spec(&mut a, "detect").is_err());
    }

    #[test]
    fn sequential_options_gate_on_the_flag() {
        let mut a = args(&[]);
        assert_eq!(sequential_options(&mut a).expect("ok"), None);

        // Tuning flags without --sequential stay unconsumed for finish()
        // to reject.
        let mut a = args(&["--seq-base", "4096"]);
        assert_eq!(sequential_options(&mut a).expect("ok"), None);
        assert!(a.finish().is_err());

        let mut a = args(&["--sequential", "--seq-base", "4096", "--seq-growth", "3.0"]);
        let opts = sequential_options(&mut a).expect("ok").expect("enabled");
        assert_eq!(opts.base_cycles, 4096);
        assert_eq!(opts.growth, 3.0);
        assert_eq!(opts.min_cycles, SequentialOptions::default().min_cycles);
        a.finish().expect("consumed");
    }
}
