//! The `fleet` subcommands: running one corpus campaign across many
//! `clockmark-serve` worker nodes.
//!
//! Three verbs mirror the single-node `serve`/`campaign` surface:
//!
//! * `fleet serve` turns this process into a worker — an ordinary
//!   detection server with a [`ShardWorker`] fleet service installed,
//!   so it accepts `ShardAssign`/`Heartbeat` frames besides the usual
//!   detect traffic;
//! * `fleet run` is the coordinator: it shards the campaign by
//!   consistent hashing, drives the workers, steals straggler shards,
//!   reassigns the shards of dead workers, and merges everything into a
//!   `report.json` byte-identical to a single-node run;
//! * `fleet status` renders the same one-line live progress `campaign
//!   status` shows, fed by the aggregated `progress.json` the
//!   coordinator publishes.

use crate::commands::PatternSpec;
use crate::fleet::{outcome_line, CampaignCreateOptions};
use crate::serve_cmd::ServeOptions;
use crate::ToolError;
use clockmark::Campaign;
use clockmark_fleet::{coordinator, run_fleet, FleetConfig, ShardWorker};
use clockmark_serve::Server;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Coordinator tuning for `fleet run`, alongside the spec-shaping
/// [`CampaignCreateOptions`] shared with `campaign run`.
#[derive(Debug, Clone, Default)]
pub struct FleetRunOptions {
    /// Worker addresses (`host:port`).
    pub workers: Vec<String>,
    /// Shard count (0 = `4 × workers`).
    pub shards: u64,
    /// Per-shard worker thread count (0 = worker default).
    pub threads: u32,
    /// Heartbeat polling interval in milliseconds (0 = default).
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats declaring a worker dead (0 =
    /// default).
    pub heartbeat_misses: u32,
    /// Cap jobs per shard assignment (0 = run shards to completion);
    /// interrupted shards are requeued, so the fleet still drains.
    pub max_jobs_per_assign: u64,
}

impl FleetRunOptions {
    fn config(&self, dir: &Path) -> FleetConfig {
        let mut config = FleetConfig::new(dir, self.workers.clone());
        config.shards = self.shards;
        config.worker_threads = self.threads;
        if self.heartbeat_ms > 0 {
            config.heartbeat_interval = Duration::from_millis(self.heartbeat_ms);
        }
        if self.heartbeat_misses > 0 {
            config.heartbeat_misses = self.heartbeat_misses;
        }
        config.max_jobs_per_assign = self.max_jobs_per_assign;
        config
    }
}

/// Parses the `--workers host:port,host:port,…` list.
///
/// # Errors
///
/// Returns [`ToolError::Usage`] when the list is empty or an entry has
/// no port separator.
pub fn parse_worker_list(text: &str) -> Result<Vec<String>, ToolError> {
    let workers: Vec<String> = text
        .split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(str::to_owned)
        .collect();
    if workers.is_empty() {
        return Err(ToolError::Usage("--workers lists no addresses".to_owned()));
    }
    for worker in &workers {
        if !worker.contains(':') {
            return Err(ToolError::Usage(format!(
                "--workers: `{worker}` is not host:port"
            )));
        }
    }
    Ok(workers)
}

/// `fleet serve`: runs a worker node in the foreground until a
/// `Shutdown` frame drains it.
///
/// # Errors
///
/// Returns bind failures.
pub fn cmd_fleet_serve(options: &ServeOptions, threads: usize) -> Result<String, ToolError> {
    let handle = Server::new()
        .with_fleet(Arc::new(ShardWorker::new().with_threads(threads)))
        .with_limits(options.limits)
        .bind(options.addr.as_str())?;
    println!("listening on {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let status = handle.wait();
    Ok(format!(
        "drained: served {} requests, rejected {} connections\n",
        status.served, status.rejected
    ))
}

/// `fleet run`: coordinates the campaign at `dir` across the workers,
/// creating it on first contact and resuming it otherwise.
///
/// # Errors
///
/// Returns spec/corpus failures, and [`ToolError::Fleet`] when every
/// worker is lost before the campaign drains (re-run to resume from the
/// merged state and shard checkpoints).
pub fn cmd_fleet_run(
    dir: &Path,
    corpus_dir: &Path,
    spec: &PatternSpec,
    create: CampaignCreateOptions,
    options: &FleetRunOptions,
) -> Result<String, ToolError> {
    let campaign_spec = create.build_spec(corpus_dir, spec)?;
    let summary = run_fleet(&options.config(dir), campaign_spec)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet {}: {}/{} jobs merged, {} shard(s) over {} worker(s)",
        dir.display(),
        summary.merged_jobs,
        summary.total_jobs,
        summary.shards,
        options.workers.len(),
    );
    let _ = writeln!(
        out,
        "stolen {}, reassigned {}, workers lost {}",
        summary.shards_stolen, summary.shards_reassigned, summary.workers_lost,
    );
    let campaign = Campaign::open(dir)?;
    let report = campaign.report()?;
    for outcome in &report.outcomes {
        out.push_str(&outcome_line(outcome));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "report: {} ({} of {} detected)",
        summary.report_path.display(),
        report.detected(),
        report.outcomes.len()
    );
    Ok(out)
}

/// `fleet status`: reports fleet progress without contacting any worker,
/// from the campaign state plus the coordinator's aggregated
/// `progress.json`.
///
/// # Errors
///
/// Returns store failures (missing or malformed fleet directory).
pub fn cmd_fleet_status(dir: &Path) -> Result<String, ToolError> {
    let campaign = Campaign::open(dir)?;
    let status = campaign.status()?;
    let mut out = String::new();
    let _ = writeln!(out, "fleet {}: {status}", campaign.dir().display());
    let _ = writeln!(
        out,
        "corpus: {}, pattern period {}, {} trace(s), {} spectrum kernel",
        campaign.spec().corpus.display(),
        campaign.spec().pattern.len(),
        campaign.spec().traces.len(),
        campaign.spec().algo
    );
    if let Some(progress) = coordinator::read_progress(dir) {
        if !status.is_complete() {
            let _ = writeln!(
                out,
                "live: {}/{} jobs, {:.0} cycles/s, {:.1} jobs/s, ETA {:.0}s (published {:.1}s into run)",
                progress.done,
                progress.total,
                progress.cycles_per_sec,
                progress.jobs_per_sec,
                progress.eta_seconds,
                progress.elapsed_ms as f64 / 1e3,
            );
        }
    }
    if status.is_complete() {
        let report = campaign.report()?;
        let _ = writeln!(
            out,
            "{} of {} detected",
            report.detected(),
            report.outcomes.len()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{
        cmd_campaign_run, cmd_corpus_build, CampaignRunOptions, CorpusBuildOptions,
    };
    use clockmark_serve::{ServeLimits, ServerHandle};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static NEXT: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "clockmark_fleet_cmd_{tag}_{}_{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("mkdir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn spawn_worker() -> ServerHandle {
        Server::new()
            .with_fleet(Arc::new(ShardWorker::new().with_threads(1)))
            .with_limits(ServeLimits {
                max_sessions: 16,
                idle_timeout: Duration::from_secs(120),
                ..ServeLimits::default()
            })
            .bind("127.0.0.1:0")
            .expect("bind worker")
    }

    #[test]
    fn worker_lists_parse() {
        assert_eq!(
            parse_worker_list("a:1, b:2").expect("ok"),
            vec!["a:1", "b:2"]
        );
        assert!(parse_worker_list("").is_err());
        assert!(parse_worker_list("no-port").is_err());
    }

    #[test]
    fn fleet_run_matches_campaign_run_and_status_renders() {
        let tmp = TempDir::new("run");
        let corpus_dir = tmp.0.join("corpus");
        cmd_corpus_build(
            &corpus_dir,
            &CorpusBuildOptions {
                cycles: 6_000,
                width: 6,
                unmarked: true,
                ..CorpusBuildOptions::default()
            },
        )
        .expect("builds");
        let spec = PatternSpec::Lfsr { width: 6, seed: 1 };
        let create = CampaignCreateOptions {
            checkpoint_cycles: Some(1_000),
            chunk_cycles: Some(512),
            ..CampaignCreateOptions::default()
        };

        // Single-node reference for the byte-identity contract.
        let reference_dir = tmp.0.join("reference");
        cmd_campaign_run(
            &reference_dir,
            &corpus_dir,
            &spec,
            create.clone(),
            CampaignRunOptions {
                threads: 1,
                ..CampaignRunOptions::default()
            },
        )
        .expect("reference runs");
        let reference = std::fs::read(reference_dir.join("report.json")).expect("reads");

        let worker = spawn_worker();
        let fleet_dir = tmp.0.join("fleet");
        let options = FleetRunOptions {
            workers: vec![worker.local_addr().to_string()],
            shards: 2,
            threads: 1,
            heartbeat_ms: 100,
            ..FleetRunOptions::default()
        };
        let report =
            cmd_fleet_run(&fleet_dir, &corpus_dir, &spec, create, &options).expect("fleet runs");
        assert!(report.contains("2/2 jobs merged"), "{report}");
        assert!(report.contains("workers lost 0"), "{report}");
        assert!(report.contains("chip_i_s0001 "), "{report}");

        let merged = std::fs::read(fleet_dir.join("report.json")).expect("reads");
        assert_eq!(merged, reference, "fleet CLI must merge to identical bytes");

        let status = cmd_fleet_status(&fleet_dir).expect("status");
        assert!(status.contains("2/2 jobs done"), "{status}");
        assert!(status.contains("of 2 detected"), "{status}");
        worker.shutdown();
    }
}
