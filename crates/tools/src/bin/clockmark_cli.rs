//! The `clockmark-cli` binary: a thin dispatcher over
//! [`clockmark_tools::commands`].

use clockmark::ChipModel;
use clockmark_tools::args::Args;
use clockmark_tools::commands::{
    cmd_attack, cmd_detect, cmd_embed, cmd_experiment, cmd_metrics, cmd_metrics_collapse,
    cmd_parse, cmd_simulate, cmd_verilog, ArchChoice, EmbedOptions,
};
use clockmark_tools::fleet::{
    cmd_campaign_resume, cmd_campaign_run, cmd_campaign_status, cmd_corpus_build,
    cmd_corpus_convert, cmd_corpus_ls, cmd_corpus_verify, parse_chip_list, parse_seed_list,
    CampaignCreateOptions, CampaignRunOptions, CorpusBuildOptions,
};
use clockmark_tools::fleet_cmd::{
    cmd_fleet_run, cmd_fleet_serve, cmd_fleet_status, parse_worker_list, FleetRunOptions,
};
use clockmark_tools::opts::{pattern_spec, sequential_options};
use clockmark_tools::scenario_cmd::{
    cmd_scenario_report, cmd_scenario_run, cmd_scenario_template, ScenarioTemplateOptions,
};
use clockmark_tools::serve_cmd::{
    cmd_client_detect, cmd_client_detect_corpus, cmd_client_identify, cmd_client_metrics,
    cmd_client_ping, cmd_client_shutdown, cmd_client_status, cmd_client_watch, cmd_serve,
    parse_candidate_list, ClientDetectOptions, ServeOptions,
};
use clockmark_tools::ToolError;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
clockmark-cli — clock-modulation watermark tool suite

USAGE:
  clockmark-cli parse <file.cmn>
  clockmark-cli embed <file.cmn> --out <file.cmn> [--arch clockmod|load]
                 [--width W] [--seed S] [--words N] [--regs-per-word N]
                 [--load-registers N]
  clockmark-cli simulate <file.cmn> [--cycles N] [--vcd <file>] [--power <file>]
  clockmark-cli verilog <file.cmn> --out <file.v> [--module <name>]
  clockmark-cli attack <file.cmn> --group <name>
  clockmark-cli detect --trace <file.csv> (--lfsr W [--seed S] | --bits 1011…)
                 [--lenient]
  clockmark-cli experiment [--chip i|ii] [--cycles N] [--seed S] [--full-noise]
                 [--spectrum <file.csv>]
  clockmark-cli metrics <file.jsonl> [--collapse <out.txt>]
  clockmark-cli corpus build <dir> [--chips i,ii] [--seeds 1..8] [--cycles N]
                 [--width W] [--wgc-seed S] [--unmarked] [--full-noise]
  clockmark-cli corpus ls <dir>
  clockmark-cli corpus verify <dir>
  clockmark-cli corpus convert <file> --out <file> [--f-clk HZ] [--seed S]
  clockmark-cli campaign run <dir> --corpus <dir> (--lfsr W [--seed S] | --bits 1011…)
                 [--traces a,b,…] [--lenient] [--checkpoint-cycles N]
                 [--chunk-cycles N] [--algo naive|folded|fft]
                 [--sequential [--seq-base N] [--seq-growth F] [--seq-confidence P]
                  [--seq-min-cycles N] [--seq-max-cycles N]]
                 [--threads N] [--max-jobs N] [--no-mmap]
  clockmark-cli campaign run <dir> --scenarios <scenarios.json>
                 [--threads N] [--max-jobs N] [--no-mmap]
  clockmark-cli campaign resume <dir> [--threads N] [--max-jobs N] [--no-mmap]
  clockmark-cli campaign status <dir>
  clockmark-cli scenario report <dir>
  clockmark-cli scenario template --out <scenarios.json> --corpus <dir>
                 (--lfsr W [--seed S] | --bits 1011…) [--traces a,b,…]
                 [--snrs 1.0,0.5,…] [--matrix-seed N] [--lenient]
  clockmark-cli serve [--addr HOST:PORT] [--max-sessions N] [--max-cycles N]
                 [--max-frame-bytes N] [--slow-ms N]
  clockmark-cli client ping|status|metrics|shutdown [--addr HOST:PORT]
  clockmark-cli client watch [--addr HOST:PORT] [--interval-ms N] [--count N]
  clockmark-cli client detect --trace <file.csv> (--lfsr W [--seed S] | --bits 1011…)
                 [--addr HOST:PORT] [--lenient] [--algo naive|folded|fft] [--traced]
                 [--sequential [--seq-base N] [--seq-growth F] [--seq-confidence P]
                  [--seq-min-cycles N] [--seq-max-cycles N]]
  clockmark-cli client identify --trace <file.csv> --candidates lbl=1011…,lbl=0111…
                 (--lfsr W [--seed S] | --bits 1011…)
                 [--addr HOST:PORT] [--lenient] [--algo naive|folded|fft] [--traced]
  clockmark-cli client detect-corpus --corpus <dir> --name <trace>
                 (--lfsr W [--seed S] | --bits 1011…)
                 [--addr HOST:PORT] [--lenient] [--algo naive|folded|fft] [--traced]
  clockmark-cli fleet serve [--addr HOST:PORT] [--threads N] [--max-sessions N]
                 [--max-cycles N] [--max-frame-bytes N] [--slow-ms N]
  clockmark-cli fleet run <dir> --corpus <dir> --workers H:P,H:P,…
                 (--lfsr W [--seed S] | --bits 1011…)
                 [--traces a,b,…] [--lenient] [--shards N] [--threads N]
                 [--checkpoint-cycles N] [--chunk-cycles N] [--algo naive|folded|fft]
                 [--heartbeat-ms N] [--heartbeat-misses N] [--max-jobs N]
  clockmark-cli fleet status <dir>

Observability (all commands): CLOCKMARK_LOG=error|warn|info|debug|trace
sets the stderr log level; CLOCKMARK_METRICS=<file.jsonl> records spans
and metrics to a JSON-lines artifact (inspect it with `metrics`).
";

fn read(path: &str) -> Result<String, ToolError> {
    fs::read_to_string(path).map_err(|source| ToolError::Io {
        path: path.to_owned(),
        source,
    })
}

fn write(path: &str, contents: &str) -> Result<(), ToolError> {
    fs::write(path, contents).map_err(|source| ToolError::Io {
        path: path.to_owned(),
        source,
    })
}

/// Parses the `--lenient` / `--algo` flags shared by the `client detect`
/// subcommands.
fn client_detect_options(args: &mut Args) -> Result<ClientDetectOptions, ToolError> {
    Ok(ClientDetectOptions {
        lenient: args.flag("--lenient"),
        algo: match args.value_of("--algo")? {
            Some(v) => Some(
                v.parse()
                    .map_err(|e| ToolError::Usage(format!("--algo: {e}")))?,
            ),
            None => None,
        },
        traced: args.flag("--traced"),
    })
}

/// Parses the bind/limit flags shared by `serve` and `fleet serve`.
fn serve_options(args: &mut Args) -> Result<ServeOptions, ToolError> {
    let defaults = ServeOptions::default();
    let mut options = ServeOptions {
        addr: args
            .value_of("--addr")?
            .unwrap_or_else(|| defaults.addr.clone()),
        limits: defaults.limits,
    };
    options.limits.max_sessions = args.numeric("--max-sessions", options.limits.max_sessions)?;
    options.limits.max_cycles = args.numeric("--max-cycles", options.limits.max_cycles)?;
    options.limits.max_frame_bytes =
        args.numeric("--max-frame-bytes", options.limits.max_frame_bytes)?;
    let slow_ms: u64 = args.numeric("--slow-ms", options.limits.slow_request.as_millis() as u64)?;
    options.limits.slow_request = std::time::Duration::from_millis(slow_ms);
    Ok(options)
}

/// Parses the spec-shaping flags shared by `campaign run` and
/// `fleet run` (everything persisted into `campaign.json`).
fn campaign_create_options(args: &mut Args) -> Result<CampaignCreateOptions, ToolError> {
    let lenient = args.flag("--lenient");
    let traces = args
        .value_of("--traces")?
        .map(|list| list.split(',').map(str::to_owned).collect());
    let checkpoint_cycles =
        match args.value_of("--checkpoint-cycles")? {
            Some(v) => Some(v.parse().map_err(|_| {
                ToolError::Usage(format!("--checkpoint-cycles: cannot parse `{v}`"))
            })?),
            None => None,
        };
    let chunk_cycles = match args.value_of("--chunk-cycles")? {
        Some(v) => Some(
            v.parse()
                .map_err(|_| ToolError::Usage(format!("--chunk-cycles: cannot parse `{v}`")))?,
        ),
        None => None,
    };
    let algo = match args.value_of("--algo")? {
        Some(v) => Some(
            v.parse()
                .map_err(|e| ToolError::Usage(format!("--algo: {e}")))?,
        ),
        None => None,
    };
    Ok(CampaignCreateOptions {
        traces,
        lenient,
        checkpoint_cycles,
        chunk_cycles,
        sequential: sequential_options(args)?,
        algo,
    })
}

/// Parses the per-invocation flags shared by `campaign run`, `campaign
/// resume` and `campaign run --scenarios`.
fn campaign_run_options(args: &mut Args) -> Result<CampaignRunOptions, ToolError> {
    Ok(CampaignRunOptions {
        threads: args.numeric("--threads", 0usize)?,
        max_jobs: args
            .value_of("--max-jobs")?
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| ToolError::Usage("--max-jobs: not a number".to_owned()))?,
        no_mmap: args.flag("--no-mmap"),
    })
}

fn run() -> Result<(), ToolError> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    let command = raw.remove(0);
    let _span = clockmark_obs::span("cli.run").field("command", command.clone());
    let mut args = Args::new(raw);

    match command.as_str() {
        "parse" => {
            let path = args.positional("file.cmn")?;
            args.finish()?;
            print!("{}", cmd_parse(&read(&path)?)?);
        }
        "embed" => {
            let path = args.positional("file.cmn")?;
            let out = args.require("--out")?;
            let defaults = EmbedOptions::default();
            let options = EmbedOptions {
                arch: match args.value_of("--arch")? {
                    Some(a) => a.parse()?,
                    None => ArchChoice::ClockMod,
                },
                width: args.numeric("--width", defaults.width)?,
                seed: args.numeric("--seed", defaults.seed)?,
                words: args.numeric("--words", defaults.words)?,
                regs_per_word: args.numeric("--regs-per-word", defaults.regs_per_word)?,
                load_registers: args.numeric("--load-registers", defaults.load_registers)?,
            };
            args.finish()?;
            let (text, report) = cmd_embed(&read(&path)?, &options)?;
            write(&out, &text)?;
            print!("{report}");
            println!("wrote {out}");
        }
        "simulate" => {
            let path = args.positional("file.cmn")?;
            let cycles = args.numeric("--cycles", 1000usize)?;
            let vcd_path = args.value_of("--vcd")?;
            let power_path = args.value_of("--power")?;
            args.finish()?;
            let out = cmd_simulate(
                &read(&path)?,
                cycles,
                vcd_path.is_some(),
                power_path.is_some(),
            )?;
            print!("{}", out.report);
            if let (Some(path), Some(vcd)) = (vcd_path, out.vcd) {
                write(&path, &vcd)?;
                println!("wrote {path}");
            }
            if let (Some(path), Some(csv)) = (power_path, out.power_csv) {
                write(&path, &csv)?;
                println!("wrote {path}");
            }
        }
        "verilog" => {
            let path = args.positional("file.cmn")?;
            let out = args.require("--out")?;
            let module = args
                .value_of("--module")?
                .unwrap_or_else(|| "clockmark_design".to_owned());
            args.finish()?;
            write(&out, &cmd_verilog(&read(&path)?, &module)?)?;
            println!("wrote {out}");
        }
        "attack" => {
            let path = args.positional("file.cmn")?;
            let group = args.require("--group")?;
            args.finish()?;
            print!("{}", cmd_attack(&read(&path)?, &group)?);
        }
        "detect" => {
            let trace = args.require("--trace")?;
            let lenient = args.flag("--lenient");
            let spec = pattern_spec(&mut args, "detect")?;
            args.finish()?;
            print!("{}", cmd_detect(&read(&trace)?, &spec, lenient)?);
        }
        "experiment" => {
            let chip = match args.value_of("--chip")?.as_deref() {
                None | Some("i") => ChipModel::ChipI,
                Some("ii") => ChipModel::ChipII,
                Some(other) => {
                    return Err(ToolError::Usage(format!(
                        "--chip must be `i` or `ii`, not `{other}`"
                    )))
                }
            };
            let cycles = args.numeric("--cycles", 20_000usize)?;
            let seed = args.numeric("--seed", 1u64)?;
            let full_noise = args.flag("--full-noise");
            let spectrum_path = args.value_of("--spectrum")?;
            args.finish()?;
            let (report, spectrum) =
                cmd_experiment(chip, cycles, seed, !full_noise, spectrum_path.is_some())?;
            print!("{report}");
            if let (Some(path), Some(csv)) = (spectrum_path, spectrum) {
                write(&path, &csv)?;
                println!("wrote {path}");
            }
        }
        "metrics" => {
            let path = args.positional("file.jsonl")?;
            let collapse = args.value_of("--collapse")?;
            args.finish()?;
            let contents = read(&path)?;
            print!("{}", cmd_metrics(&contents)?);
            if let Some(out) = collapse {
                write(&out, &cmd_metrics_collapse(&contents)?)?;
                println!("wrote {out}");
            }
        }
        "corpus" => {
            let sub = args.positional("subcommand")?;
            match sub.as_str() {
                "build" => {
                    let dir = args.positional("dir")?;
                    let defaults = CorpusBuildOptions::default();
                    let options = CorpusBuildOptions {
                        chips: match args.value_of("--chips")? {
                            Some(list) => parse_chip_list(&list)?,
                            None => defaults.chips,
                        },
                        seeds: match args.value_of("--seeds")? {
                            Some(list) => parse_seed_list(&list)?,
                            None => defaults.seeds,
                        },
                        cycles: args.numeric("--cycles", defaults.cycles)?,
                        width: args.numeric("--width", defaults.width)?,
                        wgc_seed: args.numeric("--wgc-seed", defaults.wgc_seed)?,
                        unmarked: args.flag("--unmarked"),
                        full_noise: args.flag("--full-noise"),
                    };
                    args.finish()?;
                    print!("{}", cmd_corpus_build(Path::new(&dir), &options)?);
                }
                "ls" => {
                    let dir = args.positional("dir")?;
                    args.finish()?;
                    print!("{}", cmd_corpus_ls(Path::new(&dir))?);
                }
                "verify" => {
                    let dir = args.positional("dir")?;
                    args.finish()?;
                    print!("{}", cmd_corpus_verify(Path::new(&dir))?);
                }
                "convert" => {
                    let input = args.positional("file")?;
                    let out = args.require("--out")?;
                    let mut header = clockmark::corpus::TraceHeader::bare(0);
                    header.f_clk_hz = args.numeric("--f-clk", header.f_clk_hz)?;
                    header.seed = args.numeric("--seed", header.seed)?;
                    args.finish()?;
                    let bytes = fs::read(&input).map_err(|source| ToolError::Io {
                        path: input.clone(),
                        source,
                    })?;
                    let (converted, report) = cmd_corpus_convert(&bytes, header)?;
                    fs::write(&out, converted).map_err(|source| ToolError::Io {
                        path: out.clone(),
                        source,
                    })?;
                    println!("{report}");
                    println!("wrote {out}");
                }
                other => {
                    return Err(ToolError::Usage(format!(
                        "unknown corpus subcommand `{other}`"
                    )))
                }
            }
        }
        "campaign" => {
            let sub = args.positional("subcommand")?;
            match sub.as_str() {
                "run" => {
                    let dir = args.positional("dir")?;
                    if let Some(scenarios) = args.value_of("--scenarios")? {
                        let options = campaign_run_options(&mut args)?;
                        args.finish()?;
                        print!(
                            "{}",
                            cmd_scenario_run(Path::new(&dir), Path::new(&scenarios), options)?
                        );
                        return Ok(());
                    }
                    let corpus_dir = args.require("--corpus")?;
                    let spec = pattern_spec(&mut args, "campaign run")?;
                    let create = campaign_create_options(&mut args)?;
                    let options = campaign_run_options(&mut args)?;
                    args.finish()?;
                    print!(
                        "{}",
                        cmd_campaign_run(
                            Path::new(&dir),
                            Path::new(&corpus_dir),
                            &spec,
                            create,
                            options,
                        )?
                    );
                }
                "resume" => {
                    let dir = args.positional("dir")?;
                    let options = campaign_run_options(&mut args)?;
                    args.finish()?;
                    print!("{}", cmd_campaign_resume(Path::new(&dir), options)?);
                }
                "status" => {
                    let dir = args.positional("dir")?;
                    args.finish()?;
                    print!("{}", cmd_campaign_status(Path::new(&dir))?);
                }
                other => {
                    return Err(ToolError::Usage(format!(
                        "unknown campaign subcommand `{other}`"
                    )))
                }
            }
        }
        "scenario" => {
            let sub = args.positional("subcommand")?;
            match sub.as_str() {
                "report" => {
                    let dir = args.positional("dir")?;
                    args.finish()?;
                    print!("{}", cmd_scenario_report(Path::new(&dir))?);
                }
                "template" => {
                    let out = args.require("--out")?;
                    let corpus_dir = args.require("--corpus")?;
                    let spec = pattern_spec(&mut args, "scenario template")?;
                    let options = ScenarioTemplateOptions {
                        traces: args
                            .value_of("--traces")?
                            .map(|list| list.split(',').map(str::to_owned).collect()),
                        snrs: args
                            .value_of("--snrs")?
                            .map(|list| {
                                list.split(',')
                                    .map(|v| {
                                        v.trim().parse().map_err(|_| {
                                            ToolError::Usage(format!("--snrs: cannot parse `{v}`"))
                                        })
                                    })
                                    .collect::<Result<Vec<f64>, _>>()
                            })
                            .transpose()?,
                        seed: args.numeric("--matrix-seed", 0u64)?,
                        lenient: args.flag("--lenient"),
                    };
                    args.finish()?;
                    let text = cmd_scenario_template(Path::new(&corpus_dir), &spec, options)?;
                    write(&out, &text)?;
                    println!("wrote {out}");
                }
                other => {
                    return Err(ToolError::Usage(format!(
                        "unknown scenario subcommand `{other}`"
                    )))
                }
            }
        }
        "serve" => {
            let options = serve_options(&mut args)?;
            args.finish()?;
            print!("{}", cmd_serve(&options)?);
        }
        "fleet" => {
            let sub = args.positional("subcommand")?;
            match sub.as_str() {
                "serve" => {
                    let threads = args.numeric("--threads", 0usize)?;
                    let options = serve_options(&mut args)?;
                    args.finish()?;
                    print!("{}", cmd_fleet_serve(&options, threads)?);
                }
                "run" => {
                    let dir = args.positional("dir")?;
                    let corpus_dir = args.require("--corpus")?;
                    let workers = parse_worker_list(&args.require("--workers")?)?;
                    let spec = pattern_spec(&mut args, "fleet run")?;
                    let create = campaign_create_options(&mut args)?;
                    if create.sequential.is_some() {
                        return Err(ToolError::Usage(
                            "fleet run does not support --sequential: distributed \
                             shards run fixed-budget jobs"
                                .to_owned(),
                        ));
                    }
                    let options = FleetRunOptions {
                        workers,
                        shards: args.numeric("--shards", 0u64)?,
                        threads: args.numeric("--threads", 0u32)?,
                        heartbeat_ms: args.numeric("--heartbeat-ms", 0u64)?,
                        heartbeat_misses: args.numeric("--heartbeat-misses", 0u32)?,
                        max_jobs_per_assign: args.numeric("--max-jobs", 0u64)?,
                    };
                    args.finish()?;
                    print!(
                        "{}",
                        cmd_fleet_run(
                            Path::new(&dir),
                            Path::new(&corpus_dir),
                            &spec,
                            create,
                            &options,
                        )?
                    );
                }
                "status" => {
                    let dir = args.positional("dir")?;
                    args.finish()?;
                    print!("{}", cmd_fleet_status(Path::new(&dir))?);
                }
                other => {
                    return Err(ToolError::Usage(format!(
                        "unknown fleet subcommand `{other}`"
                    )))
                }
            }
        }
        "client" => {
            let sub = args.positional("subcommand")?;
            let addr = args
                .value_of("--addr")?
                .unwrap_or_else(|| ServeOptions::default().addr);
            match sub.as_str() {
                "ping" => {
                    args.finish()?;
                    print!("{}", cmd_client_ping(&addr)?);
                }
                "status" => {
                    args.finish()?;
                    print!("{}", cmd_client_status(&addr)?);
                }
                "metrics" => {
                    args.finish()?;
                    print!("{}", cmd_client_metrics(&addr)?);
                }
                "watch" => {
                    let interval_ms = args.numeric("--interval-ms", 1000u64)?;
                    let count = args
                        .value_of("--count")?
                        .map(|v| v.parse())
                        .transpose()
                        .map_err(|_| ToolError::Usage("--count: not a number".to_owned()))?;
                    args.finish()?;
                    print!("{}", cmd_client_watch(&addr, interval_ms, count)?);
                }
                "shutdown" => {
                    args.finish()?;
                    print!("{}", cmd_client_shutdown(&addr)?);
                }
                "detect" => {
                    let trace = args.require("--trace")?;
                    let options = client_detect_options(&mut args)?;
                    let sequential = sequential_options(&mut args)?;
                    let spec = pattern_spec(&mut args, "client detect")?;
                    args.finish()?;
                    print!(
                        "{}",
                        cmd_client_detect(&addr, &read(&trace)?, &spec, options, sequential)?
                    );
                }
                "identify" => {
                    let trace = args.require("--trace")?;
                    let candidates = parse_candidate_list(&args.require("--candidates")?)?;
                    let options = client_detect_options(&mut args)?;
                    let spec = pattern_spec(&mut args, "client identify")?;
                    args.finish()?;
                    print!(
                        "{}",
                        cmd_client_identify(&addr, &read(&trace)?, &spec, options, &candidates)?
                    );
                }
                "detect-corpus" => {
                    let corpus = args.require("--corpus")?;
                    let name = args.require("--name")?;
                    let options = client_detect_options(&mut args)?;
                    let spec = pattern_spec(&mut args, "client detect-corpus")?;
                    args.finish()?;
                    print!(
                        "{}",
                        cmd_client_detect_corpus(&addr, &corpus, &name, &spec, options)?
                    );
                }
                other => {
                    return Err(ToolError::Usage(format!(
                        "unknown client subcommand `{other}`"
                    )))
                }
            }
        }
        other => {
            return Err(ToolError::Usage(format!(
                "unknown command `{other}`; run with --help"
            )))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // A serving process always keeps live in-process telemetry — the
    // `Metrics` RPC and `client watch` read the sliding request-rate
    // and latency windows — so resolve a recorder even when no
    // CLOCKMARK_* variable asked for an export. Exporter-less
    // recording writes nothing on flush; environment-configured
    // exporters are honoured exactly as for every other command.
    let mut argv = std::env::args().skip(1);
    let (first, second) = (argv.next(), argv.next());
    let serving = first.as_deref() == Some("serve")
        || (first.as_deref() == Some("fleet") && second.as_deref() == Some("serve"));
    if serving {
        let recorder = clockmark_obs::Recorder::from_env()
            .unwrap_or_else(|| clockmark_obs::Recorder::new(Vec::new()));
        clockmark_obs::install(recorder);
    }
    clockmark_obs::init_from_env();
    let result = run();
    clockmark_obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            clockmark_obs::error!("{e}");
            if matches!(e, ToolError::Usage(_)) {
                eprintln!();
                eprint!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}
