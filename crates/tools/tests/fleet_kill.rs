//! The fleet's headline failure drill, with real processes: spawn
//! worker nodes as `clockmark-cli fleet serve` children, SIGKILL one of
//! them mid-campaign, and require the coordinator to reassign its
//! shards and still merge a `report.json` byte-identical to an
//! uninterrupted single-node run.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use clockmark::corpus::{Corpus, TraceHeader};
use clockmark::{Campaign, CampaignLimits, CampaignSpec};
use clockmark_fleet::{run_fleet, FleetConfig};
use clockmark_seq::{Lfsr, SequenceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("cm_fleet_kill_{}", std::process::id()));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A `fleet serve` child process; killed on drop so a failing test does
/// not leak servers.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_clockmark-cli"))
            .args([
                "fleet",
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "1",
                "--max-sessions",
                "16",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawns fleet serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("reads listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_owned();
        WorkerProc { child, addr }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn pattern() -> Vec<bool> {
    let mut lfsr = Lfsr::maximal(6).expect("valid");
    (0..63).map(|_| lfsr.next_bit()).collect()
}

fn build_fixture(dir: &Path) -> CampaignSpec {
    let corpus_dir = dir.join("corpus");
    let pattern = pattern();
    let mut corpus = Corpus::create(&corpus_dir).expect("creates");
    let mut names = Vec::new();
    for i in 0..5usize {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let watts: Vec<f64> = (0..30_000)
            .map(|c| {
                let wm = if pattern[(c + 7 + i) % pattern.len()] {
                    1.0
                } else {
                    0.0
                };
                wm + rng.random_range(-2.0..2.0)
            })
            .collect();
        let name = format!("marked_{i}");
        corpus
            .add(&name, TraceHeader::bare(0), &watts)
            .expect("adds");
        names.push(name);
    }
    let mut spec = CampaignSpec::new(corpus_dir, pattern, names);
    spec.checkpoint_cycles = 1_000;
    spec.chunk_cycles = 256;
    spec
}

#[test]
fn sigkilled_worker_shards_resume_byte_identically_elsewhere() {
    let dir = TempDir::new();
    let spec = build_fixture(&dir.0);

    // Uninterrupted single-node reference.
    let reference_dir = dir.0.join("reference");
    let campaign = Campaign::create(&reference_dir, spec.clone())
        .expect("creates")
        .with_threads(1);
    assert!(campaign
        .run(&CampaignLimits::none())
        .expect("runs")
        .is_complete());
    let reference = std::fs::read(reference_dir.join("report.json")).expect("reads");

    let victim = WorkerProc::spawn();
    let survivor = WorkerProc::spawn();

    let mut config = FleetConfig::new(
        dir.0.join("fleet"),
        vec![victim.addr.clone(), survivor.addr.clone()],
    );
    config.shards = 4;
    config.worker_threads = 1;
    config.heartbeat_interval = Duration::from_millis(100);
    config.heartbeat_misses = 2;

    let start = Instant::now();
    let summary = std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| run_fleet(&config, spec));
        // SIGKILL one worker the moment the coordinator first publishes
        // progress — shards are provably in flight, nothing is near
        // done. `Child::kill` sends SIGKILL on unix: no drain, no
        // checkpoint flush beyond what already hit disk.
        let progress = config.dir.join("progress.json");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !progress.exists() {
            assert!(Instant::now() < deadline, "no progress published in 10s");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut victim = victim;
        victim.child.kill().expect("SIGKILL lands");
        coordinator.join().expect("coordinator thread")
    })
    .expect("fleet completes on the survivor");

    assert_eq!(summary.merged_jobs, summary.total_jobs);
    assert_eq!(summary.total_jobs, 5);
    assert_eq!(
        summary.workers_lost,
        1,
        "the SIGKILLed worker must be declared dead (run took {:?})",
        start.elapsed()
    );
    let merged = std::fs::read(&summary.report_path).expect("reads merged");
    assert_eq!(
        merged, reference,
        "merged fleet report must be byte-identical to the uninterrupted single-node run"
    );
    drop(survivor);
}
