//! End-to-end tests of the `clockmark-cli` binary: the full file-based
//! watermark-insertion flow in a temporary directory.

use std::path::PathBuf;
use std::process::Command;

const DESIGN: &str = "\
clock clk
group cpu
signal run = external
icg g0 clock=clk enable=run group=cpu
reg r0 clock=g0 data=toggle group=cpu
reg r1 clock=g0 data=shift(r0) group=cpu
";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("clockmark-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clockmark-cli"))
}

fn run_ok(cmd: &mut Command) -> String {
    let output = cmd.output().expect("binary runs");
    assert!(
        output.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 output")
}

#[test]
fn full_flow_embed_simulate_verilog_attack_detect() {
    let dir = TempDir::new("flow");
    let design = dir.path("design.cmn");
    std::fs::write(&design, DESIGN).expect("write design");

    // parse
    let out = run_ok(cli().args(["parse", &design]));
    assert!(out.contains("registers   : 2"), "{out}");

    // embed
    let marked = dir.path("marked.cmn");
    let out = run_ok(cli().args([
        "embed",
        &design,
        "--out",
        &marked,
        "--arch",
        "clockmod",
        "--width",
        "8",
        "--words",
        "8",
        "--regs-per-word",
        "16",
    ]));
    assert!(out.contains("WGC registers      : 8"), "{out}");
    assert!(std::fs::read_to_string(&marked)
        .expect("written")
        .contains("icg"));

    // simulate with dumps
    let vcd = dir.path("waves.vcd");
    let csv = dir.path("trace.csv");
    let out = run_ok(cli().args([
        "simulate", &marked, "--cycles", "400", "--vcd", &vcd, "--power", &csv,
    ]));
    assert!(out.contains("simulated 400 cycles"), "{out}");
    assert!(std::fs::read_to_string(&vcd)
        .expect("vcd")
        .contains("$enddefinitions"));
    assert!(std::fs::read_to_string(&csv).expect("csv").lines().count() > 400);

    // verilog
    let verilog = dir.path("marked.v");
    run_ok(cli().args(["verilog", &marked, "--out", &verilog, "--module", "ip"]));
    let v = std::fs::read_to_string(&verilog).expect("verilog");
    assert!(v.contains("module ip (") && v.contains("endmodule"), "{v}");

    // attack (the embedded watermark group is grp2: top, cpu, watermark).
    let out = run_ok(cli().args(["attack", &marked, "--group", "grp2"]));
    assert!(out.contains("STAND-ALONE"), "{out}");
}

#[test]
fn experiment_and_detect_round_trip() {
    let dir = TempDir::new("detect");
    let spectrum = dir.path("spectrum.csv");
    let out = run_ok(cli().args([
        "experiment",
        "--chip",
        "i",
        "--cycles",
        "12000",
        "--seed",
        "5",
        "--spectrum",
        &spectrum,
    ]));
    assert!(out.contains("DETECTED"), "{out}");
    assert!(
        std::fs::read_to_string(&spectrum)
            .expect("csv")
            .lines()
            .count()
            > 250
    );

    // Synthesize a trace file and detect in it.
    let trace = dir.path("trace.csv");
    let mut lfsr = 1u32;
    let mut csv = String::new();
    // A 7-bit maximal LFSR stream (taps 7,6 in right-shift form).
    let mut bits = Vec::new();
    for _ in 0..127 {
        let out_bit = lfsr & 1;
        let fb = (lfsr ^ (lfsr >> 1)) & 1;
        lfsr = (lfsr >> 1) | (fb << 6);
        bits.push(out_bit != 0);
    }
    for i in 0..6000usize {
        let wm = if bits[(i + 40) % 127] { 1e-3 } else { 0.0 };
        let noise = ((i * 2654435761) % 883) as f64 * 1e-6;
        csv.push_str(&format!("{}\n", wm + noise));
    }
    std::fs::write(&trace, csv).expect("write trace");
    let out = run_ok(cli().args(["detect", "--trace", &trace, "--lfsr", "7"]));
    assert!(out.contains("DETECTED"), "{out}");
    assert!(out.contains("rotation 40"), "{out}");
}

#[test]
fn usage_errors_exit_nonzero_with_help() {
    let output = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");

    let output = cli()
        .args(["detect", "--trace", "nope.csv"])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--lfsr or --bits"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let out = run_ok(cli().arg("--help"));
    assert!(out.contains("USAGE"), "{out}");
    assert!(out.contains("embed"));
    assert!(out.contains("verilog"));
}
