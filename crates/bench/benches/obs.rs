//! Benchmark guard for the observability layer's no-op path.
//!
//! With no recorder installed (no `CLOCKMARK_METRICS`, log level below
//! `debug`) every instrumentation site must collapse to one relaxed
//! atomic load and a branch. This bench pins that down two ways: the
//! raw cost of disabled primitives (nanoseconds per site), and a real
//! folded-CPA workload whose instrumented-disabled time must be
//! indistinguishable from the work itself — compare `cpa_disabled`
//! here against the `folded` timings in the `cpa` bench.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockmark::prelude::{CpaAlgo, DetectOptions, Detector};
use clockmark_seq::{Lfsr, SequenceGenerator};

fn make_input(width: u32, cycles: usize) -> (Vec<bool>, Vec<f64>) {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    let pattern: Vec<bool> = (0..period).map(|_| lfsr.next_bit()).collect();
    let y: Vec<f64> = (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] { 1.0 } else { 0.0 };
            wm + ((i * 2654435761) % 1000) as f64 * 0.01
        })
        .collect();
    (pattern, y)
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_disabled");

    // The primitives themselves: these run with the recorder suppressed
    // on this thread, i.e. the exact code path a production run with no
    // CLOCKMARK_* configuration takes after the first atomic load.
    group.bench_function("span_site", |b| {
        b.iter(|| {
            clockmark_obs::suppressed(|| {
                let span = clockmark_obs::span(black_box("bench.noop"));
                black_box(span.is_recording())
            })
        })
    });
    group.bench_function("counter_site", |b| {
        b.iter(|| {
            clockmark_obs::suppressed(|| {
                clockmark_obs::counter_add(black_box("bench.noop"), black_box(1));
            })
        })
    });

    // A real instrumented workload with recording disabled: any visible
    // gap versus the uninstrumented `cpa/folded` bench is overhead the
    // zero-cost contract forbids.
    let (pattern, y) = make_input(10, 60_000);
    let detector = Detector::with_options(
        &pattern,
        DetectOptions::default().with_algo(CpaAlgo::Folded),
    )
    .expect("valid pattern");
    group.bench_function("cpa_disabled/P1023_N60000", |b| {
        b.iter(|| clockmark_obs::suppressed(|| detector.spectrum(black_box(&y)).expect("valid")))
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
