//! Criterion benchmarks of the substrates: cycle simulation of the
//! paper-sized watermark netlist, the SoC background model and the
//! measurement chain.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use clockmark::{ClockModulationWatermark, WatermarkArchitecture};
use clockmark_measure::Acquisition;
use clockmark_netlist::Netlist;
use clockmark_power::{Frequency, Power, PowerTrace};
use clockmark_sim::{CycleSim, SignalDriver};
use clockmark_soc::Soc;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CYCLES: usize = 10_000;

fn bench_netlist_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.throughput(Throughput::Elements(CYCLES as u64));

    // Paper-sized watermark netlist: 1,024 gated + 12 WGC registers.
    group.bench_function("cycle_sim/1036_registers", |b| {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let arch = ClockModulationWatermark::paper();
        let wm = arch.embed(&mut netlist, clk.into()).expect("embeds");
        let mut sim = CycleSim::new(&netlist).expect("valid");
        sim.drive(wm.enable, SignalDriver::Constant(true))
            .expect("external");
        b.iter(|| {
            sim.reset();
            black_box(sim.run(CYCLES).expect("runs"))
        })
    });

    group.bench_function("soc_background/chip_i", |b| {
        let mut soc = Soc::chip_i().expect("builds");
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(soc.run(CYCLES, &mut rng).expect("runs")))
    });

    group.bench_function("soc_background/chip_ii", |b| {
        let mut soc = Soc::chip_ii().expect("builds");
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(soc.run(CYCLES, &mut rng).expect("runs")))
    });

    group.bench_function("acquisition/50_samples_per_cycle", |b| {
        let chain = Acquisition::paper_chain(Frequency::from_megahertz(10.0));
        let power = PowerTrace::constant(Power::from_milliwatts(5.0), CYCLES);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(chain.acquire(&power, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench_netlist_sim);
criterion_main!(benches);
