//! Criterion benchmark of the full experiment pipeline (embed → simulate
//! → background → digitise → rotational CPA) at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use clockmark::{ClockModulationWatermark, Experiment, LoadCircuitWatermark, WgcConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    const CYCLES: usize = 8_000;
    group.throughput(Throughput::Elements(CYCLES as u64));

    group.bench_function("clock_modulation/8k_cycles", |b| {
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let experiment = Experiment::quick(CYCLES, 1);
        b.iter(|| black_box(experiment.run(&arch).expect("runs")))
    });

    group.bench_function("load_circuit/8k_cycles", |b| {
        let arch = LoadCircuitWatermark {
            load_registers: 576,
            regs_per_gate: 32,
            clock_gated: true,
            wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        };
        let experiment = Experiment::quick(CYCLES, 1);
        b.iter(|| black_box(experiment.run(&arch).expect("runs")))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
