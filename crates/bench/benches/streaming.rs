//! Criterion benchmarks of the streaming CPA fold: per-cycle `push`
//! against bulk `push_chunk` ingest at campaign-replay chunk sizes.
//!
//! `push_chunk` hoists the per-call bookkeeping out of the sample loop
//! while keeping the floating-point accumulation order bit-identical to
//! `push`, so the campaign replay path gets the speedup for free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clockmark_cpa::StreamingCpa;
use clockmark_seq::{Lfsr, SequenceGenerator};

fn make_input(width: u32, cycles: usize) -> (Vec<bool>, Vec<f64>) {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    let pattern: Vec<bool> = (0..period).map(|_| lfsr.next_bit()).collect();
    // Deterministic pseudo-noise (no RNG in the hot loop).
    let y: Vec<f64> = (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] { 1.0 } else { 0.0 };
            wm + ((i * 2654435761) % 1000) as f64 * 0.01
        })
        .collect();
    (pattern, y)
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_cpa");

    for (width, cycles) in [(8u32, 60_000usize), (12, 300_000)] {
        let (pattern, y) = make_input(width, cycles);
        let label = format!("P{}_N{}", (1 << width) - 1, cycles);
        group.throughput(Throughput::Elements(cycles as u64));

        group.bench_with_input(
            BenchmarkId::new("push", &label),
            &(&pattern, &y),
            |b, (p, y)| {
                b.iter(|| {
                    let mut s = StreamingCpa::new(black_box(p)).expect("valid");
                    for &v in y.iter() {
                        s.push(v);
                    }
                    black_box(s.cycles())
                })
            },
        );

        // The campaign replay path reads the corpus in fixed-size chunks.
        for chunk in [256usize, 8_192] {
            group.bench_with_input(
                BenchmarkId::new(format!("push_chunk_{chunk}"), &label),
                &(&pattern, &y),
                |b, (p, y)| {
                    b.iter(|| {
                        let mut s = StreamingCpa::new(black_box(p)).expect("valid");
                        for part in y.chunks(chunk) {
                            s.push_chunk(part);
                        }
                        black_box(s.cycles())
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
