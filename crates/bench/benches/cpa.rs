//! Criterion benchmarks of the CPA detector: the naive O(N·P) reference
//! against the folded O(N + P·W) implementation, at several scales up to
//! the paper's (N = 300,000, P = 4,095).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clockmark::prelude::{CpaAlgo, DetectOptions, Detector};
use clockmark_seq::{Lfsr, SequenceGenerator};

fn make_input(width: u32, cycles: usize) -> (Vec<bool>, Vec<f64>) {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    let pattern: Vec<bool> = (0..period).map(|_| lfsr.next_bit()).collect();
    // Deterministic pseudo-noise (no RNG in the hot loop).
    let y: Vec<f64> = (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] { 1.0 } else { 0.0 };
            wm + ((i * 2654435761) % 1000) as f64 * 0.01
        })
        .collect();
    (pattern, y)
}

fn bench_cpa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotational_cpa");

    for (width, cycles) in [(8u32, 30_000usize), (10, 60_000)] {
        let (pattern, y) = make_input(width, cycles);
        group.throughput(Throughput::Elements(cycles as u64));
        for algo in [CpaAlgo::Naive, CpaAlgo::Folded] {
            let detector =
                Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
                    .expect("valid pattern");
            group.bench_with_input(
                BenchmarkId::new(algo.as_str(), format!("P{}_N{}", (1 << width) - 1, cycles)),
                &(&detector, &y),
                |b, (d, y)| b.iter(|| d.spectrum(black_box(y)).expect("valid")),
            );
        }
    }

    // Paper scale, folded only (the naive path takes seconds per run).
    let (pattern, y) = make_input(12, 300_000);
    let folded = Detector::with_options(
        &pattern,
        DetectOptions::default().with_algo(CpaAlgo::Folded),
    )
    .expect("valid pattern");
    group.throughput(Throughput::Elements(300_000));
    group.sample_size(20);
    group.bench_function("folded/P4095_N300000_paper_scale", |b| {
        b.iter(|| folded.spectrum(black_box(&y)).expect("valid"))
    });

    // Streaming ingest: the per-cycle cost of the online detector.
    let (pattern, y) = make_input(10, 100_000);
    let detector = Detector::new(&pattern).expect("valid pattern");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("streaming_ingest/P1023_N100000", |b| {
        b.iter(|| {
            let mut session = detector.detect_streaming();
            session.push_chunk(black_box(&y));
            black_box(session.spectrum().expect("complete period"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cpa);
criterion_main!(benches);
