//! Pins the three spread-spectrum kernels against each other: the naive
//! O(N·P) reference, the folded O(N + P·W) loop and the FFT
//! O(N + P log P) circular-correlation path, at P ∈ {63, 1023, 4095}
//! and the paper's trace length N = 300,000, plus a Bluestein
//! plan-reuse vs plan-per-call comparison.
//!
//! ```sh
//! cargo bench -p clockmark-bench --bench spectrum_algos
//! # CI smoke: one timed folded-vs-FFT round at paper scale, asserting
//! # the >= 5x speedup acceptance (warn-only below 4 cores), with the
//! # measurement exported through the obs JSON recorder:
//! CLOCKMARK_METRICS=spectrum.jsonl \
//!   cargo bench -p clockmark-bench --bench spectrum_algos -- --quick
//! ```

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use clockmark::prelude::{CpaAlgo, DetectOptions, Detector, SpreadSpectrum};
use clockmark_dsp::{BluesteinPlan, Complex64};
use clockmark_seq::{Lfsr, SequenceGenerator};

const PAPER_CYCLES: usize = 300_000;

fn make_input(width: u32, cycles: usize) -> (Vec<bool>, Vec<f64>) {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    let pattern: Vec<bool> = (0..period).map(|_| lfsr.next_bit()).collect();
    // Deterministic pseudo-noise (no RNG in the hot loop).
    let y: Vec<f64> = (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] { 1.0 } else { 0.0 };
            wm + ((i * 2654435761) % 1000) as f64 * 0.01
        })
        .collect();
    (pattern, y)
}

fn bench_spectrum_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_algos");

    for width in [6u32, 10, 12] {
        let period = (1usize << width) - 1;
        let (pattern, y) = make_input(width, PAPER_CYCLES);
        let tag = format!("P{period}_N{PAPER_CYCLES}");
        group.throughput(Throughput::Elements(PAPER_CYCLES as u64));

        // The naive loop is O(N·P): seconds per call at P = 4095, so it
        // gets the smallest sample size criterion accepts there.
        group.sample_size(if period > 2_000 { 10 } else { 30 });
        let naive =
            Detector::with_options(&pattern, DetectOptions::default().with_algo(CpaAlgo::Naive))
                .expect("valid pattern");
        group.bench_with_input(
            BenchmarkId::new("naive", &tag),
            &(&naive, &y),
            |b, (d, y)| b.iter(|| d.spectrum(black_box(y)).expect("valid")),
        );

        group.sample_size(30);
        for algo in [CpaAlgo::Folded, CpaAlgo::Fft] {
            let detector =
                Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
                    .expect("valid pattern");
            group.bench_with_input(
                BenchmarkId::new(algo.as_str(), &tag),
                &(&detector, &y),
                |b, (d, y)| b.iter(|| d.spectrum(black_box(y)).expect("valid")),
            );
        }
    }
    group.finish();
}

fn bench_bluestein_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("bluestein_planning");
    let n = 4095usize;
    let signal: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new(((i * 37) % 101) as f64 * 0.01, 0.0))
        .collect();

    // Plan reuse is the shape the CPA kernel uses: twiddles, the chirp
    // FFT and all scratch buffers survive across calls.
    let mut plan = BluesteinPlan::new(n).expect("valid length");
    group.bench_function("plan_reuse/P4095", |b| {
        b.iter(|| {
            let mut data = signal.clone();
            plan.forward(black_box(&mut data));
            black_box(data)
        })
    });
    group.bench_function("plan_per_call/P4095", |b| {
        b.iter(|| {
            let mut data = signal.clone();
            BluesteinPlan::new(n)
                .expect("valid length")
                .forward(black_box(&mut data));
            black_box(data)
        })
    });
    group.finish();
}

/// `--quick`: the CI `fft-smoke` path. One manually timed folded-vs-FFT
/// round at paper scale (P = 4095, N = 300,000) that checks the kernels
/// report a bit-identical peak and asserts the >= 5x FFT speedup
/// acceptance — warn-only below 4 cores, where shared/throttled runners
/// make wall-clock ratios unreliable (same policy as `parallel_speedup`).
fn quick_smoke() {
    let (pattern, y) = make_input(12, PAPER_CYCLES);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = 5u32;

    let spectrum = |algo: CpaAlgo| -> SpreadSpectrum {
        Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
            .expect("valid pattern")
            .spectrum(&y)
            .expect("valid")
    };

    // One untimed round per kernel warms the allocator and, for the FFT
    // path, the thread-local correlator plan cache.
    let folded_ref = spectrum(CpaAlgo::Folded);
    let fft_ref = spectrum(CpaAlgo::Fft);
    assert_eq!(
        (folded_ref.peak_abs().0, folded_ref.peak_abs().1.to_bits()),
        (fft_ref.peak_abs().0, fft_ref.peak_abs().1.to_bits()),
        "FFT refinement must reproduce the folded peak bit for bit"
    );

    let time = |algo: CpaAlgo| {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(spectrum(algo));
        }
        start.elapsed().as_secs_f64() / f64::from(reps)
    };
    let folded_s = time(CpaAlgo::Folded);
    let fft_s = time(CpaAlgo::Fft);
    let speedup = folded_s / fft_s.max(1e-12);

    println!("spectrum_algos --quick: P=4095, N={PAPER_CYCLES}, {reps} rep(s) per kernel");
    println!("folded : {:>9.3} ms per spectrum", folded_s * 1e3);
    println!("fft    : {:>9.3} ms per spectrum", fft_s * 1e3);
    println!("speedup: {speedup:.1}x  (peaks bit-identical)");

    clockmark_obs::gauge_set("bench.spectrum_folded_seconds", folded_s);
    clockmark_obs::gauge_set("bench.spectrum_fft_seconds", fft_s);
    clockmark_obs::gauge_set("bench.spectrum_fft_speedup", speedup);
    clockmark_obs::gauge_set("bench.cores", cores as f64);

    if cores >= 4 {
        assert!(
            speedup >= 5.0,
            "expected the FFT kernel to be >= 5x faster than folded at \
             P=4095/N={PAPER_CYCLES}; measured {speedup:.1}x"
        );
        println!("acceptance: >= 5x FFT speedup with {cores} cores — met");
    } else {
        clockmark_obs::warn!(
            "spectrum_algos: {cores} core(s) make wall-clock ratios unreliable; measured \
             {speedup:.1}x recorded as a metric, the >= 5x acceptance check applies on \
             machines with >= 4 cores"
        );
        println!(
            "note: {cores} core(s); measured {speedup:.1}x recorded; the >= 5x acceptance \
             check applies on machines with >= 4 cores"
        );
    }
}

criterion_group!(benches, bench_spectrum_algos, bench_bluestein_planning);

fn main() {
    if clockmark_bench::has_flag("--quick") {
        clockmark_bench::obs_scope("spectrum_algos_quick", quick_smoke);
        return;
    }
    benches();
}
