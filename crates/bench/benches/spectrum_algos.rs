//! Pins the three spread-spectrum kernels against each other: the naive
//! O(N·P) reference, the folded O(N + P·W) loop and the FFT
//! O(N + P log P) circular-correlation path, at P ∈ {63, 1023, 4095}
//! and the paper's trace length N = 300,000, plus a Bluestein
//! plan-reuse vs plan-per-call comparison.
//!
//! ```sh
//! cargo bench -p clockmark-bench --bench spectrum_algos
//! # CI smoke: one timed folded-vs-FFT round at paper scale, asserting
//! # the >= 5x speedup acceptance (warn-only below 4 cores), with the
//! # measurement exported through the obs JSON recorder:
//! CLOCKMARK_METRICS=spectrum.jsonl \
//!   cargo bench -p clockmark-bench --bench spectrum_algos -- --quick
//! ```

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use clockmark::prelude::{CpaAlgo, DetectOptions, Detector, SpreadSpectrum};
use clockmark_cpa::StreamingCpa;
use clockmark_dsp::{BluesteinPlan, Complex64};
use clockmark_seq::{Lfsr, SequenceGenerator};

const PAPER_CYCLES: usize = 300_000;

fn make_input(width: u32, cycles: usize) -> (Vec<bool>, Vec<f64>) {
    let mut lfsr = Lfsr::maximal(width).expect("valid width");
    let period = (1usize << width) - 1;
    let pattern: Vec<bool> = (0..period).map(|_| lfsr.next_bit()).collect();
    // Deterministic pseudo-noise (no RNG in the hot loop).
    let y: Vec<f64> = (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] { 1.0 } else { 0.0 };
            wm + ((i * 2654435761) % 1000) as f64 * 0.01
        })
        .collect();
    (pattern, y)
}

fn bench_spectrum_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_algos");

    for width in [6u32, 10, 12] {
        let period = (1usize << width) - 1;
        let (pattern, y) = make_input(width, PAPER_CYCLES);
        let tag = format!("P{period}_N{PAPER_CYCLES}");
        group.throughput(Throughput::Elements(PAPER_CYCLES as u64));

        // The naive loop is O(N·P): seconds per call at P = 4095, so it
        // gets the smallest sample size criterion accepts there.
        group.sample_size(if period > 2_000 { 10 } else { 30 });
        let naive =
            Detector::with_options(&pattern, DetectOptions::default().with_algo(CpaAlgo::Naive))
                .expect("valid pattern");
        group.bench_with_input(
            BenchmarkId::new("naive", &tag),
            &(&naive, &y),
            |b, (d, y)| b.iter(|| d.spectrum(black_box(y)).expect("valid")),
        );

        group.sample_size(30);
        for algo in [CpaAlgo::Folded, CpaAlgo::Fft] {
            let detector =
                Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
                    .expect("valid pattern");
            group.bench_with_input(
                BenchmarkId::new(algo.as_str(), &tag),
                &(&detector, &y),
                |b, (d, y)| b.iter(|| d.spectrum(black_box(y)).expect("valid")),
            );
        }
    }
    group.finish();
}

fn bench_bluestein_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("bluestein_planning");
    let n = 4095usize;
    let signal: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new(((i * 37) % 101) as f64 * 0.01, 0.0))
        .collect();

    // Plan reuse is the shape the CPA kernel uses: twiddles, the chirp
    // FFT and all scratch buffers survive across calls.
    let mut plan = BluesteinPlan::new(n).expect("valid length");
    group.bench_function("plan_reuse/P4095", |b| {
        b.iter(|| {
            let mut data = signal.clone();
            plan.forward(black_box(&mut data));
            black_box(data)
        })
    });
    group.bench_function("plan_per_call/P4095", |b| {
        b.iter(|| {
            let mut data = signal.clone();
            BluesteinPlan::new(n)
                .expect("valid length")
                .forward(black_box(&mut data));
            black_box(data)
        })
    });
    group.finish();
}

/// The pre-SoA fold: one fused per-sample loop carrying the residue
/// index, global sums and per-residue accumulators together. Kept here
/// as the timing *and* bit-identity reference for the chunked
/// struct-of-arrays kernel that replaced it in `clockmark-cpa`.
#[allow(clippy::type_complexity)]
fn scalar_fold(period: usize, y: &[f64]) -> (Vec<f64>, Vec<u64>, f64, f64) {
    let mut c = vec![0.0f64; period];
    let mut m = vec![0u64; period];
    let (mut sy, mut syy) = (0.0f64, 0.0f64);
    let mut k = 0usize;
    for &v in y {
        sy += v;
        syy += v * v;
        c[k] += v;
        m[k] += 1;
        k += 1;
        if k == period {
            k = 0;
        }
    }
    (c, m, sy, syy)
}

/// The pre-SoA rotation sweep: for every rotation, walk the pattern's
/// one-positions and index the fold through `(j + P - r) % P` — an
/// integer division per access, the cost the doubled-array SoA kernel
/// removes. Formula-identical to the shipped `correlation_from_sums`.
fn scalar_rho(pattern: &[bool], c: &[f64], m: &[u64], sy: f64, syy: f64, nf: f64) -> Vec<f64> {
    let period = pattern.len();
    let ones: Vec<usize> = (0..period).filter(|&j| pattern[j]).collect();
    (0..period)
        .map(|r| {
            let (mut sx, mut sxy) = (0.0f64, 0.0f64);
            for &j in &ones {
                let k = (j + period - r) % period;
                sx += m[k] as f64;
                sxy += c[k];
            }
            let num = nf * sxy - sx * sy;
            let var_x = nf * sx - sx * sx;
            let var_y = nf * syy - sy * sy;
            if var_x <= 0.0 || var_y <= 0.0 {
                return 0.0;
            }
            (num / (var_x.sqrt() * var_y.sqrt())).clamp(-1.0, 1.0)
        })
        .collect()
}

/// The full pre-SoA folded spectrum: scalar fold + scalar rotation sweep.
fn scalar_spectrum(pattern: &[bool], y: &[f64]) -> Vec<f64> {
    let (c, m, sy, syy) = scalar_fold(pattern.len(), y);
    scalar_rho(pattern, &c, &m, sy, syy, y.len() as f64)
}

/// `--quick`: the CI `fft-smoke` / `perf-smoke` path. One manually timed
/// round at paper scale (P = 4095, N = 300,000) that
///
/// - checks folded and FFT report a bit-identical peak and asserts the
///   >= 5x FFT speedup acceptance;
/// - checks the SoA fold/correlate kernels are bit-identical to the
///   embedded pre-SoA scalar references (a hard failure anywhere), and
///   asserts their >= 4x combined speedup;
/// - writes the `fold`/`spectrum` sections of `BENCH_6.json`.
///
/// Speedup asserts are warn-only below 4 cores, where shared/throttled
/// runners make wall-clock ratios unreliable (same policy as
/// `parallel_speedup`); the bit-identity checks always apply.
fn quick_smoke() {
    let (pattern, y) = make_input(12, PAPER_CYCLES);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = 5u32;

    let spectrum = |algo: CpaAlgo| -> SpreadSpectrum {
        Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
            .expect("valid pattern")
            .spectrum(&y)
            .expect("valid")
    };

    // One untimed round per kernel warms the allocator and, for the FFT
    // path, the thread-local correlator plan cache.
    let folded_ref = spectrum(CpaAlgo::Folded);
    let fft_ref = spectrum(CpaAlgo::Fft);
    assert_eq!(
        (folded_ref.peak_abs().0, folded_ref.peak_abs().1.to_bits()),
        (fft_ref.peak_abs().0, fft_ref.peak_abs().1.to_bits()),
        "FFT refinement must reproduce the folded peak bit for bit"
    );

    let time = |algo: CpaAlgo| {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(spectrum(algo));
        }
        start.elapsed().as_secs_f64() / f64::from(reps)
    };
    let folded_s = time(CpaAlgo::Folded);
    let fft_s = time(CpaAlgo::Fft);
    let speedup = folded_s / fft_s.max(1e-12);

    println!("spectrum_algos --quick: P=4095, N={PAPER_CYCLES}, {reps} rep(s) per kernel");
    println!("folded : {:>9.3} ms per spectrum", folded_s * 1e3);
    println!("fft    : {:>9.3} ms per spectrum", fft_s * 1e3);
    println!("speedup: {speedup:.1}x  (peaks bit-identical)");

    clockmark_obs::gauge_set("bench.spectrum_folded_seconds", folded_s);
    clockmark_obs::gauge_set("bench.spectrum_fft_seconds", fft_s);
    clockmark_obs::gauge_set("bench.spectrum_fft_speedup", speedup);
    clockmark_obs::gauge_set("bench.cores", cores as f64);

    if cores >= 4 {
        assert!(
            speedup >= 5.0,
            "expected the FFT kernel to be >= 5x faster than folded at \
             P=4095/N={PAPER_CYCLES}; measured {speedup:.1}x"
        );
        println!("acceptance: >= 5x FFT speedup with {cores} cores — met");
    } else {
        clockmark_obs::warn!(
            "spectrum_algos: {cores} core(s) make wall-clock ratios unreliable; measured \
             {speedup:.1}x recorded as a metric, the >= 5x acceptance check applies on \
             machines with >= 4 cores"
        );
        println!(
            "note: {cores} core(s); measured {speedup:.1}x recorded; the >= 5x acceptance \
             check applies on machines with >= 4 cores"
        );
    }

    soa_vs_scalar(&pattern, &y, &folded_ref, fft_s, cores, reps);
}

/// Times the shipped SoA fold/correlate kernels against the embedded
/// pre-SoA scalar references, asserts bit-identity, and writes the
/// `fold` and `spectrum` sections of `BENCH_6.json`.
fn soa_vs_scalar(
    pattern: &[bool],
    y: &[f64],
    folded_ref: &SpreadSpectrum,
    fft_s: f64,
    cores: usize,
    reps: u32,
) {
    // Bit-identity first — this is a hard failure regardless of core
    // count: the SoA rewrite is only admissible because every rho (and
    // therefore every floor statistic and checkpointed fold state) is
    // reproduced bit for bit.
    let reference_rho = scalar_spectrum(pattern, y);
    assert_eq!(reference_rho.len(), folded_ref.rho().len());
    for (r, (a, b)) in reference_rho.iter().zip(folded_ref.rho()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "SoA folded spectrum diverges from the scalar reference at rotation {r}: {a} vs {b}"
        );
    }

    let period = pattern.len();
    let time_n = |n: u32, f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(n)
    };
    let time = |f: &mut dyn FnMut()| time_n(reps, f);

    // Fold only: the streaming accumulator (the SoA kernel's public
    // wrapper — what campaign workers run per chunk) vs the fused loop.
    // A fold pass is sub-millisecond, so it gets many more reps than the
    // full spectra for a stable ratio.
    let fold_reps = reps * 20;
    let fold_scalar_s = time_n(fold_reps, &mut || {
        black_box(scalar_fold(period, black_box(y)));
    });
    let fold_soa_s = time_n(fold_reps, &mut || {
        let mut s = StreamingCpa::new(pattern).expect("valid pattern");
        s.push_chunk(black_box(y));
        black_box(s.cycles());
    });
    let fold_speedup = fold_scalar_s / fold_soa_s.max(1e-12);

    // Fold + rotation sweep: the full folded spectrum both ways.
    let spectrum_scalar_s = time(&mut || {
        black_box(scalar_spectrum(pattern, black_box(y)));
    });
    let detector =
        Detector::with_options(pattern, DetectOptions::default().with_algo(CpaAlgo::Folded))
            .expect("valid pattern");
    let spectrum_soa_s = time(&mut || {
        black_box(detector.spectrum(black_box(y)).expect("valid"));
    });
    let spectrum_speedup = spectrum_scalar_s / spectrum_soa_s.max(1e-12);

    println!("SoA kernels vs pre-SoA scalar references ({reps} rep(s)):");
    println!(
        "fold     : scalar {:>8.3} ms, SoA {:>8.3} ms — {fold_speedup:.1}x",
        fold_scalar_s * 1e3,
        fold_soa_s * 1e3
    );
    println!(
        "spectrum : scalar {:>8.3} ms, SoA {:>8.3} ms — {spectrum_speedup:.1}x  (bit-identical)",
        spectrum_scalar_s * 1e3,
        spectrum_soa_s * 1e3
    );

    clockmark_obs::gauge_set("bench.fold_soa_speedup", fold_speedup);
    clockmark_obs::gauge_set("bench.spectrum_soa_speedup", spectrum_speedup);

    let json_path = clockmark_bench::bench_json_path();
    let fold_section = format!(
        r#"{{"scalar_seconds": {fold_scalar_s:.6}, "soa_seconds": {fold_soa_s:.6}, "speedup": {fold_speedup:.2}}}"#
    );
    let spectrum_section = format!(
        r#"{{"scalar_seconds": {spectrum_scalar_s:.6}, "soa_seconds": {spectrum_soa_s:.6}, "speedup": {spectrum_speedup:.2}, "fft_seconds": {fft_s:.6}, "bit_identical": true}}"#
    );
    let scale_section = format!(
        r#"{{"cycles": {PAPER_CYCLES}, "period": {period}, "cores": {cores}, "reps": {reps}}}"#
    );
    for (key, value) in [
        ("bench", "\"BENCH_6\"".to_owned()),
        ("paper_scale", scale_section),
        ("fold", fold_section),
        ("spectrum", spectrum_section),
    ] {
        clockmark_bench::merge_bench_section(&json_path, key, &value)
            .unwrap_or_else(|e| panic!("writing {}: {e}", json_path.display()));
    }
    println!("wrote fold/spectrum sections to {}", json_path.display());

    if cores >= 4 {
        assert!(
            spectrum_speedup >= 4.0,
            "expected the SoA fold+correlate path to be >= 4x faster than the scalar \
             reference at P={period}/N={PAPER_CYCLES}; measured {spectrum_speedup:.1}x"
        );
        println!("acceptance: >= 4x SoA fold+spectrum speedup with {cores} cores — met");
    } else {
        clockmark_obs::warn!(
            "spectrum_algos: {cores} core(s); SoA speedups recorded ({fold_speedup:.1}x fold, \
             {spectrum_speedup:.1}x spectrum); the >= 4x acceptance check applies on \
             machines with >= 4 cores"
        );
        println!(
            "note: {cores} core(s); measured {fold_speedup:.1}x fold / {spectrum_speedup:.1}x \
             spectrum; the >= 4x acceptance check applies on machines with >= 4 cores"
        );
    }
}

criterion_group!(benches, bench_spectrum_algos, bench_bluestein_planning);

fn main() {
    if clockmark_bench::has_flag("--quick") {
        clockmark_bench::obs_scope("spectrum_algos_quick", quick_smoke);
        return;
    }
    benches();
}
