//! Table I: power consumption of the placed-and-routed load circuit —
//! the clock-gated 1,024-register block with 0/256/512/1,024 registers
//! also switching data.
//!
//! Regenerated two independent ways: the analytic roll-up of the paper's
//! PrimeTime constants, and the cycle-accurate simulator with `WMARK`
//! pinned high. The two must agree exactly.
//!
//! Paper column: 1.51 / 1.80 / 2.09 / 2.66 mW dynamic, ≈ 0.40 µW static.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin table1_load_power
//! ```

use clockmark::prelude::*;
use clockmark_netlist::Netlist;
use clockmark_power::tables::TableModel;
use clockmark_power::{EnergyLibrary, Frequency, Power, PowerModel};
use clockmark_sim::{CycleSim, SignalDriver};

fn simulated(switching: u32) -> Result<Power, clockmark::ClockmarkError> {
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let arch = ClockModulationWatermark {
        switching_registers: switching,
        wgc: WgcConfig::CircularShift {
            pattern: vec![true],
        },
        ..ClockModulationWatermark::paper()
    };
    let wm = arch.embed(&mut netlist, clk.into())?;
    let mut sim = CycleSim::new(&netlist)?;
    sim.drive(wm.enable, SignalDriver::Constant(true))?;
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let activity = sim.run(16)?;
    let trace = model.group_trace(&activity, wm.group);
    // Remove the single constant-on WGC register's clock power.
    Ok(trace.mean() - model.library().reg_clock_power(model.clock_frequency()))
}

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("table1_load_power", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    let table = TableModel::paper();
    let paper_mw = [1.51, 1.80, 2.09, 2.66];

    println!("Table I — power of the clock-modulated load circuit (1,024 registers)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "switching", "analytic", "simulated", "static", "total", "paper", "share"
    );
    for (row, paper) in table.table1().iter().zip(paper_mw) {
        let sim_power = simulated(row.switching_registers)?;
        let delta = (sim_power.watts() - row.dynamic.watts()).abs() / row.dynamic.watts();
        assert!(
            delta < 1e-9,
            "simulator disagrees with analytic model by {delta}"
        );
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>7.2} mW {:>7.1}%",
            row.switching_registers,
            row.dynamic.to_string(),
            sim_power.to_string(),
            row.static_power.to_string(),
            row.total.to_string(),
            paper,
            row.load_share_pct,
        );
        assert!(
            (row.dynamic.milliwatts() - paper).abs() < 0.01,
            "dynamic column must match the paper"
        );
    }
    println!(
        "\nclock-buffer power dominates: row 1 (no data switching) is already {:.0} % of row 4",
        table.table1()[0].dynamic / table.table1()[3].dynamic * 100.0
    );
    Ok(())
}
