//! Fig. 2: functional simulation of the state-of-the-art (load circuit)
//! and proposed (clock modulation) watermark architectures.
//!
//! The paper's waveform shows `CLK`, `WMARK`, the load circuit's shift
//! enable and the proposed architecture's gated `CLK_WMARK`, and notes
//! that "the clock modulation technique produces higher switching
//! activity": the gated clock toggles the clock buffers twice per cycle,
//! worth 1.476 µW per register against 1.126 µW for data switching.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin fig2_waveforms
//! cargo run --release -p clockmark-bench --bin fig2_waveforms -- --vcd fig2.vcd
//! ```

use clockmark::prelude::*;
use clockmark_bench::wave;
use clockmark_netlist::Netlist;
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
use clockmark_sim::{CycleSim, SignalDriver, VcdProbe};

const CYCLES: usize = 24;

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("fig2_waveforms", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    // A WGC with a short, readable sequence for the waveform.
    let wgc = WgcConfig::CircularShift {
        pattern: vec![true, true, false, true, false, false],
    };

    // Proposed: one 8-register clock-gated word.
    let clock_mod = ClockModulationWatermark {
        words: 1,
        regs_per_word: 8,
        switching_registers: 0,
        wgc: wgc.clone(),
    };
    // State of the art: 8 load registers shifting 1010… when enabled.
    let load = LoadCircuitWatermark {
        load_registers: 8,
        regs_per_gate: 8,
        clock_gated: true,
        wgc: wgc.clone(),
    };

    let mut wmark_bits = Vec::new();
    let mut cm_clocks = Vec::new();
    let mut cm_toggles = Vec::new();
    let mut lc_toggles = Vec::new();

    // Proposed architecture trace (optionally dumped as VCD).
    let vcd_path = {
        let mut args = std::env::args();
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--vcd" {
                path = args.next();
            }
        }
        path
    };
    {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let wm = clock_mod.embed(&mut netlist, clk.into())?;
        let mut sim = CycleSim::new(&netlist)?;
        sim.drive(wm.enable, SignalDriver::Constant(true))?;

        let mut probe = vcd_path.as_ref().map(|_| {
            let mut probe = VcdProbe::new("fig2: proposed clock-modulation watermark");
            probe.watch_signal(wm.wmark, "WMARK");
            probe.watch_clock(wm.icg_cells[0], "CLK_WMARK");
            probe.watch_register(wm.body_cells[0], "body_q0");
            probe.watch_register(wm.wgc_cells[0], "wgc_q0");
            probe
        });

        for _ in 0..CYCLES {
            let act = sim.step()[wm.group.index()];
            if let Some(probe) = probe.as_mut() {
                probe.sample(&sim);
            }
            wmark_bits.push(sim.signal_value(wm.wmark));
            // Subtract the WGC ring's own clocks (6 registers).
            cm_clocks.push(act.reg_clock_events - 6);
            cm_toggles.push(act.reg_data_toggles.saturating_sub(6));
        }

        if let (Some(path), Some(probe)) = (&vcd_path, probe) {
            let mut out = Vec::new();
            probe.write(&mut out).expect("writing to a Vec cannot fail");
            std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {path}\n");
        }
    }
    // Baseline architecture trace.
    {
        let mut netlist = Netlist::new();
        let clk = netlist.add_clock_root("clk");
        let wm = load.embed(&mut netlist, clk.into())?;
        let mut sim = CycleSim::new(&netlist)?;
        sim.drive(wm.enable, SignalDriver::Constant(true))?;
        for _ in 0..CYCLES {
            let act = sim.step()[wm.group.index()];
            lc_toggles.push(act.reg_data_toggles.saturating_sub(6));
        }
    }

    println!("Fig. 2 — functional simulation, {CYCLES} cycles, 8-register body\n");
    let row = |label: &str, bits: &dyn Fn(usize) -> bool| {
        let glyphs: String = (0..CYCLES).map(|c| wave(bits(c))).collect();
        println!("{label:<26} {glyphs}");
    };
    row("CLK (free-running)", &|_| true);
    row("WMARK", &|c| wmark_bits[c]);
    row("shift_en (baseline)", &|c| wmark_bits[c]);
    row("CLK_WMARK (proposed)", &|c| cm_clocks[c] > 0);

    println!("\nper-cycle switching events in the 8-register body:");
    let counts = |label: &str, values: &[u32]| {
        let rendered: String = values.iter().map(|v| format!("{v:>3}")).collect();
        println!("{label:<26}{rendered}");
    };
    counts("baseline data toggles", &lc_toggles);
    counts("proposed clocked regs", &cm_clocks);

    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    println!(
        "\nper-register signal power: proposed (clock buffers) {} vs baseline (data) {} — \
         the clock path is {:.2}x stronger, as Section II argues",
        model.library().reg_clock_power(model.clock_frequency()),
        model.library().reg_data_power(model.clock_frequency()),
        model.library().reg_clock_power(model.clock_frequency())
            / model.library().reg_data_power(model.clock_frequency()),
    );
    let _ = cm_toggles;
    Ok(())
}
