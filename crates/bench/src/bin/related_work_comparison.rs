//! The paper's Section I positioning, made executable: compare the three
//! soft-IP protection families on area, detection requirements and
//! robustness.
//!
//! - **FSM watermarking** \[5\]–\[9\]: signature states in the controller;
//!   near-zero area, but detection needs the device's I/O ports and design
//!   knowledge.
//! - **Load-circuit power watermark** \[10\], \[12\]: detected through the
//!   power rail, but hundreds of dedicated registers.
//! - **Clock-modulation power watermark** (the paper): power-rail
//!   detection at FSM-level area.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin related_work_comparison
//! ```

use clockmark::prelude::*;
use clockmark::{removal_attack, FunctionalBlock};
use clockmark_fsm::{embed_signature, reachability, verify_signature, Fsm, Key};
use clockmark_netlist::Netlist;
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};

fn controller() -> Fsm {
    // A 12-state control FSM using half its input alphabet functionally.
    let mut fsm = Fsm::new(12, 4, 4).expect("valid dims");
    for s in 0..12 {
        fsm.specify(s, 0, (s + 1) % 12, (s % 4) as u8)
            .expect("fresh");
        fsm.specify(s, 1, 0, 3).expect("fresh");
    }
    fsm
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    clockmark_bench::obs_scope("related_work_comparison", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let wgc = WgcConfig::MaxLengthLfsr { width: 8, seed: 1 };

    // --- 1. FSM watermark --------------------------------------------------
    let fsm = controller();
    let key = Key {
        inputs: vec![2, 3, 2, 3],
        signature: vec![1, 0, 2, 3],
    };
    let wm_fsm = embed_signature(&fsm, &key)?;
    let fsm_detected = verify_signature(&wm_fsm.fsm, &key)?;
    let exposure = reachability::exposure(&wm_fsm.fsm, &[0, 1])?;

    // --- 2. load-circuit power watermark ------------------------------------
    let load = LoadCircuitWatermark {
        wgc: wgc.clone(),
        ..LoadCircuitWatermark::paper_equivalent()
    };
    let mut load_netlist = Netlist::new();
    let clk = load_netlist.add_clock_root("clk");
    let load_wm = load.embed(&mut load_netlist, clk.into())?;

    // --- 3. clock-modulation power watermark (reused IP deployment) ---------
    let proposed = ClockModulationWatermark {
        wgc,
        ..ClockModulationWatermark::paper()
    };
    let mut cm_netlist = Netlist::new();
    let clk = cm_netlist.add_clock_root("clk");
    let block = FunctionalBlock::synthesize(&mut cm_netlist, "ip", clk.into(), 32, 32)?;
    let cm_wm = proposed.embed_reusing(&mut cm_netlist, clk.into(), &block)?;

    // The two power-watermark detection experiments are independent; run
    // them on worker threads (CLOCKMARK_THREADS overrides the count).
    let jobs = [true, false];
    let mut outcomes = clockmark::parallel_map(&jobs, clockmark_cpa::thread_count(), |&is_load| {
        if is_load {
            Experiment::quick(15_000, 31).run(&load)
        } else {
            let drivers: Vec<_> = block
                .enables
                .iter()
                .map(|&e| (e, clockmark_sim::SignalDriver::Constant(true)))
                .collect();
            Experiment::quick(15_000, 32).run_embedded_with(&cm_netlist, &cm_wm, drivers)
        }
    })
    .into_iter();
    let load_outcome = outcomes.next().expect("two jobs")?;
    let cm_outcome = outcomes.next().expect("two jobs")?;
    let load_attack = removal_attack(&load_netlist, &load_wm)?;
    let cm_attack = removal_attack(&cm_netlist, &cm_wm)?;

    println!("related-work comparison (Section I, made executable)\n");
    println!(
        "{:<34} {:>14} {:>12} {:>12} {:>16} {:>18}",
        "technique", "dedicated area", "needs I/O", "power rail", "detected here", "removal attack"
    );
    println!(
        "{:<34} {:>14} {:>12} {:>12} {:>16} {:>18}",
        "FSM watermark [5]-[9]",
        format!("{} state regs", wm_fsm.register_overhead()),
        "yes",
        "no",
        if fsm_detected { "yes (with key)" } else { "no" },
        "hidden states",
    );
    println!(
        "{:<34} {:>14} {:>12} {:>12} {:>16} {:>18}",
        "load circuit [10],[12]",
        format!(
            "{} registers",
            load.dedicated_registers() + load.wgc_registers()
        ),
        "no",
        "yes",
        if load_outcome.detection.detected {
            "yes (CPA)"
        } else {
            "no"
        },
        if load_attack.standalone {
            "clean removal"
        } else {
            "breaks system"
        },
    );
    println!(
        "{:<34} {:>14} {:>12} {:>12} {:>16} {:>18}",
        "clock modulation (this paper)",
        format!("{} registers", proposed.wgc_registers()),
        "no",
        "yes",
        if cm_outcome.detection.detected {
            "yes (CPA)"
        } else {
            "no"
        },
        if cm_attack.standalone {
            "clean removal"
        } else {
            "breaks system"
        },
    );

    println!("\ndetails:");
    println!(
        "  FSM: {} watermark states hidden from functional stimulus ({} of {} states reachable functionally); \
         verification requires applying a {}-symbol key at the device inputs",
        exposure.hidden_states().len(),
        exposure.functionally_reachable.len(),
        wm_fsm.fsm.state_count(),
        key.inputs.len(),
    );
    println!(
        "  load circuit: amplitude {}, peak rho {:.4}; stand-alone: {}",
        load.signal_amplitude(&model),
        load_outcome.detection.peak_rho,
        load_attack.standalone,
    );
    println!(
        "  clock modulation: amplitude {} from reused logic, peak rho {:.4}; removal damages {:.0} % of the host block",
        proposed.signal_amplitude(&model),
        cm_outcome.detection.peak_rho,
        cm_attack.impact_fraction() * 100.0,
    );
    println!(
        "\nthe paper's niche: power-rail detection (no I/O or design knowledge needed) at \
         FSM-watermark-class area, with removal robustness neither baseline offers"
    );

    assert!(fsm_detected && load_outcome.detection.detected && cm_outcome.detection.detected);
    assert!(load_attack.standalone && !cm_attack.standalone);
    Ok(())
}
