//! Fig. 3: the watermark power signal is deeply embedded in the total
//! device power.
//!
//! Reproduces the figure's three traces — system power, watermark power
//! and their sum — over a short window, plus the summary statistics that
//! make the "deeply embedded" point quantitative.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin fig3_power_embedding
//! ```

use clockmark::prelude::*;
use clockmark_netlist::Netlist;
use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
use clockmark_sim::{CycleSim, SignalDriver};
use clockmark_soc::Soc;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WINDOW: usize = 48;

fn bar(value: f64, full_scale: f64) -> String {
    let n = ((value / full_scale) * 40.0).round().max(0.0) as usize;
    "#".repeat(n.min(40))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    clockmark_bench::obs_scope("fig3_power_embedding", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ClockModulationWatermark {
        wgc: WgcConfig::CircularShift {
            // A readable slow pattern for the figure window.
            pattern: vec![true, true, true, true, false, false, false, false],
        },
        ..ClockModulationWatermark::paper()
    };

    // Watermark power trace.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    let wm = clockmark::WatermarkArchitecture::embed(&arch, &mut netlist, clk.into())?;
    let mut sim = CycleSim::new(&netlist)?;
    sim.drive(wm.enable, SignalDriver::Constant(true))?;
    let activity = sim.run(WINDOW)?;
    let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
    let watermark = model.group_trace(&activity, wm.group);

    // System (background) power trace.
    let mut soc = Soc::chip_i()?;
    let mut rng = StdRng::seed_from_u64(3);
    let system = soc.run(WINDOW, &mut rng)?;
    let total = system.checked_add(&watermark)?;

    let full_scale = total.max().expect("non-empty").watts();
    println!("Fig. 3 — watermark power embedded in total device power ({WINDOW} cycles)\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12}  total (bar)",
        "cycle", "system", "watermark", "total"
    );
    for c in 0..WINDOW {
        let s = system.get(c).expect("cycle");
        let w = watermark.get(c).expect("cycle");
        let t = total.get(c).expect("cycle");
        println!(
            "{c:>5} {:>12} {:>12} {:>12}  {}",
            s.to_string(),
            w.to_string(),
            t.to_string(),
            bar(t.watts(), full_scale)
        );
    }

    println!("\nsummary:");
    println!(
        "  system    : mean {}, std {}",
        system.mean(),
        system.std_dev()
    );
    println!(
        "  watermark : mean {}, peak {}",
        watermark.mean(),
        watermark.max().expect("non-empty")
    );
    println!(
        "  total     : mean {}, std {}",
        total.mean(),
        total.std_dev()
    );
    println!(
        "  watermark amplitude is {:.1} % of mean total power — visible here, but after the \
         measurement chain's noise it is only recoverable by correlation:",
        watermark.max().expect("non-empty").watts() / total.mean().watts() * 100.0
    );

    // Demonstrate: after digitisation the raw trace hides the watermark,
    // CPA still finds it.
    let outcome = Experiment::quick(15_000, 3).run(&ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ..arch
    })?;
    println!("  after digitisation: {}", outcome.detection);
    Ok(())
}
