//! Fig. 6: box plots of correlation coefficients over repeated
//! experiments (the paper repeats each chip's measurement 100 times).
//!
//! Expected result: off-peak medians near zero with a tight 95 % box; the
//! in-phase rotation's median far above the floor; the watermark detected
//! in every repetition.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin fig6_boxplots                # 20 reps
//! cargo run --release -p clockmark-bench --bin fig6_boxplots -- --reps 100 # paper scale
//! cargo run --release -p clockmark-bench --bin fig6_boxplots -- --quick
//! ```

use clockmark::prelude::*;
use clockmark_bench::{arg_value, has_flag};
use clockmark_cpa::RotationEnsemble;

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("fig6_boxplots", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    let quick = has_flag("--quick");
    let reps = arg_value("--reps", if quick { 10 } else { 20 });

    let (arch, base_i) = if quick {
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 10, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let mut e = Experiment::quick(40_000, 0);
        e.phase_offset = 380;
        (arch, e)
    } else {
        (
            ClockModulationWatermark::paper(),
            Experiment::paper_chip_i(),
        )
    };
    let mut base_ii = base_i.clone();
    base_ii.chip = ChipModel::ChipII;
    base_ii.phase_offset = if quick { 240 } else { 2_400 };

    for (title, base) in [("(a) chip I", base_i), ("(b) chip II", base_ii)] {
        let period = arch.wgc.period()?;
        let mut ensemble = RotationEnsemble::new(period);
        let mut detections = 0usize;
        // Repetitions are independent, so fan them across worker threads
        // (CLOCKMARK_THREADS overrides the count); seed order is preserved.
        let seeds = 1000..1000 + reps as u64;
        let outcomes = ExperimentBatch::repeat_with_seeds(&base, seeds).run(&arch)?;
        for outcome in &outcomes {
            detections += outcome.detection.detected as usize;
            ensemble.add(&outcome.spectrum)?;
        }

        let (peak_rot, peak) = ensemble.peak_rotation().expect("has runs");
        let floor = ensemble.floor_stats().expect("has runs");
        println!("==== Fig. 6{title}: {reps} repetitions ====");
        println!("detections: {detections}/{reps} (paper: 100/100)");
        println!(
            "peak rotation {peak_rot}: median {:+.5}, 95% box [{:+.5}, {:+.5}], extremes [{:+.5}, {:+.5}]",
            peak.median, peak.q_low, peak.q_high, peak.min, peak.max
        );
        println!(
            "floor (all other rotations pooled): median {:+.5}, 95% box [{:+.5}, {:+.5}], extremes [{:+.5}, {:+.5}]",
            floor.median, floor.q_low, floor.q_high, floor.min, floor.max
        );
        println!(
            "separation: worst peak sample {:+.5} vs floor 97.5th percentile {:+.5}\n",
            peak.min, floor.q_high
        );
        assert_eq!(
            detections, reps,
            "every repetition must detect, as in the paper"
        );
        assert!(
            peak.min > floor.q_high,
            "the peak box must clear the floor box"
        );
    }
    Ok(())
}
