//! Benchmarks the adversarial scenario engine — the attack × defense ×
//! SNR matrix — and writes the results into `BENCH_10.json`:
//!
//! - `scenario_matrix`: the full default matrix over a marked corpus,
//!   with wall time and per-cell detection rates.
//! - `adversarial_acceptance` (asserted): the headline story cells at
//!   snr 1 — plain detection survives no attack at rate 1, jamming
//!   defeats plain detection but not the multi-watermark defense, and a
//!   replay forgery cannot answer the challenge-response.
//! - `identity_equivalence` (asserted): a scenario whose only cell is
//!   the identity reproduces a plain campaign's `report.json`
//!   byte-for-byte, with both wall times.
//! - `scenario_resume` (asserted): an interrupted-and-resumed scenario
//!   campaign reproduces the uninterrupted merged report byte-for-byte.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin scenario_matrix            # full run
//! cargo run --release -p clockmark-bench --bin scenario_matrix -- --quick # CI smoke
//! ```

use clockmark::campaign::{Campaign, CampaignLimits, CampaignSpec};
use clockmark::corpus::{Corpus, TraceHeader};
use clockmark::{AttackSpec, DefenseSpec, ScenarioCampaign, ScenarioMatrix, ScenarioReport};
use clockmark_bench::{bench_json_named, has_flag, merge_bench_section};
use clockmark_seq::{Lfsr, SequenceGenerator};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("cm_scenario_matrix_{}", std::process::id()));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The paper's watermark sequence: a maximal LFSR, period 63.
fn pattern() -> Vec<bool> {
    let mut lfsr = Lfsr::maximal(6).expect("valid width");
    (0..63).map(|_| lfsr.next_bit()).collect()
}

/// The fixture's power scale: the watermark amplitude and measurement
/// noise σ the synthetic traces are built with (the scenario unit tests
/// pin the same regime). Attack and defense parameters below are sized
/// against these, not against the default axes' chip-scale watts.
const AMP_WATTS: f64 = 0.4;
const NOISE_WATTS: f64 = 0.05;

/// A marked trace: 1 W idle floor, the watermark at [`AMP_WATTS`], and
/// deterministic gaussian measurement noise.
fn trace(pattern: &[bool], cycles: usize, phase: usize, seed: u64) -> Vec<f64> {
    (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + phase) % pattern.len()] {
                AMP_WATTS
            } else {
                0.0
            };
            1.0 + wm + NOISE_WATTS * clockmark::attack::hash_gaussian(seed, i as u64)
        })
        .collect()
}

/// A corpus of `count` marked traces (every job should detect under no
/// attack, so cell rates read directly as survival rates).
fn build_corpus(dir: &Path, pattern: &[bool], count: usize, cycles: usize) -> Vec<String> {
    let mut corpus = Corpus::create(dir).expect("creates corpus");
    let mut names = Vec::new();
    for i in 0..count {
        let name = format!("marked_{i}");
        let w = trace(pattern, cycles, 7 + i, 4000 + i as u64);
        corpus.add(&name, TraceHeader::bare(0), &w).expect("adds");
        names.push(name);
    }
    names
}

/// The matrix with every axis explicit: the default axes carry
/// chip-scale watts (a 1.5 mW jam is invisible next to a 0.4 W
/// watermark), so the adversary budgets are restated on the fixture's
/// scale — exactly what an operator edits in `scenarios.json`.
fn matrix(
    corpus: &Path,
    pattern: &[bool],
    names: &[String],
    cycles: usize,
    snrs: Vec<f64>,
) -> ScenarioMatrix {
    let period = pattern.len();
    let mut matrix = ScenarioMatrix::new(corpus, pattern.to_vec(), names.to_vec());
    matrix.snrs = snrs;
    matrix.seed = 0xC10C_0000_0000_0A10;
    matrix.amplitude_watts = AMP_WATTS;
    matrix.noise_watts = NOISE_WATTS;
    matrix.attacks = vec![
        AttackSpec::None,
        AttackSpec::ClockJitter { sigma_cycles: 2.0 },
        AttackSpec::Dvfs {
            dwell_cycles: 2_048,
            max_shift: 32,
        },
        AttackSpec::GateDisable {
            fraction: 0.5,
            estimate_cycles: 16_384,
        },
        AttackSpec::Jamming {
            amplitude_watts: AMP_WATTS,
        },
        // The forger captures the first half of the trace: enough to
        // estimate the watermark (and the first challenge window), but
        // the second challenge window's phase lies outside the capture.
        AttackSpec::Replay {
            estimate_cycles: (cycles / 2) as u64,
            noise_watts: 0.02,
        },
    ];
    matrix.defenses = vec![
        DefenseSpec::None,
        DefenseSpec::MultiWatermark {
            extra_widths: vec![5, 7],
        },
        DefenseSpec::SeedHopping {
            dwell_cycles: (period * 16) as u64,
        },
        DefenseSpec::ChallengeResponse { phase_delta: 17 },
    ];
    matrix
}

fn main() {
    clockmark_bench::obs_scope("scenario_matrix", run);
}

fn run() {
    let quick = has_flag("--quick");
    let cycles = 63 * if quick { 64 } else { 128 };
    let traces = if quick { 2 } else { 3 };
    println!("scenario_matrix: {traces} trace(s) x {cycles} cycles{}", {
        if quick {
            " (quick)"
        } else {
            ""
        }
    });

    let path = bench_json_named("BENCH_10.json");
    let dir = TempDir::new();
    let pattern = pattern();
    let corpus_dir = dir.0.join("corpus");
    let names = build_corpus(&corpus_dir, &pattern, traces, cycles);

    let report = full_matrix(&path, &dir.0, &corpus_dir, &pattern, &names, cycles);
    adversarial_acceptance(&path, &report);
    identity_equivalence(&path, &dir.0, &corpus_dir, &pattern, &names, cycles);
    scenario_resume(&path, &dir.0, &corpus_dir, &pattern, &names, cycles);
    println!("report       : {}", path.display());
}

/// Phase 1 — the full default attack × defense matrix at snr 1 and a
/// degraded snr, timed end to end through the campaign machinery.
fn full_matrix(
    path: &Path,
    dir: &Path,
    corpus_dir: &Path,
    pattern: &[bool],
    names: &[String],
    cycles: usize,
) -> ScenarioReport {
    let matrix = matrix(corpus_dir, pattern, names, cycles, vec![0.25, 1.0]);
    let (attacks, defenses, snrs) = (
        matrix.attacks.len(),
        matrix.defenses.len(),
        matrix.snrs.len(),
    );
    let cells = attacks * defenses * snrs;
    let jobs = cells * names.len();
    let campaign = ScenarioCampaign::create(dir.join("matrix"), matrix).expect("creates");
    let t0 = Instant::now();
    let status = campaign.run(&CampaignLimits::none()).expect("runs");
    let wall = t0.elapsed().as_secs_f64();
    assert!(status.is_complete(), "matrix did not complete: {status}");
    let report = campaign.report().expect("complete");

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"attacks\": {attacks}, \"defenses\": {defenses}, \"snrs\": {snrs}, \"traces\": {}, \
         \"cycles\": {cycles}, \"jobs\": {jobs}, \"wall_seconds\": {:.4}, \
         \"jobs_per_sec\": {:.1}, \"rates\": {{",
        names.len(),
        wall,
        jobs as f64 / wall.max(1e-9),
    );
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}|{}|{}\": {:.2}",
            cell.attack,
            cell.defense,
            cell.snr,
            cell.rate()
        );
    }
    out.push_str("}}");
    merge_bench_section(path, "scenario_matrix", &out).expect("writes");
    println!(
        "matrix       : {cells} cells / {jobs} jobs in {wall:.3}s ({:.0} jobs/s)",
        jobs as f64 / wall.max(1e-9)
    );
    report
}

/// Phase 2 — the headline adversarial story, asserted so a regression in
/// any attack or defense fails the bench rather than shifting a number.
fn adversarial_acceptance(path: &Path, report: &ScenarioReport) {
    let rate = |attack: &str, defense: &str| {
        report
            .cell(attack, defense, 1.0)
            .unwrap_or_else(|| panic!("missing cell {attack}/{defense}"))
            .rate()
    };
    let none_none = rate("none", "none");
    let jamming_none = rate("jamming", "none");
    let jamming_multi = rate("jamming", "multi_watermark");
    let replay_challenge = rate("replay", "challenge_response");
    assert!(
        none_none == 1.0,
        "plain detection must be clean without an attack, got {none_none}"
    );
    assert!(
        jamming_none == 0.0,
        "LFSR-spectrum jamming must defeat plain detection, got {jamming_none}"
    );
    assert!(
        jamming_multi == 1.0,
        "the multi-watermark defense must survive jamming, got {jamming_multi}"
    );
    assert!(
        replay_challenge == 0.0,
        "a replay forgery must fail the challenge-response, got {replay_challenge}"
    );
    let value = format!(
        "{{\"none_none\": {none_none}, \"jamming_none\": {jamming_none}, \
         \"jamming_multi_watermark\": {jamming_multi}, \
         \"replay_challenge_response\": {replay_challenge}, \"asserted\": true}}"
    );
    merge_bench_section(path, "adversarial_acceptance", &value).expect("writes");
    println!(
        "acceptance   : none/none {none_none}, jamming/none {jamming_none}, \
         jamming/multi {jamming_multi}, replay/challenge {replay_challenge}"
    );
}

/// Phase 3 — the API-redesign contract: the identity cell is the plain
/// campaign, byte for byte, and costs about the same.
fn identity_equivalence(
    path: &Path,
    dir: &Path,
    corpus_dir: &Path,
    pattern: &[bool],
    names: &[String],
    cycles: usize,
) {
    let mut spec = CampaignSpec::new(corpus_dir, pattern.to_vec(), names.to_vec());
    let mut id_matrix = matrix(corpus_dir, pattern, names, cycles, vec![1.0]);
    id_matrix.attacks = vec![AttackSpec::None];
    id_matrix.defenses = vec![DefenseSpec::None];
    spec.criterion = id_matrix.criterion;
    spec.algo = id_matrix.algo;

    let plain = Campaign::create(dir.join("plain"), spec).expect("creates");
    let t0 = Instant::now();
    plain.run(&CampaignLimits::none()).expect("runs");
    let plain_seconds = t0.elapsed().as_secs_f64();

    let scenario = ScenarioCampaign::create(dir.join("identity"), id_matrix).expect("creates");
    let t0 = Instant::now();
    scenario.run(&CampaignLimits::none()).expect("runs");
    let scenario_seconds = t0.elapsed().as_secs_f64();

    let want = std::fs::read(dir.join("plain/report.json")).expect("plain report");
    let got =
        std::fs::read(dir.join("identity/cells/c000_none_none/report.json")).expect("cell report");
    assert_eq!(got, want, "identity cell diverged from the plain campaign");

    let value = format!(
        "{{\"traces\": {}, \"cycles\": {cycles}, \"plain_seconds\": {plain_seconds:.4}, \
         \"scenario_seconds\": {scenario_seconds:.4}, \"byte_identical\": true}}",
        names.len()
    );
    merge_bench_section(path, "identity_equivalence", &value).expect("writes");
    println!(
        "identity     : byte-identical (plain {plain_seconds:.3}s, scenario {scenario_seconds:.3}s)"
    );
}

/// Phase 4 — kill-anywhere resume: drip-feed the campaign one job at a
/// time, re-opening from disk every pass, and compare the merged report
/// against an uninterrupted reference.
fn scenario_resume(
    path: &Path,
    dir: &Path,
    corpus_dir: &Path,
    pattern: &[bool],
    names: &[String],
    cycles: usize,
) {
    let snrs = vec![1.0];
    let reference = ScenarioCampaign::create(
        dir.join("resume_reference"),
        matrix(corpus_dir, pattern, names, cycles, snrs.clone()),
    )
    .expect("creates");
    assert!(reference
        .run(&CampaignLimits::none())
        .expect("runs")
        .is_complete());

    ScenarioCampaign::create(
        dir.join("resume_interrupted"),
        matrix(corpus_dir, pattern, names, cycles, snrs),
    )
    .expect("creates");
    let step = CampaignLimits {
        max_jobs: Some(1),
        interrupt_job_after_cycles: Some(97),
    };
    let mut passes = 0usize;
    loop {
        passes += 1;
        assert!(passes < 10_000, "resume failed to converge");
        let campaign = ScenarioCampaign::open(dir.join("resume_interrupted")).expect("opens");
        if campaign.run(&step).expect("runs").is_complete() {
            break;
        }
    }

    let want = std::fs::read(dir.join("resume_reference/report.json")).expect("reference report");
    let got = std::fs::read(dir.join("resume_interrupted/report.json")).expect("resumed report");
    assert_eq!(got, want, "resumed merged report diverged");

    let status = reference.status().expect("status");
    let value = format!(
        "{{\"cells\": {}, \"jobs\": {}, \"interrupted_passes\": {passes}, \
         \"byte_identical\": true}}",
        status.cells_total, status.jobs_total
    );
    merge_bench_section(path, "scenario_resume", &value).expect("writes");
    println!("resume       : byte-identical after {passes} interrupted passes");
}
