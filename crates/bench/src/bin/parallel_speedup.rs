//! Wall-clock comparison of the serial experiment loop against the
//! [`ExperimentBatch`] std-thread engine on a repetition sweep, verifying
//! along the way that the two produce bit-identical outcomes.
//!
//! The sweep mirrors the Fig. 6 repetition study: the same experiment
//! re-run once per seed. Every run is independent, so the batch runner's
//! speedup should approach the machine's core count. On a single-core
//! machine the two necessarily tie (the ≥ 2× acceptance check is applied
//! only when at least 4 cores are available).
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin parallel_speedup                 # 16 seeds
//! cargo run --release -p clockmark-bench --bin parallel_speedup -- --seeds 50
//! cargo run --release -p clockmark-bench --bin parallel_speedup -- --quick
//! CLOCKMARK_THREADS=2 cargo run --release -p clockmark-bench --bin parallel_speedup
//! ```

use clockmark::prelude::*;
use clockmark_bench::{arg_value, has_flag};
use std::time::Instant;

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("parallel_speedup", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    let quick = has_flag("--quick");
    let seeds = arg_value("--seeds", 16) as u64;
    let cycles = if quick { 4_000 } else { 12_000 };

    let arch = ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width: 8, seed: 1 },
        ..ClockModulationWatermark::paper()
    };
    let base = Experiment::quick(cycles, 0);
    let threads = clockmark_cpa::thread_count();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!("parallel experiment engine: {seeds}-seed sweep, {cycles} cycles per run");
    println!(
        "machine: {cores} core(s); using {threads} worker thread(s) \
         (set CLOCKMARK_THREADS to override)\n"
    );

    // One untimed run primes the allocator and caches for both sides.
    base.clone().with_seed(u64::MAX).run(&arch)?;

    let start = Instant::now();
    let serial = (0..seeds)
        .map(|seed| base.clone().with_seed(seed).run(&arch))
        .collect::<Result<Vec<_>, _>>()?;
    let serial_time = start.elapsed();

    let start = Instant::now();
    let (parallel, report) =
        ExperimentBatch::repeat_with_seeds(&base, 0..seeds).run_reported(&arch)?;
    let parallel_time = start.elapsed();

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.detection.peak_rho.to_bits(),
            b.detection.peak_rho.to_bits(),
            "scheduling must not change any outcome"
        );
        assert_eq!(a.spectrum.rho(), b.spectrum.rho());
    }

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    println!("serial loop  : {serial_time:>10.2?}");
    println!("batch runner : {parallel_time:>10.2?}  ({threads} thread(s))");
    println!(
        "speedup      : {speedup:.2}x  (engine estimate {:.2}x)",
        report.speedup_estimate()
    );
    println!();
    println!("per-worker utilisation (busy time / batch wall time):");
    for worker in &report.workers {
        println!(
            "  worker {:>2}: {:>4} experiment(s), busy {:>9.2?} ({:>5.1}% util)",
            worker.worker,
            worker.items,
            worker.busy,
            100.0 * report.utilisation(worker),
        );
    }
    println!("\nall {seeds} outcomes bit-identical between the two runs");

    // Record the measurement whether or not the machine can demonstrate
    // parallelism; the hard acceptance check only applies with >= 4 cores.
    clockmark_obs::gauge_set("bench.speedup_measured", speedup);
    clockmark_obs::gauge_set("bench.cores", cores as f64);
    if cores >= 4 && threads >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup with {cores} cores and {threads} threads, measured {speedup:.2}x"
        );
        println!("acceptance: >= 2x speedup with {cores} cores — met");
    } else {
        clockmark_obs::warn!(
            "parallel_speedup: {cores} core(s) / {threads} thread(s) cannot demonstrate \
             parallel speedup; measured {speedup:.2}x recorded as a metric, >= 2x acceptance \
             check applies on machines with >= 4 cores"
        );
        println!(
            "note: {cores} core(s) / {threads} thread(s) cannot demonstrate parallel speedup; \
             measured {speedup:.2}x recorded; the >= 2x acceptance check applies on machines \
             with >= 4 cores"
        );
    }
    Ok(())
}
