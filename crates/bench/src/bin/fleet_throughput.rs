//! Benchmarks the fleet subsystem along its two headline axes and
//! writes the results into `BENCH_8.json`:
//!
//! * **scaling** — one corpus campaign coordinated across 1, 2 and 4
//!   local worker nodes versus the single-node baseline, with every
//!   merged `report.json` checked byte-for-byte against the baseline's;
//! * **idle capacity** — the poll-based readiness engine holding a pile
//!   of idle sessions on one node while a probe still gets full detect
//!   service.
//!
//! Workers are spawned as real `clockmark-cli fleet serve` processes
//! when the binary sits next to this one (a normal
//! `cargo build --release` workspace), falling back to in-process
//! servers otherwise. The >= 1.7x (2 workers) and >= 3x (4 workers)
//! speedup acceptance gates are enforced only on hosts with >= 4 cores;
//! below that the numbers are recorded and warned about, since local
//! workers cannot scale past the physical core count.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin fleet_throughput
//! cargo run --release -p clockmark-bench --bin fleet_throughput -- --quick
//! ```

use clockmark::{Campaign, CampaignLimits, CampaignSpec};
use clockmark_bench::{bench_json_named, has_flag, merge_bench_section};
use clockmark_corpus::{Corpus, TraceHeader};
use clockmark_fleet::{run_fleet, FleetConfig, ShardWorker};
use clockmark_serve::{ServeLimits, Server, ServerHandle};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("cm_fleet_bench_{}", std::process::id()));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// One worker node: a real `fleet serve` process when the CLI binary is
/// available, an in-process server otherwise.
enum Worker {
    Process(Child),
    InProcess(ServerHandle),
}

impl Worker {
    fn shutdown(self) {
        match self {
            Worker::Process(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Worker::InProcess(handle) => {
                handle.shutdown();
            }
        }
    }
}

/// `clockmark-cli` next to this bench binary, if built.
fn cli_path() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let cli = exe.parent()?.join("clockmark-cli");
    cli.is_file().then_some(cli)
}

fn spawn_worker(cli: Option<&Path>) -> (Worker, String) {
    match cli {
        Some(cli) => {
            let mut child = Command::new(cli)
                .args(["fleet", "serve", "--addr", "127.0.0.1:0", "--threads", "1"])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawns fleet serve");
            let stdout = child.stdout.take().expect("piped stdout");
            let mut line = String::new();
            BufReader::new(stdout)
                .read_line(&mut line)
                .expect("reads listen line");
            let addr = line
                .trim()
                .strip_prefix("listening on ")
                .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
                .to_owned();
            (Worker::Process(child), addr)
        }
        None => {
            let handle = Server::new()
                .with_fleet(Arc::new(ShardWorker::new().with_threads(1)))
                .with_limits(ServeLimits {
                    max_sessions: 16,
                    idle_timeout: Duration::from_secs(300),
                    ..ServeLimits::default()
                })
                .bind("127.0.0.1:0")
                .expect("bind worker");
            let addr = handle.local_addr().to_string();
            (Worker::InProcess(handle), addr)
        }
    }
}

/// Aperiodic xorshift watermark (periodic patterns tie with their own
/// rotations and fail the peak-uniqueness criterion).
fn pattern(period: usize) -> Vec<bool> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..period)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

fn build_fixture(dir: &Path, traces: usize, cycles: usize) -> CampaignSpec {
    let corpus_dir = dir.join("corpus");
    let pattern = pattern(64);
    let mut corpus = Corpus::create(&corpus_dir).expect("creates corpus");
    let mut names = Vec::new();
    for t in 0..traces {
        let watts: Vec<f64> = (0..cycles)
            .map(|i| {
                let wm = if pattern[(i + 11 + t) % pattern.len()] {
                    0.8
                } else {
                    -0.8
                };
                wm + ((i + t * 131) as f64 * 0.37).sin() * 0.3
            })
            .collect();
        let name = format!("trace_{t:02}");
        corpus
            .add(&name, TraceHeader::bare(0), &watts)
            .expect("adds trace");
        names.push(name);
    }
    let mut spec = CampaignSpec::new(corpus_dir, pattern, names);
    spec.checkpoint_cycles = 4_000;
    spec.chunk_cycles = 1_024;
    spec
}

fn main() {
    clockmark_bench::obs_scope("fleet_throughput", run);
}

fn run() {
    let quick = has_flag("--quick");
    let traces = if quick { 8 } else { 16 };
    let cycles = if quick { 20_000 } else { 60_000 };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforce = cores >= 4;

    let dir = TempDir::new();
    let spec = build_fixture(&dir.0, traces, cycles);
    let cli = cli_path();
    let mode = if cli.is_some() {
        "process"
    } else {
        "in-process"
    };
    println!(
        "fleet_throughput: {traces} trace(s) x {cycles} cycles, worker mode {mode}, \
         {cores} core(s){}",
        if enforce {
            ""
        } else {
            " (speedup gates warn-only)"
        }
    );

    // Single-node baseline, the byte-identity reference for every fleet
    // run.
    let baseline_dir = dir.0.join("baseline");
    let start = Instant::now();
    let campaign = Campaign::create(&baseline_dir, spec.clone())
        .expect("creates baseline")
        .with_threads(1);
    let status = campaign
        .run(&CampaignLimits::none())
        .expect("baseline runs");
    assert!(status.is_complete());
    let baseline_seconds = start.elapsed().as_secs_f64();
    let reference = std::fs::read(baseline_dir.join("report.json")).expect("reads baseline");
    println!("baseline     : 1 node, {baseline_seconds:.2}s");

    let mut runs = String::new();
    let mut speedups = Vec::new();
    for &n in worker_counts {
        let spawned: Vec<(Worker, String)> = (0..n).map(|_| spawn_worker(cli.as_deref())).collect();
        let addrs: Vec<String> = spawned.iter().map(|(_, a)| a.clone()).collect();

        let fleet_dir = dir.0.join(format!("fleet_{n}"));
        let mut config = FleetConfig::new(&fleet_dir, addrs);
        config.shards = (n as u64) * 4;
        config.worker_threads = 1;
        config.heartbeat_interval = Duration::from_millis(250);
        let start = Instant::now();
        let summary = run_fleet(&config, spec.clone()).expect("fleet completes");
        let seconds = start.elapsed().as_secs_f64();
        for (worker, _) in spawned {
            worker.shutdown();
        }

        assert_eq!(summary.merged_jobs, summary.total_jobs);
        let merged = std::fs::read(&summary.report_path).expect("reads merged");
        assert_eq!(
            merged, reference,
            "{n}-worker fleet report must be byte-identical to the baseline"
        );
        let speedup = baseline_seconds / seconds.max(1e-9);
        speedups.push((n, speedup));
        println!(
            "fleet        : {n} worker(s), {seconds:.2}s = {speedup:.2}x baseline \
             ({} shard(s), {} stolen, report bytes identical)",
            summary.shards, summary.shards_stolen
        );
        let _ = write!(
            runs,
            "{}{{\"workers\": {n}, \"seconds\": {seconds:.4}, \"speedup\": {speedup:.3}}}",
            if runs.is_empty() { "" } else { ", " }
        );
        clockmark_obs::gauge_set(&format!("bench.fleet_speedup_{n}w"), speedup);
    }

    for &(n, speedup) in &speedups {
        let gate = match n {
            2 => 1.7,
            4 => 3.0,
            _ => continue,
        };
        if enforce {
            assert!(
                speedup >= gate,
                "{n}-worker speedup {speedup:.2}x misses the {gate}x acceptance gate"
            );
        } else if speedup < gate {
            println!(
                "warn         : {n}-worker speedup {speedup:.2}x below the {gate}x gate \
                 (only {cores} core(s); gate enforced at >= 4)"
            );
        }
    }

    // Idle-session capacity on one node (unix readiness engine only).
    let idle = idle_capacity(if quick { 256 } else { 1024 });
    let path = bench_json_named("BENCH_8.json");
    merge_bench_section(
        &path,
        "fleet_scaling",
        &format!(
            "{{\"traces\": {traces}, \"cycles\": {cycles}, \"mode\": \"{mode}\", \
             \"cores\": {cores}, \"gates_enforced\": {enforce}, \
             \"baseline_seconds\": {baseline_seconds:.4}, \"runs\": [{runs}]}}"
        ),
    )
    .expect("writes fleet_scaling section");
    merge_bench_section(&path, "idle_sessions", &idle).expect("writes idle_sessions section");
    println!("report       : {}", path.display());
}

/// Holds `target` idle sessions on one server and proves a probe still
/// gets a correct detect verdict; returns the JSON section.
#[cfg(unix)]
fn idle_capacity(target: usize) -> String {
    use clockmark_cpa::DetectionCriterion;
    use clockmark_serve::{raise_nofile_limit, Client};

    let need = (target * 2 + 128) as u64;
    let limit = raise_nofile_limit(need);
    if limit < need {
        println!("idle capacity: skipped (nofile limit {limit} < {need})");
        return format!("{{\"target\": {target}, \"held\": 0, \"skipped\": true}}");
    }
    let handle = Server::new()
        .with_limits(ServeLimits {
            max_sessions: target + 8,
            idle_timeout: Duration::from_secs(600),
            ..ServeLimits::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = handle.local_addr();

    let start = Instant::now();
    let threads = 8;
    let sessions: Vec<Client> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    (0..target / threads)
                        .map(|_| Client::connect(addr).expect("idle connect"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("connector thread"))
            .collect()
    });
    let connect_seconds = start.elapsed().as_secs_f64();

    let mut probe = Client::connect(addr).expect("probe connect");
    let pattern = pattern(48);
    let samples: Vec<f64> = (0..pattern.len() * 24)
        .map(|i| {
            let bit = if pattern[i % pattern.len()] {
                1.2
            } else {
                -1.2
            };
            bit + (i as f64 * 0.41).sin() * 0.25
        })
        .collect();
    let verdict = probe
        .detect_with_criterion(&pattern, DetectionCriterion::default(), &samples)
        .expect("detect while sessions idle");
    assert!(verdict.result.detected, "fixture must be detectable");
    println!(
        "idle capacity: {} session(s) held in {connect_seconds:.2}s, probe detect OK",
        sessions.len()
    );
    let held = sessions.len();
    drop(sessions);
    drop(probe);
    handle.shutdown();
    format!(
        "{{\"target\": {target}, \"held\": {held}, \
         \"connect_seconds\": {connect_seconds:.4}, \"probe_detect\": true}}"
    )
}

#[cfg(not(unix))]
fn idle_capacity(target: usize) -> String {
    println!("idle capacity: skipped (readiness engine is unix-only)");
    format!("{{\"target\": {target}, \"held\": 0, \"skipped\": true}}")
}
