//! Fleet-scale campaign demonstration: a ≥50-job detection campaign over
//! a synthetic corpus, killed and resumed repeatedly, ending in a final
//! report byte-identical to an uninterrupted reference run.
//!
//! Two campaigns run over the same corpus:
//!
//! 1. **reference** — straight through, no interruptions;
//! 2. **interrupted** — every pass is cut short with [`CampaignLimits`]
//!    (a job budget plus a per-job cycle budget, the in-process stand-in
//!    for SIGKILL used so the demo is deterministic), then resumed from
//!    its checkpoints until the fleet completes.
//!
//! The two `report.json` files must match byte for byte: the streaming
//! CPA fold is replayed in the same floating-point order regardless of
//! where the kills landed.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin campaign_scale              # 60 jobs
//! cargo run --release -p clockmark-bench --bin campaign_scale -- --jobs 80
//! cargo run --release -p clockmark-bench --bin campaign_scale -- --quick
//! ```

use clockmark::corpus::TraceHeader;
use clockmark::prelude::*;
use clockmark_bench::{arg_value, has_flag};
use clockmark_seq::{Lfsr, SequenceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::path::Path;
use std::time::Instant;

/// A synthetic measured trace: the watermark pattern at `amp`, rotated by
/// `phase`, buried in uniform noise (amp 0 = unmarked).
fn synth_trace(pattern: &[bool], cycles: usize, phase: usize, amp: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + phase) % pattern.len()] {
                amp
            } else {
                0.0
            };
            wm + rng.random_range(-2.0..2.0)
        })
        .collect()
}

fn build_corpus(
    dir: &Path,
    pattern: &[bool],
    jobs: usize,
    cycles: usize,
) -> Result<Vec<String>, Box<dyn Error>> {
    let mut corpus = Corpus::create(dir)?;
    let mut names = Vec::with_capacity(jobs);
    for i in 0..jobs {
        // Every third trace is unmarked so the report mixes verdicts.
        let marked = i % 3 != 2;
        let name = if marked {
            format!("marked_{i:03}")
        } else {
            format!("unmarked_{i:03}")
        };
        let amp = if marked { 1.0 } else { 0.0 };
        let w = synth_trace(pattern, cycles, i * 13, amp, 1000 + i as u64);
        corpus.add(&name, TraceHeader::bare(0), &w)?;
        names.push(name);
    }
    Ok(names)
}

fn main() -> Result<(), Box<dyn Error>> {
    clockmark_bench::obs_scope("campaign_scale", run)
}

fn run() -> Result<(), Box<dyn Error>> {
    let quick = has_flag("--quick");
    let jobs = arg_value("--jobs", if quick { 50 } else { 60 });
    let cycles = arg_value("--cycles", if quick { 6_000 } else { 20_000 });
    let kill_after = arg_value("--kill-after-jobs", jobs / 4).max(1);
    let interrupt_cycles = (cycles / 3).max(1) as u64;

    let root =
        std::env::temp_dir().join(format!("clockmark_campaign_scale_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root)?;

    let mut lfsr = Lfsr::maximal(8)?;
    let pattern: Vec<bool> = (0..255).map(|_| lfsr.next_bit()).collect();

    println!(
        "campaign_scale: {jobs} jobs × {cycles} cycles, pattern period {}",
        pattern.len()
    );
    let corpus_dir = root.join("corpus");
    let start = Instant::now();
    let names = build_corpus(&corpus_dir, &pattern, jobs, cycles)?;
    println!(
        "corpus built in {:.2?} at {}",
        start.elapsed(),
        corpus_dir.display()
    );

    let mut spec = CampaignSpec::new(&corpus_dir, pattern.clone(), names);
    spec.checkpoint_cycles = interrupt_cycles / 2;
    spec.chunk_cycles = 2_048;

    // Reference: one uninterrupted run.
    let reference = Campaign::create(root.join("reference"), spec.clone())?;
    let start = Instant::now();
    let status = reference.run(&CampaignLimits::none())?;
    let reference_time = start.elapsed();
    assert!(status.is_complete(), "reference must finish: {status}");
    println!(
        "reference:   {status} in {:.2?} ({:.1} jobs/s)",
        reference_time,
        jobs as f64 / reference_time.as_secs_f64()
    );

    // Interrupted fleet: cut every pass short, resume until done.
    let interrupted = Campaign::create(root.join("interrupted"), spec)?;
    let limits = CampaignLimits {
        max_jobs: Some(kill_after),
        interrupt_job_after_cycles: Some(interrupt_cycles),
    };
    let start = Instant::now();
    let mut passes = 0usize;
    loop {
        passes += 1;
        let status = interrupted.run(&limits)?;
        println!(
            "  pass {passes:>3}: {status} (killed after ≤{kill_after} jobs / {interrupt_cycles} cycles each)"
        );
        if status.is_complete() {
            break;
        }
    }
    let interrupted_time = start.elapsed();
    assert!(passes >= 3, "the demo should actually be interrupted");
    println!(
        "interrupted: complete in {passes} passes, {:.2?} total",
        interrupted_time
    );

    // The whole point: identical bytes, no matter where the kills landed.
    let reference_report = std::fs::read(root.join("reference/report.json"))?;
    let interrupted_report = std::fs::read(root.join("interrupted/report.json"))?;
    assert_eq!(
        reference_report, interrupted_report,
        "kill-and-resume must reproduce the reference report bit for bit"
    );

    let detected = reference.report()?.detected();
    println!(
        "reports byte-identical ({} bytes); {detected}/{jobs} detected",
        reference_report.len()
    );

    // Merge the end-to-end campaign throughput into the benchmark JSON
    // next to the fold/spectrum sections `spectrum_algos --quick` wrote.
    let total_cycles = (jobs * cycles) as f64;
    let reference_s = reference_time.as_secs_f64();
    let campaign_section = format!(
        r#"{{"jobs": {jobs}, "cycles_per_job": {cycles}, "reference_seconds": {reference_s:.3}, "jobs_per_second": {:.2}, "cycles_per_second": {:.0}, "interrupted_passes": {passes}, "interrupted_seconds": {:.3}, "report_bytes_identical": true}}"#,
        jobs as f64 / reference_s.max(1e-9),
        total_cycles / reference_s.max(1e-9),
        interrupted_time.as_secs_f64(),
    );
    let json_path = clockmark_bench::bench_json_path();
    clockmark_bench::merge_bench_section(&json_path, "campaign", &campaign_section)?;
    println!("wrote campaign section to {}", json_path.display());

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
