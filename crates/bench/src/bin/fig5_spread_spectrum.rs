//! Fig. 5: spread spectra of correlation results from both test chips,
//! with the watermark circuit active and inactive (four panels).
//!
//! Paper parameters: 12-bit maximal LFSR (4,095 rotations), 300,000 clock
//! cycles at 10 MHz, 500 MS/s scope (50 samples averaged per cycle).
//! Expected result: a single peak of ρ ≈ 0.015–0.02 at rotation ≈ 3,800
//! (chip I) / ≈ 2,400 (chip II) when active; a flat ±0.005 floor when
//! inactive.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin fig5_spread_spectrum            # paper scale
//! cargo run --release -p clockmark-bench --bin fig5_spread_spectrum -- --quick
//! ```

use clockmark::prelude::*;
use clockmark_bench::{has_flag, render_spectrum};

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("fig5_spread_spectrum", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    let quick = has_flag("--quick");

    let (arch, chip_i, chip_ii) = if quick {
        let arch = ClockModulationWatermark {
            wgc: WgcConfig::MaxLengthLfsr { width: 10, seed: 1 },
            ..ClockModulationWatermark::paper()
        };
        let mut chip_i = Experiment::quick(60_000, 1);
        chip_i.phase_offset = 380;
        let mut chip_ii = chip_i.clone();
        chip_ii.chip = clockmark::ChipModel::ChipII;
        chip_ii.phase_offset = 240;
        (arch, chip_i, chip_ii)
    } else {
        (
            ClockModulationWatermark::paper(),
            Experiment::paper_chip_i(),
            Experiment::paper_chip_ii(),
        )
    };

    let panels = [
        ("(a) chip I, watermark active", chip_i.clone(), true),
        ("(b) chip I, watermark inactive", chip_i, false),
        ("(c) chip II, watermark active", chip_ii.clone(), true),
        ("(d) chip II, watermark inactive", chip_ii, false),
    ];

    // All four panels are independent: run them as one parallel batch
    // (CLOCKMARK_THREADS overrides the worker count). Outcomes come back
    // in panel order.
    let experiments = panels
        .iter()
        .map(|(_, experiment, active)| {
            if *active {
                experiment.clone()
            } else {
                experiment.clone().disabled()
            }
        })
        .collect();
    let (outcomes, report) = ExperimentBatch::new(experiments).run_with_progress(&arch, |p| {
        clockmark_obs::info!(
            "fig5: panel {}/{} done (input {}, worker {})",
            p.completed,
            p.total,
            p.index,
            p.worker
        );
    })?;
    for line in report.to_string().lines() {
        clockmark_obs::debug!("fig5: {line}");
    }

    for ((title, _, active), outcome) in panels.iter().zip(outcomes) {
        println!("==== Fig. 5{title} ====");
        println!("{}", outcome.detection);
        println!(
            "floor: mean {:+.5}, std {:.5}, max |rho| {:.5}",
            outcome.spectrum.floor_mean(),
            outcome.spectrum.floor_std(),
            outcome.spectrum.floor_max_abs()
        );
        println!("{}", render_spectrum(&outcome.spectrum, 32));
        if *active {
            assert!(
                outcome.detection.detected,
                "active panel must resolve a peak"
            );
            assert_eq!(
                outcome.detection.peak_rotation,
                outcome.expected_peak_rotation
            );
        } else {
            assert!(!outcome.detection.detected, "inactive panel must stay flat");
        }
    }
    println!("all four panels reproduce the paper's qualitative result");
    Ok(())
}
