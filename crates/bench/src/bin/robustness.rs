//! Section VI: improved robustness against removal attacks.
//!
//! Executes the structural removal attack against three embeddings and,
//! for the reused-IP deployment, shows the full story: the watermark
//! detects end-to-end before the attack, and removing it de-clocks the
//! host block.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin robustness
//! ```

use clockmark::prelude::*;
use clockmark::{removal_attack, AttackVerdict, FunctionalBlock};
use clockmark_netlist::{DataSource, GroupId, Netlist, RegisterConfig};
use clockmark_sim::SignalDriver;

fn wgc() -> WgcConfig {
    WgcConfig::MaxLengthLfsr { width: 8, seed: 1 }
}

fn add_system_logic(netlist: &mut Netlist, clk: clockmark_netlist::ClockRootId, n: u32) {
    for _ in 0..n {
        netlist
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Toggle),
            )
            .expect("system register");
    }
}

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("robustness", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    println!("Section VI — removal-attack analysis\n");

    // 1. Baseline load circuit.
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let baseline = LoadCircuitWatermark {
        wgc: wgc(),
        ..LoadCircuitWatermark::paper_equivalent()
    };
    let wm = baseline.embed(&mut netlist, clk.into())?;
    let report = removal_attack(&netlist, &wm)?;
    println!("1. {} (588 registers):\n   {report}", baseline.name());
    assert_eq!(report.verdict, AttackVerdict::CleanRemoval);

    // 2. Proposed, redundant-block deployment (as fabricated).
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let proposed = ClockModulationWatermark {
        wgc: wgc(),
        ..ClockModulationWatermark::paper()
    };
    let wm = proposed.embed(&mut netlist, clk.into())?;
    let report = removal_attack(&netlist, &wm)?;
    println!("\n2. {} — redundant block:\n   {report}", proposed.name());
    assert_eq!(report.verdict, AttackVerdict::CleanRemoval);

    // 3. Proposed, reused-IP deployment (production).
    let mut netlist = Netlist::new();
    let clk = netlist.add_clock_root("clk");
    add_system_logic(&mut netlist, clk, 500);
    let block = FunctionalBlock::synthesize(&mut netlist, "ip", clk.into(), 32, 32)?;
    let wm = proposed.embed_reusing(&mut netlist, clk.into(), &block)?;

    // The pre-attack and post-attack detection runs are independent, so
    // fan them across worker threads (CLOCKMARK_THREADS overrides the
    // count). `pre` selects which view of the chip each job measures.
    let jobs = [true, false];
    let mut outcomes = clockmark::parallel_map(&jobs, clockmark_cpa::thread_count(), |&pre| {
        if pre {
            // Before the attack: the watermark detects end-to-end through
            // the block's own clock tree.
            let drivers: Vec<_> = block
                .enables
                .iter()
                .map(|&e| (e, SignalDriver::Constant(true)))
                .collect();
            Experiment::quick(15_000, 9).run_embedded_with(&netlist, &wm, drivers)
        } else {
            // After the attack (watermark excised ≅ WGC gone, enables
            // broken): emulate the detector's view of a chip without the
            // watermark.
            Experiment::quick(15_000, 10)
                .disabled()
                .run_embedded(&netlist, &wm)
        }
    })
    .into_iter();
    let outcome = outcomes.next().expect("two jobs")?;
    let post = outcomes.next().expect("two jobs")?;

    println!(
        "\n3. {} — reusing the ip block's clock gates:",
        proposed.name()
    );
    println!("   pre-attack detection: {}", outcome.detection);
    assert!(outcome.detection.detected);

    let report = removal_attack(&netlist, &wm)?;
    println!("   removal attack: {report}");
    assert_eq!(report.verdict, AttackVerdict::FunctionalDamage);

    println!("   post-attack detection: {}", post.detection);
    assert!(!post.detection.detected);

    let baseline_regs = baseline.dedicated_registers() + baseline.wgc_registers();
    println!(
        "\nconclusion: the baseline watermark is a stand-alone {baseline_regs}-register \
         circuit an attacker deletes for free; the proposed deployment adds {} registers \
         and cannot be removed without de-clocking {} functional registers ({:.0} % of \
         the system) — the paper's Section VI claim, made executable",
        wm.wgc_cells.len(),
        report.affected_registers,
        report.impact_fraction() * 100.0
    );
    Ok(())
}
