//! Benchmarks the sequential early-termination detector and the batched
//! multi-pattern identify path, and writes the results into
//! `BENCH_9.json`:
//!
//! - `sequential_cycles`: consumed cycles vs watermark SNR, fixed-budget
//!   verdicts unchanged. Acceptance (asserted): the high-SNR point must
//!   resolve in <= 25% of the fixed budget, saving >= 50% of the cycles.
//! - `serve_throughput`: loopback req/s for fixed-budget vs sequential
//!   detect exchanges on the same high-SNR trace.
//! - `identify_speedup`: one `identify` over N candidates vs N
//!   independent detects. Bit-identity of every score is asserted
//!   unconditionally; the >= 3x speed gate (like the serve ratio) is
//!   warn-only below 4 cores.
//! - `campaign_resume`: an interrupted-and-resumed sequential campaign
//!   must reproduce the uninterrupted report byte-for-byte (asserted).
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin seq_throughput            # full run
//! cargo run --release -p clockmark-bench --bin seq_throughput -- --quick # CI smoke
//! ```

use clockmark::campaign::{Campaign, CampaignLimits, CampaignSpec};
use clockmark::corpus::{Corpus, TraceHeader};
use clockmark_bench::{arg_value, bench_json_named, has_flag, merge_bench_section};
use clockmark_cpa::{
    CandidatePattern, CpaAlgo, DetectOptions, Detector, SequentialOptions, SequentialResult,
};
use clockmark_serve::{Client, ServeLimits, Server};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("cm_seq_throughput_{}", std::process::id()));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Aperiodic xorshift watermark (periodic patterns tie with their own
/// rotations and fail the peak-uniqueness criterion).
fn pattern(period: usize, salt: u64) -> Vec<bool> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ salt.wrapping_mul(0xD131_0BA6_985D_F3B5);
    (0..period)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

/// Deterministic trace: the watermark at amplitude `amp` over a unit
/// background (sinusoid plus xorshift noise), so `amp` is the SNR knob.
fn trace(pattern: &[bool], cycles: usize, amp: f64, seed: u64) -> Vec<f64> {
    let period = pattern.len();
    let mut s = seed | 1;
    (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] {
                amp
            } else {
                -amp
            };
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            wm + (i as f64 * 0.37).sin() * 0.5 + noise
        })
        .collect()
}

fn main() {
    clockmark_bench::obs_scope("seq_throughput", run);
}

fn run() {
    let quick = has_flag("--quick");
    let period = 64usize;
    let budget = period * if quick { 256 } else { 1024 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforce = cores >= 4;
    // Pin the kernel so every comparison below runs the same arithmetic.
    let options = DetectOptions::default().with_algo(CpaAlgo::Fft);
    // Geometric schedule: checkpoints at 1024, 2048, 4096, … cycles, so
    // the consumed-cycle count tracks how deep into the noise the
    // watermark sits.
    let seq = SequentialOptions::default().with_base_cycles(period as u64 * 16);

    println!(
        "seq_throughput: P = {period}, fixed budget {budget} cycles, {cores} core(s){}",
        if enforce {
            ""
        } else {
            " (speed gates warn-only)"
        }
    );

    let path = bench_json_named("BENCH_9.json");
    let high_snr = sequential_cycles(&path, period, budget, options, seq);
    serve_throughput(&path, quick, budget, options, seq, &high_snr);
    identify_speedup(&path, quick, period, budget, options, enforce, cores);
    campaign_resume(&path, quick, period, seq);
    println!("report       : {}", path.display());
}

/// Phase 1 — consumed cycles vs SNR, verdicts pinned to fixed-budget.
/// Returns the high-SNR trace for the serve phase.
fn sequential_cycles(
    path: &std::path::Path,
    period: usize,
    budget: usize,
    options: DetectOptions,
    seq: SequentialOptions,
) -> Vec<f64> {
    let pattern = pattern(period, 0);
    let detector = Detector::with_options(&pattern, options).expect("valid pattern");
    // Amplitudes are SNR rungs over the ~0.46-sigma background, chosen
    // to straddle the detection threshold: the strong rung resolves at
    // the first checkpoint, the weak ones need geometrically more
    // cycles, and 0.0 (unmarked) exhausts the budget.
    let amps = [1.0, 0.06, 0.03, 0.015, 0.0];
    let mut rows = String::new();
    let mut high_snr_trace = Vec::new();
    let mut high_snr_consumed = 0u64;
    for (rung, &amp) in amps.iter().enumerate() {
        let samples = trace(&pattern, budget, amp, 0xBEE5 + rung as u64);
        let fixed = detector.detect(&samples).expect("fixed detect");
        let outcome: SequentialResult = detector
            .detect_sequential(&samples, seq)
            .expect("sequential detect");
        assert_eq!(
            outcome.result.detected, fixed.detected,
            "amp {amp}: sequential verdict must match the fixed-budget verdict"
        );
        let fraction = outcome.cycles_consumed as f64 / budget as f64;
        println!(
            "snr curve    : amp {amp:.2} -> {} of {budget} cycles ({:.0}%), detected {}, \
             {} checkpoint(s){}",
            outcome.cycles_consumed,
            fraction * 100.0,
            outcome.result.detected,
            outcome.checkpoints.len(),
            if outcome.early_stopped {
                ""
            } else {
                " (ran to budget)"
            }
        );
        let _ = write!(
            rows,
            "{}{{\"amplitude\": {amp}, \"cycles_consumed\": {}, \"budget_fraction\": {fraction:.4}, \
             \"detected\": {}, \"early_stopped\": {}, \"checkpoints\": {}}}",
            if rows.is_empty() { "" } else { ", " },
            outcome.cycles_consumed,
            outcome.result.detected,
            outcome.early_stopped,
            outcome.checkpoints.len()
        );
        if rung == 0 {
            high_snr_trace = samples;
            high_snr_consumed = outcome.cycles_consumed;
            assert!(fixed.detected, "high-SNR fixture must be detectable");
        }
    }
    // Deterministic cycle accounting: asserted regardless of core count.
    let high_fraction = high_snr_consumed as f64 / budget as f64;
    assert!(
        high_fraction <= 0.25,
        "high-SNR sequential run consumed {:.0}% of the fixed budget (acceptance: <= 25%)",
        high_fraction * 100.0
    );
    println!(
        "acceptance   : high-SNR verdict in {:.1}% of the fixed budget \
         ({:.0}% of cycles saved) — met",
        high_fraction * 100.0,
        (1.0 - high_fraction) * 100.0
    );
    clockmark_obs::gauge_set("bench.seq_high_snr_budget_fraction", high_fraction);
    merge_bench_section(
        path,
        "sequential_cycles",
        &format!(
            "{{\"period\": {period}, \"budget_cycles\": {budget}, \
             \"base_cycles\": {}, \"growth\": {}, \"rungs\": [{rows}]}}",
            seq.base_cycles, seq.growth
        ),
    )
    .expect("writes sequential_cycles section");
    high_snr_trace
}

/// Phase 2 — loopback serve req/s, fixed vs sequential exchanges.
fn serve_throughput(
    path: &std::path::Path,
    quick: bool,
    budget: usize,
    options: DetectOptions,
    seq: SequentialOptions,
    samples: &[f64],
) {
    let requests = arg_value("--requests", if quick { 8 } else { 40 }).max(2);
    let pattern = pattern(64, 0);
    let handle = Server::new()
        .with_limits(ServeLimits::default())
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let start = Instant::now();
    for _ in 0..requests {
        let verdict = client
            .detect(&pattern, options, samples)
            .expect("fixed detect over the wire");
        assert!(verdict.result.detected);
    }
    let fixed_rps = requests as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let mut consumed = 0u64;
    for _ in 0..requests {
        let outcome = client
            .detect_sequential(&pattern, options, seq, samples)
            .expect("sequential detect over the wire");
        assert!(outcome.result.detected);
        consumed = outcome.cycles_consumed;
    }
    let seq_rps = requests as f64 / start.elapsed().as_secs_f64().max(1e-9);
    handle.shutdown();

    let ratio = seq_rps / fixed_rps.max(1e-9);
    println!(
        "serve        : fixed {fixed_rps:.0} req/s, sequential {seq_rps:.0} req/s \
         ({ratio:.2}x, {consumed} of {budget} cycles evaluated per request)"
    );
    clockmark_obs::gauge_set("bench.seq_serve_speedup", ratio);
    merge_bench_section(
        path,
        "serve_throughput",
        &format!(
            "{{\"requests\": {requests}, \"fixed_rps\": {fixed_rps:.1}, \
             \"sequential_rps\": {seq_rps:.1}, \"speedup\": {ratio:.3}, \
             \"cycles_consumed\": {consumed}}}"
        ),
    )
    .expect("writes serve_throughput section");
}

/// Phase 3 — one identify over N candidates vs N independent detects.
fn identify_speedup(
    path: &std::path::Path,
    quick: bool,
    period: usize,
    budget: usize,
    options: DetectOptions,
    enforce: bool,
    cores: usize,
) {
    let candidates_n = arg_value("--candidates", 16).max(2);
    let reps = if quick { 2 } else { 5 };
    let truth = 5 % candidates_n;
    // Independent xorshift patterns: other seeds of one LFSR would be
    // cyclic shifts of the same m-sequence, which the phase-blind
    // rotational correlator cannot rank.
    let candidates: Vec<CandidatePattern> = (0..candidates_n)
        .map(|i| CandidatePattern::new(format!("seed-{i}"), pattern(period, 1 + i as u64)))
        .collect();
    let samples = trace(&candidates[truth].pattern, budget, 0.9, 0x1DE7);
    let detector = Detector::with_options(&candidates[0].pattern, options).expect("valid pattern");

    // N independent detects, each through its own Detector facade — the
    // baseline a caller without `identify` would run.
    let start = Instant::now();
    let mut independent = Vec::new();
    for _ in 0..reps {
        independent = candidates
            .iter()
            .map(|c| {
                Detector::with_options(&c.pattern, options)
                    .expect("valid candidate")
                    .detect(&samples)
                    .expect("independent detect")
            })
            .collect();
    }
    let independent_seconds = start.elapsed().as_secs_f64() / reps as f64;

    let start = Instant::now();
    let mut identification = detector.identify(&samples, &candidates).expect("identify");
    for _ in 1..reps {
        identification = detector.identify(&samples, &candidates).expect("identify");
    }
    let identify_seconds = start.elapsed().as_secs_f64() / reps as f64;

    // Bit-identity and ranking are asserted unconditionally: they are
    // what makes the speedup safe to take.
    assert_eq!(identification.best().index, truth, "embedded pattern wins");
    for score in &identification.scores {
        let local = &independent[score.index];
        assert_eq!(score.result.detected, local.detected);
        assert_eq!(score.result.peak_rotation, local.peak_rotation);
        assert_eq!(score.result.peak_rho.to_bits(), local.peak_rho.to_bits());
        assert_eq!(score.result.ratio.to_bits(), local.ratio.to_bits());
        assert_eq!(score.result.zscore.to_bits(), local.zscore.to_bits());
    }

    let speedup = independent_seconds / identify_seconds.max(1e-9);
    println!(
        "identify     : {candidates_n} candidates in {:.1}ms vs {:.1}ms independent \
         = {speedup:.2}x, every score bit-identical, best = {}",
        identify_seconds * 1e3,
        independent_seconds * 1e3,
        identification.best().label
    );
    let gate = 3.0;
    if enforce {
        assert!(
            speedup >= gate,
            "identify speedup {speedup:.2}x misses the {gate}x acceptance gate"
        );
    } else if speedup < gate {
        println!(
            "warn         : identify speedup {speedup:.2}x below the {gate}x gate \
             (only {cores} core(s); gate enforced at >= 4)"
        );
    }
    clockmark_obs::gauge_set("bench.identify_speedup", speedup);
    merge_bench_section(
        path,
        "identify_speedup",
        &format!(
            "{{\"candidates\": {candidates_n}, \"independent_seconds\": \
             {independent_seconds:.5}, \"identify_seconds\": {identify_seconds:.5}, \
             \"speedup\": {speedup:.3}, \"gate_enforced\": {enforce}, \
             \"bit_identical\": true}}"
        ),
    )
    .expect("writes identify_speedup section");
}

/// Phase 4 — a sequential campaign interrupted mid-job must resume to a
/// byte-identical report.
fn campaign_resume(path: &std::path::Path, quick: bool, period: usize, seq: SequentialOptions) {
    let dir = TempDir::new();
    let cycles = period * if quick { 128 } else { 512 };
    let pattern = pattern(period, 0);
    let corpus_dir = dir.0.join("corpus");
    let mut corpus = Corpus::create(&corpus_dir).expect("creates corpus");
    let mut names = Vec::new();
    for t in 0..4usize {
        let amp = if t == 3 { 0.0 } else { 0.9 };
        let watts = trace(&pattern, cycles, amp, 0xCA11 + t as u64);
        let name = format!("trace_{t}");
        corpus
            .add(&name, TraceHeader::bare(0), &watts)
            .expect("adds trace");
        names.push(name);
    }
    let mut spec = CampaignSpec::new(corpus_dir, pattern, names).with_sequential(seq);
    spec.checkpoint_cycles = (period * 8) as u64;
    spec.chunk_cycles = period * 4;

    let reference = Campaign::create(dir.0.join("reference"), spec.clone())
        .expect("creates")
        .with_threads(2);
    assert!(reference
        .run(&CampaignLimits::none())
        .expect("runs")
        .is_complete());
    let want = std::fs::read(dir.0.join("reference/report.json")).expect("reads");

    let interrupted = Campaign::create(dir.0.join("interrupted"), spec)
        .expect("creates")
        .with_threads(2);
    let limits = CampaignLimits {
        max_jobs: Some(2),
        interrupt_job_after_cycles: Some((period * 6) as u64),
    };
    let mut passes = 0u32;
    while !interrupted.run(&limits).expect("runs").is_complete() {
        passes += 1;
        assert!(passes < 200, "sequential campaign failed to converge");
    }
    let got = std::fs::read(dir.0.join("interrupted/report.json")).expect("reads");
    assert_eq!(
        got, want,
        "interrupted+resumed sequential campaign must reproduce the report byte-for-byte"
    );
    println!("campaign     : sequential resume byte-identical after {passes} interrupted pass(es)");
    merge_bench_section(
        path,
        "campaign_resume",
        &format!(
            "{{\"traces\": 4, \"cycles\": {cycles}, \"interrupted_passes\": {passes}, \
             \"byte_identical\": true}}"
        ),
    )
    .expect("writes campaign_resume section");
}
