//! Validates a Prometheus text exposition — used by the CI serve-smoke
//! job to check the `Metrics` RPC output scraped during load.
//!
//! Usage: `promcheck [file]` (reads stdin when no file is given).
//! Prints a one-line summary on success; exits nonzero with the parse
//! error on malformed input.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let (source, text) = match arg.as_deref() {
        Some("--help" | "-h") => {
            eprintln!("usage: promcheck [file.prom]  (reads stdin without a file)");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => (path.to_string(), text),
            Err(err) => {
                eprintln!("promcheck: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut text = String::new();
            if let Err(err) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("promcheck: cannot read stdin: {err}");
                return ExitCode::FAILURE;
            }
            ("<stdin>".to_string(), text)
        }
    };

    match clockmark_bench::validate_prometheus_text(&text) {
        Ok(stats) => {
            println!(
                "prometheus ok: {} samples, {} families ({source})",
                stats.samples, stats.families
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("promcheck: {source}: {err}");
            ExitCode::FAILURE
        }
    }
}
