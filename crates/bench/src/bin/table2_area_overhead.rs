//! Table II: load-circuit implementation costs — how many registers the
//! state-of-the-art watermark needs for each detectable power level, and
//! the area-overhead reduction the proposed technique achieves by removing
//! them.
//!
//! Paper columns: N = 96/192/384/576/1921/3843 registers, reduction
//! 88.9/94.1/96.9/98/99.4/99.7 %.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin table2_area_overhead
//! ```

use clockmark::overhead::equal_power_comparison;
use clockmark_power::tables::TableModel;
use clockmark_power::Power;

fn main() {
    clockmark_bench::obs_scope("table2_area_overhead", run)
}

fn run() {
    let table = TableModel::paper();
    let paper: [(f64, u64, f64); 6] = [
        (0.25, 96, 88.9),
        (0.5, 192, 94.1),
        (1.0, 384, 96.9),
        (1.5, 576, 98.0),
        (5.0, 1921, 99.4),
        (10.0, 3843, 99.7),
    ];

    println!("Table II — load circuit implementation costs\n");
    println!(
        "per-register load power: {} (1.126 µW data + 1.476 µW clock)\n",
        table.per_register_load_power()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>13}",
        "P_load", "N (ours)", "N (paper)", "reduction", "paper"
    );
    for (row, (_mw, n_paper, pct_paper)) in table.table2().iter().zip(paper) {
        println!(
            "{:>10} {:>12} {:>12} {:>13.1}% {:>12.1}%",
            row.p_load.to_string(),
            row.registers_needed,
            n_paper,
            row.area_reduction_pct,
            pct_paper,
        );
        assert_eq!(
            row.registers_needed, n_paper,
            "register column must be exact"
        );
        assert!((row.area_reduction_pct - pct_paper).abs() < 0.1);
    }

    println!("\nequal-power architecture comparison (WGC = 12 registers):");
    let targets: Vec<Power> = [0.25, 0.5, 1.0, 1.5, 5.0, 10.0]
        .into_iter()
        .map(Power::from_milliwatts)
        .collect();
    for row in equal_power_comparison(&table, &targets) {
        println!(
            "  {:>10}: baseline {:>5} regs -> proposed {:>3} regs ({:.1} % saved)",
            row.p_load.to_string(),
            row.baseline_registers,
            row.proposed_registers,
            row.reduction_pct
        );
    }
    println!(
        "\nthe paper's headline: at the test chips' 1.5 mW operating point, \
         576 + 12 registers shrink to 12 — a 98 % area-overhead reduction"
    );
}
