//! Beyond-paper ablations of the design choices the paper fixes: trace
//! length, LFSR width, measurement noise, ADC resolution and block size.
//! Each sweep reports the detection margin (peak z-score) so the knees are
//! visible.
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin ablation_sweeps
//! cargo run --release -p clockmark-bench --bin ablation_sweeps -- --quick
//! ```

use clockmark::parallel_map;
use clockmark::prelude::*;
use clockmark_bench::has_flag;

fn arch(width: u32) -> ClockModulationWatermark {
    ClockModulationWatermark {
        wgc: WgcConfig::MaxLengthLfsr { width, seed: 1 },
        ..ClockModulationWatermark::paper()
    }
}

fn main() -> Result<(), clockmark::ClockmarkError> {
    clockmark_bench::obs_scope("ablation_sweeps", run)
}

fn run() -> Result<(), clockmark::ClockmarkError> {
    let quick = has_flag("--quick");
    let base_cycles = if quick { 10_000 } else { 30_000 };
    // Arch-varying sweeps can't share an ExperimentBatch (one batch = one
    // architecture); they fan out with parallel_map instead.
    let threads = clockmark_cpa::thread_count();

    println!("== sweep 1: trace length (the √N detection law) ==");
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>9}",
        "cycles", "peak rho", "z", "ratio", "detected"
    );
    let lengths = if quick {
        vec![4_000, 16_000]
    } else {
        vec![4_000, 8_000, 16_000, 32_000, 64_000]
    };
    let experiments = lengths
        .iter()
        .map(|&cycles| Experiment::quick(cycles, 1))
        .collect();
    for (cycles, outcome) in lengths
        .iter()
        .zip(ExperimentBatch::new(experiments).run(&arch(8))?)
    {
        println!(
            "{cycles:>10} {:>10.4} {:>8.1} {:>8.2} {:>9}",
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.ratio,
            outcome.detection.detected
        );
    }

    println!("\n== sweep 2: LFSR width (rotations to search vs floor statistics) ==");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>9}",
        "width", "period", "peak rho", "z", "detected"
    );
    let widths = [6u32, 8, 10, 12];
    let outcomes = parallel_map(&widths, threads, |&width| {
        Experiment::quick(base_cycles, 2).run(&arch(width))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for (&width, outcome) in widths.iter().zip(&outcomes) {
        println!(
            "{width:>8} {:>8} {:>10.4} {:>8.1} {:>9}",
            (1u64 << width) - 1,
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.detected
        );
    }

    println!("\n== sweep 3: probe noise (the calibration knob) ==");
    println!(
        "{:>14} {:>10} {:>8} {:>9}",
        "noise (mV rms)", "peak rho", "z", "detected"
    );
    let noise_levels = [5.0f64, 15.0, 30.0, 72.0, 150.0];
    let experiments = noise_levels
        .iter()
        .map(|&noise_mv| {
            let mut experiment = Experiment::quick(base_cycles, 3);
            experiment.acquisition.scope = experiment
                .acquisition
                .scope
                .with_vertical_noise(noise_mv * 1e-3);
            experiment
        })
        .collect();
    for (&noise_mv, outcome) in noise_levels
        .iter()
        .zip(ExperimentBatch::new(experiments).run(&arch(8))?)
    {
        println!(
            "{noise_mv:>14.0} {:>10.4} {:>8.1} {:>9}",
            outcome.detection.peak_rho, outcome.detection.zscore, outcome.detection.detected
        );
    }

    println!("\n== sweep 4: ADC resolution ==");
    println!(
        "{:>8} {:>10} {:>8} {:>9}",
        "bits", "peak rho", "z", "detected"
    );
    let adc_bits = [4u32, 6, 8, 10, 12];
    let experiments = adc_bits
        .iter()
        .map(|&bits| {
            let mut experiment = Experiment::quick(base_cycles, 4);
            experiment.acquisition.scope = experiment.acquisition.scope.with_adc_bits(bits);
            experiment
        })
        .collect();
    for (&bits, outcome) in adc_bits
        .iter()
        .zip(ExperimentBatch::new(experiments).run(&arch(8))?)
    {
        println!(
            "{bits:>8} {:>10.4} {:>8.1} {:>9}",
            outcome.detection.peak_rho, outcome.detection.zscore, outcome.detection.detected
        );
    }

    println!("\n== sweep 5: modulated block size (Section V scaling) ==");
    println!(
        "{:>10} {:>12} {:>10} {:>8} {:>9}",
        "registers", "amplitude", "peak rho", "z", "detected"
    );
    let word_counts = [2u32, 8, 16, 32, 64];
    let outcomes = parallel_map(&word_counts, threads, |&words| {
        let a = ClockModulationWatermark { words, ..arch(8) };
        Experiment::quick(base_cycles, 5).run(&a)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for (&words, outcome) in word_counts.iter().zip(&outcomes) {
        let a = ClockModulationWatermark { words, ..arch(8) };
        let model = clockmark_power::PowerModel::new(
            clockmark_power::EnergyLibrary::tsmc65ll(),
            clockmark_power::Frequency::from_megahertz(10.0),
        );
        let amplitude = clockmark::WatermarkArchitecture::signal_amplitude(&a, &model);
        println!(
            "{:>10} {:>12} {:>10.4} {:>8.1} {:>9}",
            words * 32,
            amplitude.to_string(),
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.detected
        );
    }

    println!("\n== sweep 6: clock frequency (amplitude x f, oversampling / f) ==");
    println!(
        "{:>10} {:>14} {:>12} {:>10} {:>8} {:>9}",
        "f_clk", "samples/cycle", "amplitude", "peak rho", "z", "detected"
    );
    let clock_mhz = [2.5f64, 5.0, 10.0, 20.0, 50.0];
    let experiments: Vec<_> = clock_mhz
        .iter()
        .map(|&mhz| {
            let f = clockmark_power::Frequency::from_megahertz(mhz);
            let mut experiment = Experiment::quick(base_cycles, 6);
            experiment.f_clk = f;
            experiment.acquisition = clockmark::measure::Acquisition::paper_chain(f);
            experiment.acquisition.scope = experiment.acquisition.scope.with_vertical_noise(15e-3);
            experiment
        })
        .collect();
    let outcomes = ExperimentBatch::new(experiments.clone()).run(&arch(8))?;
    for ((&mhz, experiment), outcome) in clock_mhz.iter().zip(&experiments).zip(&outcomes) {
        let model = clockmark_power::PowerModel::new(
            clockmark_power::EnergyLibrary::tsmc65ll(),
            experiment.f_clk,
        );
        let amplitude = clockmark::WatermarkArchitecture::signal_amplitude(&arch(8), &model);
        println!(
            "{:>7} MHz {:>14} {:>12} {:>10.4} {:>8.1} {:>9}",
            mhz,
            experiment.acquisition.samples_per_cycle(),
            amplitude.to_string(),
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.detected
        );
    }
    println!(
        "\nhigher f_clk raises the watermark amplitude linearly (energy per cycle is \
         fixed) while shrinking the per-cycle averaging window — the two effects \
         partially cancel, with a net gain at higher clocks"
    );

    println!("\n== sweep 7: power-delivery-network smoothing ==");
    println!(
        "{:>10} {:>14} {:>10} {:>8} {:>9}",
        "tau (ns)", "attenuation", "peak rho", "z", "detected"
    );
    let taus_ns = [0.0f64, 10.0, 25.0, 50.0, 150.0];
    let experiments: Vec<_> = taus_ns
        .iter()
        .map(|&tau_ns| {
            let mut experiment = Experiment::quick(base_cycles, 7);
            experiment.acquisition.pdn = clockmark::measure::PdnModel {
                time_constant_s: tau_ns * 1e-9,
            };
            experiment
        })
        .collect();
    let outcomes = ExperimentBatch::new(experiments.clone()).run(&arch(8))?;
    for ((&tau_ns, experiment), outcome) in taus_ns.iter().zip(&experiments).zip(&outcomes) {
        let predicted = experiment
            .acquisition
            .pdn
            .square_wave_attenuation(experiment.f_clk);
        println!(
            "{tau_ns:>10.0} {:>14.3} {:>10.4} {:>8.1} {:>9}",
            predicted,
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.detected
        );
    }
    println!(
        "\nboard decoupling low-pass filters the watermark square wave; detection survives \
         mild smoothing (tau well below the clock period) and degrades once the RC constant \
         approaches it — relevant when choosing the shunt's location on a real board"
    );

    println!("\n== sweep 8: supply voltage (DVFS) ==");
    println!(
        "{:>10} {:>12} {:>10} {:>8} {:>9}",
        "V_dd", "amplitude", "peak rho", "z", "detected"
    );
    let supplies = [0.8f64, 1.0, 1.2, 1.4];
    let experiments: Vec<_> = supplies
        .iter()
        .map(|&volts| {
            let mut experiment = Experiment::quick(base_cycles, 8);
            experiment.library = clockmark_power::EnergyLibrary::tsmc65ll().at_supply(volts);
            experiment
        })
        .collect();
    let outcomes = ExperimentBatch::new(experiments.clone()).run(&arch(8))?;
    for ((&volts, experiment), outcome) in supplies.iter().zip(&experiments).zip(&outcomes) {
        let model = clockmark_power::PowerModel::new(experiment.library, experiment.f_clk);
        let amplitude = clockmark::WatermarkArchitecture::signal_amplitude(&arch(8), &model);
        println!(
            "{volts:>9.1}V {:>12} {:>10.4} {:>8.1} {:>9}",
            amplitude.to_string(),
            outcome.detection.peak_rho,
            outcome.detection.zscore,
            outcome.detection.detected
        );
    }
    println!(
        "\nthe watermark amplitude follows CV² scaling, so low-voltage operating points \
         weaken detection quadratically — the vendor should measure at the chip's \
         nominal corner"
    );

    println!("\ncrossover summary: detection needs roughly z ≥ 5; the sweeps show where each knob crosses it");
    Ok(())
}
