//! Load-generates the `clockmark-serve` detection service: N concurrent
//! clients hammer a loopback server with full detect exchanges, and the
//! run reports sustained requests/sec plus the rejection rate under
//! deliberate overload. Every wire verdict is checked bit-for-bit
//! against an in-process [`Detector`] run of the same trace and options,
//! and the run ends by proving a graceful drain: shutdown is triggered
//! while every client is mid-exchange, and all of them must still get
//! their verdict (zero dropped in-flight sessions).
//!
//! ```sh
//! cargo run --release -p clockmark-bench --bin serve_throughput              # 8 clients
//! cargo run --release -p clockmark-bench --bin serve_throughput -- --clients 16 --requests 40
//! cargo run --release -p clockmark-bench --bin serve_throughput -- --quick  # CI smoke
//! ```

use clockmark::prelude::*;
use clockmark_bench::{arg_value, has_flag};
use clockmark_serve::protocol::{self, Request, Response};
use clockmark_serve::{Backoff, Client, ServeError, ServeLimits, Server};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Aperiodic test watermark: xorshift64 bits have low autocorrelation,
/// so the correlation peak is unambiguous even on short traces.
fn pattern(period: usize) -> Vec<bool> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..period)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

/// Deterministic watermarked trace: the pattern at rotation 17 plus a
/// low-amplitude sinusoidal "background".
fn trace(pattern: &[bool], cycles: usize) -> Vec<f64> {
    let period = pattern.len();
    (0..cycles)
        .map(|i| {
            let wm = if pattern[(i + 17) % period] {
                0.8
            } else {
                -0.8
            };
            wm + (i as f64 * 0.37).sin() * 0.3
        })
        .collect()
}

fn assert_bit_identical(wire: &DetectionResult, local: &DetectionResult) {
    assert_eq!(wire.detected, local.detected);
    assert_eq!(wire.peak_rotation, local.peak_rotation);
    assert_eq!(wire.peak_rho.to_bits(), local.peak_rho.to_bits());
    assert_eq!(wire.floor_max_abs.to_bits(), local.floor_max_abs.to_bits());
    assert_eq!(wire.ratio.to_bits(), local.ratio.to_bits());
    assert_eq!(wire.zscore.to_bits(), local.zscore.to_bits());
}

/// One persistent-connection worker: `requests` sequential detect
/// exchanges, retrying on `Busy` through a seeded [`Backoff`] so
/// contending workers spread out instead of thundering back in lockstep.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    addr: SocketAddr,
    pattern: &[bool],
    options: DetectOptions,
    samples: &[f64],
    reference: &DetectionResult,
    requests: usize,
    busy_retries: &AtomicU64,
    seed: u64,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    // Tight bounds keep the bench's overload phase fast; the server's
    // `retry_after_ms` hint still floors every delay.
    let mut backoff =
        Backoff::with_bounds(seed, Duration::from_millis(2), Duration::from_millis(250));
    // Claim a session slot: a rejected connection answers the ping probe
    // with `Busy` (or tears the connection down right after), so only a
    // connection that ponged is known to hold a slot.
    let mut client = loop {
        assert!(Instant::now() < deadline, "no slot freed within 60s");
        match Client::connect_with_timeout(addr, Duration::from_secs(30)) {
            Ok(mut c) => match c.ping() {
                Ok(()) => break c,
                Err(ServeError::Busy { retry_after_ms }) => {
                    busy_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff.next_delay(retry_after_ms));
                }
                // The reject path may close before the probe is read;
                // treat the torn-down connection as the same backoff.
                Err(ServeError::Io { .. }) => {
                    busy_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff.next_delay(0));
                }
                Err(e) => panic!("ping probe failed: {e}"),
            },
            Err(ServeError::Busy { retry_after_ms }) => {
                busy_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.next_delay(retry_after_ms));
            }
            Err(e) => panic!("connect failed: {e}"),
        }
    };
    for _ in 0..requests {
        let verdict = client
            .detect(pattern, options, samples)
            .expect("detect over the wire");
        assert_eq!(verdict.cycles, samples.len() as u64);
        assert_bit_identical(&verdict.result, reference);
    }
}

/// Opens a raw protocol exchange and parks it half-streamed: greeting,
/// `DetectStart`, half the samples, then a `Status` round-trip so the
/// server has provably processed the open exchange.
fn open_half_streamed(
    addr: SocketAddr,
    pattern: &[bool],
    options: DetectOptions,
    samples: &[f64],
) -> TcpStream {
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    protocol::write_greeting(&mut raw).unwrap();
    protocol::read_greeting(&mut raw).expect("greeting echoed");
    let (ty, payload) = Request::DetectStart {
        pattern: pattern.to_vec(),
        algo: options.algo,
        criterion: options.criterion,
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = Request::DetectChunk {
        samples: samples[..samples.len() / 2].to_vec(),
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = Request::Status.encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("status frame");
    assert!(matches!(
        Response::decode(ty, &payload).expect("decodes"),
        Response::Status(_)
    ));
    raw
}

/// Finishes a half-streamed exchange and returns the wire verdict.
fn finish_half_streamed(mut raw: TcpStream, samples: &[f64]) -> DetectionResult {
    let (ty, payload) = Request::DetectChunk {
        samples: samples[samples.len() / 2..].to_vec(),
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = Request::DetectFinish.encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("verdict during drain");
    match Response::decode(ty, &payload).expect("decodes") {
        Response::Detection(d) => d.result,
        other => panic!("expected a detection, got {other:?}"),
    }
}

fn main() {
    clockmark_bench::obs_scope("serve_throughput", run);
}

fn run() {
    let quick = has_flag("--quick");
    let clients = arg_value("--clients", 8).max(1) as usize;
    let requests = arg_value("--requests", if quick { 4 } else { 25 }).max(1) as usize;
    let period = 64usize;
    let cycles = period * if quick { 60 } else { 240 };

    let pattern = pattern(period);
    let samples = trace(&pattern, cycles);
    // Pin the kernel so the in-process reference and every wire verdict
    // run the same arithmetic regardless of the environment.
    let options = DetectOptions::default().with_algo(CpaAlgo::Folded);
    let detector = Detector::with_options(&pattern, options).expect("valid pattern");
    let reference = detector.detect(&samples).expect("local detect");
    assert!(
        reference.detected,
        "fixture must be detectable or the bench proves nothing"
    );

    let limits = ServeLimits {
        max_sessions: clients,
        ..ServeLimits::default()
    };
    let handle = Server::new()
        .with_limits(limits)
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = handle.local_addr();

    println!(
        "serve_throughput: {clients} concurrent client(s), {requests} request(s) each, \
         {cycles}-cycle trace (P = {period}), pool of {clients} session(s)"
    );

    // Phase 1 — sustained throughput: N persistent connections, each
    // streaming full detect exchanges back to back.
    let busy_retries = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let (pattern, samples, reference, busy_retries) =
            (&pattern, &samples, &reference, &busy_retries);
        for i in 0..clients {
            scope.spawn(move || {
                run_worker(
                    addr,
                    pattern,
                    options,
                    samples,
                    reference,
                    requests,
                    busy_retries,
                    i as u64,
                );
            });
        }
    });
    let elapsed = start.elapsed();
    let total = (clients * requests) as f64;
    let rps = total / elapsed.as_secs_f64().max(1e-9);
    println!(
        "throughput   : {total:.0} requests in {elapsed:.2?} = {rps:.0} req/s, \
         all verdicts bit-identical to the in-process Detector"
    );

    // Phase 2 — overload: twice as many one-shot clients as slots. The
    // excess must be rejected with `Busy` + a retry hint (bounded
    // backpressure), and every client must eventually succeed.
    let overload = clients * 2;
    let busy_before = busy_retries.load(Ordering::Relaxed);
    let gate = Barrier::new(overload);
    std::thread::scope(|scope| {
        let (pattern, samples, reference, busy_retries, gate) =
            (&pattern, &samples, &reference, &busy_retries, &gate);
        for i in 0..overload {
            scope.spawn(move || {
                gate.wait();
                run_worker(
                    addr,
                    pattern,
                    options,
                    samples,
                    reference,
                    1,
                    busy_retries,
                    // Disjoint from the phase-1 seed range so the two
                    // phases draw unrelated jitter streams.
                    0x1000 + i as u64,
                );
            });
        }
    });
    let busy_seen = busy_retries.load(Ordering::Relaxed) - busy_before;
    let status = handle.status();
    let attempts = status.served + status.rejected;
    let rejection_rate = status.rejected as f64 / attempts.max(1) as f64;
    println!(
        "overload     : {overload} one-shot clients against {clients} slot(s); \
         {busy_seen} Busy retr{} observed client-side",
        if busy_seen == 1 { "y" } else { "ies" }
    );
    println!(
        "server totals: served {} detect(s), rejected {} connection(s) \
         (rejection rate {:.1}%)",
        status.served,
        status.rejected,
        rejection_rate * 100.0
    );

    // Phase 3 — graceful drain: park every client mid-exchange, trigger
    // shutdown, and require every in-flight session to still complete.
    // Wait for phase 2's dropped connections to release their slots
    // first, so every parked exchange gets one.
    let pool_clear = Instant::now() + Duration::from_secs(10);
    while handle.status().active_sessions > 0 {
        assert!(
            Instant::now() < pool_clear,
            "phase 2 sessions never drained"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let streams: Vec<TcpStream> = (0..clients)
        .map(|_| open_half_streamed(addr, &pattern, options, &samples))
        .collect();
    let served_before_drain = handle.status().served;
    let (verdicts, final_status) = std::thread::scope(|scope| {
        let finishers: Vec<_> = streams
            .into_iter()
            .map(|raw| scope.spawn(|| finish_half_streamed(raw, &samples)))
            .collect();
        // All exchanges are provably open server-side (each did a Status
        // round-trip), so the drain cannot outrun a DetectStart.
        let final_status = handle.shutdown();
        let verdicts: Vec<_> = finishers
            .into_iter()
            .map(|f| f.join().expect("in-flight session completed"))
            .collect();
        (verdicts, final_status)
    });
    assert!(final_status.draining);
    assert_eq!(
        final_status.active_sessions, 0,
        "drain left sessions behind"
    );
    assert_eq!(
        final_status.served,
        served_before_drain + clients as u64,
        "graceful shutdown dropped in-flight sessions"
    );
    for verdict in &verdicts {
        assert_bit_identical(verdict, &reference);
    }
    println!(
        "drain        : shutdown with {clients} exchange(s) in flight — all {clients} \
         completed with bit-identical verdicts, zero dropped sessions"
    );

    clockmark_obs::gauge_set("bench.serve_requests_per_second", rps);
    clockmark_obs::gauge_set("bench.serve_rejection_rate", rejection_rate);
    clockmark_obs::gauge_set("bench.serve_clients", clients as f64);

    if clients >= 8 {
        println!(
            "acceptance   : {clients} concurrent clients sustained, zero dropped in-flight \
             sessions under graceful shutdown — met"
        );
    } else {
        println!(
            "note: {clients} client(s); the >= 8 concurrent-client acceptance check \
             needs the default client count"
        );
    }
}
