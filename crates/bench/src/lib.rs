//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! Kufel et al. (DATE 2014); see `EXPERIMENTS.md` at the repository root
//! for the index and the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clockmark_cpa::SpreadSpectrum;

/// Runs a bench binary's body under the observability layer.
///
/// Resolves the global recorder from `CLOCKMARK_METRICS` /
/// `CLOCKMARK_LOG` before any instrumented code runs, wraps `f` in a
/// root `bench.run` span tagged with the binary name, and flushes the
/// recorder (writing the JSON-lines artifact and the summary table)
/// after `f` returns — including when it returns an error.
pub fn obs_scope<R>(bin: &'static str, f: impl FnOnce() -> R) -> R {
    clockmark_obs::init_from_env();
    clockmark_obs::info!("{bin}: starting");
    let result = {
        let _span = clockmark_obs::span("bench.run").field("bin", bin);
        f()
    };
    clockmark_obs::flush();
    result
}

/// Renders a spread spectrum as a coarse ASCII table: the maximum |ρ| in
/// each of `bins` rotation bins, with a bar proportional to the value.
///
/// This is the textual stand-in for the paper's Fig. 5 panels: a single
/// bin dominating the rest is "a single significant correlation
/// coefficient can be resolved".
pub fn render_spectrum(spectrum: &SpreadSpectrum, bins: usize) -> String {
    let period = spectrum.period();
    let bins = bins.min(period).max(1);
    let (peak_rotation, peak_value) = spectrum.peak_abs();
    let scale = peak_value.abs().max(1e-12);

    let mut out = String::new();
    for b in 0..bins {
        let start = b * period / bins;
        let end = ((b + 1) * period / bins).max(start + 1);
        let max_abs = spectrum.rho()[start..end]
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()));
        let bar_len = ((max_abs / scale) * 50.0).round() as usize;
        let marker = if (start..end).contains(&peak_rotation) {
            "  <-- peak"
        } else {
            ""
        };
        out.push_str(&format!(
            "{start:>5}..{end:<5} |{:<50}| {max_abs:.5}{marker}\n",
            "#".repeat(bar_len.min(50))
        ));
    }
    out
}

/// Formats a `true`/`false` bit as the waveform glyphs used by the Fig. 2
/// listing.
pub fn wave(bit: bool) -> char {
    if bit {
        '▔'
    } else {
        '▁'
    }
}

/// Returns true when the process arguments contain `flag`.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Where the machine-readable benchmark report lands: the
/// `CLOCKMARK_BENCH_JSON` environment variable, or `BENCH_6.json` at the
/// repository root.
///
/// The repo root is resolved from this crate's compile-time manifest
/// path rather than the working directory, because cargo runs `bench`
/// binaries from the package directory but `run` binaries from the
/// invoking shell — the sections written by `spectrum_algos --quick`
/// and `campaign_scale` must land in the same file.
pub fn bench_json_path() -> std::path::PathBuf {
    if let Some(path) = std::env::var_os("CLOCKMARK_BENCH_JSON") {
        return std::path::PathBuf::from(path);
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf();
    root.join("BENCH_6.json")
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs,
/// preserving order. Values are returned as raw JSON text, so sections
/// written by one bench binary survive a merge by another without either
/// having to understand the other's schema.
///
/// This is deliberately a scanner, not a parser: it only tracks string
/// escapes and brace/bracket depth. Anything that is not a JSON object
/// at the top level yields an empty list.
pub fn split_json_sections(text: &str) -> Vec<(String, String)> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    // Find the opening brace.
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    if i == bytes.len() {
        return Vec::new();
    }
    i += 1;
    let mut sections = Vec::new();
    loop {
        // Key: the next string literal.
        while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'}' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b'}' {
            return sections;
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return sections;
        }
        let key = text[key_start..i].to_owned();
        i += 1;
        // Skip to the value after the colon.
        while i < bytes.len() && (bytes[i] == b':' || bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        let value_start = i;
        let mut depth = 0usize;
        let mut in_string = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_string {
                if b == b'\\' {
                    i += 1;
                } else if b == b'"' {
                    in_string = false;
                }
            } else {
                match b {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b',' | b'}' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        sections.push((key, text[value_start..i].trim_end().to_owned()));
        if i >= bytes.len() || bytes[i] == b'}' {
            return sections;
        }
        i += 1; // past the comma
    }
}

/// Renders `(key, raw value)` sections back into a pretty-enough JSON
/// object (one key per line).
pub fn render_json_sections(sections: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Inserts (or replaces) one top-level section of the benchmark JSON at
/// `path`, preserving every other section byte for byte. `value` must be
/// a complete JSON value. Creates the file when absent.
///
/// # Errors
///
/// Returns I/O failures reading or writing the file.
pub fn merge_bench_section(path: &std::path::Path, key: &str, value: &str) -> std::io::Result<()> {
    let mut sections = match std::fs::read_to_string(path) {
        Ok(text) => split_json_sections(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value.to_owned(),
        None => sections.push((key.to_owned(), value.to_owned())),
    }
    std::fs::write(path, render_json_sections(&sections))
}

/// Reads `--reps N` style numeric arguments, with a default.
pub fn arg_value(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark::prelude::Detector;

    #[test]
    fn render_marks_the_peak_bin() {
        let pattern = [true, false, false, true, false, true, false];
        let y: Vec<f64> = (0..700)
            .map(|i| if pattern[(i + 3) % 7] { 1.0 } else { 0.0 } + (i % 11) as f64 * 0.01)
            .collect();
        let s = Detector::new(&pattern)
            .expect("valid pattern")
            .spectrum(&y)
            .expect("valid");
        let rendered = render_spectrum(&s, 7);
        assert!(rendered.contains("<-- peak"));
        assert_eq!(rendered.lines().count(), 7);
    }

    #[test]
    fn wave_glyphs() {
        assert_ne!(wave(true), wave(false));
    }

    #[test]
    fn arg_value_falls_back_to_default() {
        assert_eq!(arg_value("--definitely-not-passed", 42), 42);
    }

    #[test]
    fn json_sections_split_and_render_round_trip() {
        let text = r#"{
  "bench": "BENCH_6",
  "fold": {"scalar_seconds": 1.5e-3, "speedup": 4.2},
  "notes": ["a, b", "c}d"],
  "cores": 4
}"#;
        let sections = split_json_sections(text);
        assert_eq!(
            sections.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["bench", "fold", "notes", "cores"]
        );
        assert_eq!(sections[0].1, "\"BENCH_6\"");
        assert_eq!(
            sections[1].1,
            r#"{"scalar_seconds": 1.5e-3, "speedup": 4.2}"#
        );
        assert_eq!(sections[2].1, r#"["a, b", "c}d"]"#);
        assert_eq!(sections[3].1, "4");
        // Rendering and re-splitting is stable.
        let rendered = render_json_sections(&sections);
        assert_eq!(split_json_sections(&rendered), sections);
    }

    #[test]
    fn merge_replaces_one_section_and_keeps_the_rest() {
        let path = std::env::temp_dir().join(format!(
            "cm_bench_merge_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        merge_bench_section(&path, "fold", r#"{"speedup": 4.0}"#).expect("creates");
        merge_bench_section(&path, "campaign", r#"{"jobs": 50}"#).expect("appends");
        merge_bench_section(&path, "fold", r#"{"speedup": 5.0}"#).expect("replaces");
        let sections = split_json_sections(&std::fs::read_to_string(&path).expect("reads"));
        assert_eq!(
            sections,
            vec![
                ("fold".to_owned(), r#"{"speedup": 5.0}"#.to_owned()),
                ("campaign".to_owned(), r#"{"jobs": 50}"#.to_owned()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }
}
