//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! Kufel et al. (DATE 2014); see `EXPERIMENTS.md` at the repository root
//! for the index and the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clockmark_cpa::SpreadSpectrum;

/// Runs a bench binary's body under the observability layer.
///
/// Resolves the global recorder from `CLOCKMARK_METRICS` /
/// `CLOCKMARK_LOG` before any instrumented code runs, wraps `f` in a
/// root `bench.run` span tagged with the binary name, and flushes the
/// recorder (writing the JSON-lines artifact and the summary table)
/// after `f` returns — including when it returns an error.
pub fn obs_scope<R>(bin: &'static str, f: impl FnOnce() -> R) -> R {
    clockmark_obs::init_from_env();
    clockmark_obs::info!("{bin}: starting");
    let result = {
        let _span = clockmark_obs::span("bench.run").field("bin", bin);
        f()
    };
    clockmark_obs::flush();
    result
}

/// Renders a spread spectrum as a coarse ASCII table: the maximum |ρ| in
/// each of `bins` rotation bins, with a bar proportional to the value.
///
/// This is the textual stand-in for the paper's Fig. 5 panels: a single
/// bin dominating the rest is "a single significant correlation
/// coefficient can be resolved".
pub fn render_spectrum(spectrum: &SpreadSpectrum, bins: usize) -> String {
    let period = spectrum.period();
    let bins = bins.min(period).max(1);
    let (peak_rotation, peak_value) = spectrum.peak_abs();
    let scale = peak_value.abs().max(1e-12);

    let mut out = String::new();
    for b in 0..bins {
        let start = b * period / bins;
        let end = ((b + 1) * period / bins).max(start + 1);
        let max_abs = spectrum.rho()[start..end]
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()));
        let bar_len = ((max_abs / scale) * 50.0).round() as usize;
        let marker = if (start..end).contains(&peak_rotation) {
            "  <-- peak"
        } else {
            ""
        };
        out.push_str(&format!(
            "{start:>5}..{end:<5} |{:<50}| {max_abs:.5}{marker}\n",
            "#".repeat(bar_len.min(50))
        ));
    }
    out
}

/// Formats a `true`/`false` bit as the waveform glyphs used by the Fig. 2
/// listing.
pub fn wave(bit: bool) -> char {
    if bit {
        '▔'
    } else {
        '▁'
    }
}

/// Returns true when the process arguments contain `flag`.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Where the machine-readable benchmark report lands: the
/// `CLOCKMARK_BENCH_JSON` environment variable, or `BENCH_6.json` at the
/// repository root.
///
/// The repo root is resolved from this crate's compile-time manifest
/// path rather than the working directory, because cargo runs `bench`
/// binaries from the package directory but `run` binaries from the
/// invoking shell — the sections written by `spectrum_algos --quick`
/// and `campaign_scale` must land in the same file.
pub fn bench_json_path() -> std::path::PathBuf {
    bench_json_named("BENCH_6.json")
}

/// Like [`bench_json_path`], but with an explicit default file name for
/// benches that land in a different PR's report (for example
/// `BENCH_8.json` for the fleet benches). `CLOCKMARK_BENCH_JSON` still
/// overrides.
pub fn bench_json_named(default_name: &str) -> std::path::PathBuf {
    if let Some(path) = std::env::var_os("CLOCKMARK_BENCH_JSON") {
        return std::path::PathBuf::from(path);
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf();
    root.join(default_name)
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs,
/// preserving order. Values are returned as raw JSON text, so sections
/// written by one bench binary survive a merge by another without either
/// having to understand the other's schema.
///
/// This is deliberately a scanner, not a parser: it only tracks string
/// escapes and brace/bracket depth. Anything that is not a JSON object
/// at the top level yields an empty list.
pub fn split_json_sections(text: &str) -> Vec<(String, String)> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    // Find the opening brace.
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    if i == bytes.len() {
        return Vec::new();
    }
    i += 1;
    let mut sections = Vec::new();
    loop {
        // Key: the next string literal.
        while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'}' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b'}' {
            return sections;
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return sections;
        }
        let key = text[key_start..i].to_owned();
        i += 1;
        // Skip to the value after the colon.
        while i < bytes.len() && (bytes[i] == b':' || bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        let value_start = i;
        let mut depth = 0usize;
        let mut in_string = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_string {
                if b == b'\\' {
                    i += 1;
                } else if b == b'"' {
                    in_string = false;
                }
            } else {
                match b {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b',' | b'}' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        sections.push((key, text[value_start..i].trim_end().to_owned()));
        if i >= bytes.len() || bytes[i] == b'}' {
            return sections;
        }
        i += 1; // past the comma
    }
}

/// Renders `(key, raw value)` sections back into a pretty-enough JSON
/// object (one key per line).
pub fn render_json_sections(sections: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Inserts (or replaces) one top-level section of the benchmark JSON at
/// `path`, preserving every other section byte for byte. `value` must be
/// a complete JSON value. Creates the file when absent.
///
/// # Errors
///
/// Returns I/O failures reading or writing the file.
pub fn merge_bench_section(path: &std::path::Path, key: &str, value: &str) -> std::io::Result<()> {
    let mut sections = match std::fs::read_to_string(path) {
        Ok(text) => split_json_sections(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value.to_owned(),
        None => sections.push((key.to_owned(), value.to_owned())),
    }
    std::fs::write(path, render_json_sections(&sections))
}

/// Summary of a validated Prometheus text-format document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromStats {
    /// Number of sample lines.
    pub samples: usize,
    /// Number of `# TYPE` family declarations.
    pub families: usize,
}

/// Is `name` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses and consumes a `{label="value",…}` block, returning the rest
/// of the line (the sample value) or an error description.
fn skip_labels(rest: &str) -> Result<&str, String> {
    let mut chars = rest.char_indices();
    loop {
        // Label name up to `=`.
        let mut saw_name = false;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                break;
            }
            if c == '}' && !saw_name {
                // Empty label set `{}`.
                return Ok(&rest[i + 1..]);
            }
            if !(c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("bad label name character {c:?}"));
            }
            saw_name = true;
        }
        // Quoted value with escapes.
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected opening quote, found {other:?}")),
        }
        let mut escaped = false;
        let mut closed = false;
        for (_, c) in chars.by_ref() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape \\{c}"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed = true;
                break;
            }
        }
        if !closed {
            return Err("unterminated label value".to_owned());
        }
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok(&rest[i + 1..]),
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
}

/// Validates Prometheus text exposition (format 0.0.4) as produced by
/// the serve `Metrics` RPC: every line is a comment, a well-formed
/// `# TYPE` declaration, or a sample with a valid metric name, optional
/// label set, and parseable value; no family is TYPE-declared twice;
/// counter samples end in `_total`.
///
/// # Errors
///
/// Returns a description naming the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<PromStats, String> {
    let mut samples = 0usize;
    let mut families: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            // `# HELP …` and free-form comments are skipped; only
            // `# TYPE name kind` declarations are validated.
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: invalid metric name `{name}`"));
                }
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown TYPE kind `{kind}`"));
                }
                if kind == "counter" && !name.ends_with("_total") {
                    return Err(format!("line {n}: counter `{name}` must end in _total"));
                }
                if families.iter().any(|f| f == name) {
                    return Err(format!("line {n}: duplicate TYPE for `{name}`"));
                }
                families.push(name.to_owned());
            }
            continue;
        }
        // Sample: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let rest = if line[name_end..].starts_with('{') {
            skip_labels(&line[name_end + 1..]).map_err(|e| format!("line {n}: {e}"))?
        } else {
            &line[name_end..]
        };
        let value = rest.trim();
        let value_ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !value_ok {
            return Err(format!("line {n}: unparseable sample value `{value}`"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition text".to_owned());
    }
    Ok(PromStats {
        samples,
        families: families.len(),
    })
}

/// Reads `--reps N` style numeric arguments, with a default.
pub fn arg_value(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark::prelude::Detector;

    #[test]
    fn render_marks_the_peak_bin() {
        let pattern = [true, false, false, true, false, true, false];
        let y: Vec<f64> = (0..700)
            .map(|i| if pattern[(i + 3) % 7] { 1.0 } else { 0.0 } + (i % 11) as f64 * 0.01)
            .collect();
        let s = Detector::new(&pattern)
            .expect("valid pattern")
            .spectrum(&y)
            .expect("valid");
        let rendered = render_spectrum(&s, 7);
        assert!(rendered.contains("<-- peak"));
        assert_eq!(rendered.lines().count(), 7);
    }

    #[test]
    fn wave_glyphs() {
        assert_ne!(wave(true), wave(false));
    }

    #[test]
    fn arg_value_falls_back_to_default() {
        assert_eq!(arg_value("--definitely-not-passed", 42), 42);
    }

    #[test]
    fn prometheus_checker_accepts_real_exposition_text() {
        let mut registry = clockmark_obs::Registry::new();
        registry.counter_add("serve.requests", 7);
        registry.gauge_set("serve.uptime_seconds", 12.0);
        registry.observe("serve.request_seconds", 0.002);
        registry.span_complete("serve.detect", 1_000_000);
        let text = clockmark_obs::prometheus_text(&registry.snapshot());
        let stats = validate_prometheus_text(&text).expect("valid");
        assert!(stats.samples >= 7, "{stats:?}");
        assert!(stats.families >= 3, "{stats:?}");
    }

    #[test]
    fn prometheus_checker_rejects_malformations() {
        let cases = [
            ("", "no samples"),
            ("# TYPE clockmark_x_total counter\n", "no samples"),
            ("# TYPE bad.name counter\nbad 1\n", "invalid metric name"),
            (
                "# TYPE clockmark_x widget\nclockmark_x 1\n",
                "unknown TYPE kind",
            ),
            (
                "# TYPE clockmark_x counter\nclockmark_x 1\n",
                "must end in _total",
            ),
            (
                "# TYPE clockmark_x gauge\n# TYPE clockmark_x gauge\nclockmark_x 1\n",
                "duplicate TYPE",
            ),
            ("clockmark_x notanumber\n", "unparseable sample value"),
            ("clockmark_x{l=\"unterminated 1\n", "unterminated"),
            ("clockmark_x{l=\"v\\q\"} 1\n", "bad escape"),
            ("bad.name 1\n", "invalid metric name"),
        ];
        for (text, want) in cases {
            let err = validate_prometheus_text(text).expect_err(text);
            assert!(err.contains(want), "{text:?} -> {err}");
        }
        // Labels, escapes and special values all pass.
        let ok = "clockmark_x{span=\"a\\\"b\\\\c\\nd\",q=\"0.5\"} NaN\nclockmark_y{} +Inf\n";
        assert_eq!(
            validate_prometheus_text(ok),
            Ok(PromStats {
                samples: 2,
                families: 0
            })
        );
    }

    #[test]
    fn json_sections_split_and_render_round_trip() {
        let text = r#"{
  "bench": "BENCH_6",
  "fold": {"scalar_seconds": 1.5e-3, "speedup": 4.2},
  "notes": ["a, b", "c}d"],
  "cores": 4
}"#;
        let sections = split_json_sections(text);
        assert_eq!(
            sections.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["bench", "fold", "notes", "cores"]
        );
        assert_eq!(sections[0].1, "\"BENCH_6\"");
        assert_eq!(
            sections[1].1,
            r#"{"scalar_seconds": 1.5e-3, "speedup": 4.2}"#
        );
        assert_eq!(sections[2].1, r#"["a, b", "c}d"]"#);
        assert_eq!(sections[3].1, "4");
        // Rendering and re-splitting is stable.
        let rendered = render_json_sections(&sections);
        assert_eq!(split_json_sections(&rendered), sections);
    }

    #[test]
    fn merge_replaces_one_section_and_keeps_the_rest() {
        let path = std::env::temp_dir().join(format!(
            "cm_bench_merge_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        merge_bench_section(&path, "fold", r#"{"speedup": 4.0}"#).expect("creates");
        merge_bench_section(&path, "campaign", r#"{"jobs": 50}"#).expect("appends");
        merge_bench_section(&path, "fold", r#"{"speedup": 5.0}"#).expect("replaces");
        let sections = split_json_sections(&std::fs::read_to_string(&path).expect("reads"));
        assert_eq!(
            sections,
            vec![
                ("fold".to_owned(), r#"{"speedup": 5.0}"#.to_owned()),
                ("campaign".to_owned(), r#"{"jobs": 50}"#.to_owned()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }
}
