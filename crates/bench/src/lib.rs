//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! Kufel et al. (DATE 2014); see `EXPERIMENTS.md` at the repository root
//! for the index and the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clockmark_cpa::SpreadSpectrum;

/// Runs a bench binary's body under the observability layer.
///
/// Resolves the global recorder from `CLOCKMARK_METRICS` /
/// `CLOCKMARK_LOG` before any instrumented code runs, wraps `f` in a
/// root `bench.run` span tagged with the binary name, and flushes the
/// recorder (writing the JSON-lines artifact and the summary table)
/// after `f` returns — including when it returns an error.
pub fn obs_scope<R>(bin: &'static str, f: impl FnOnce() -> R) -> R {
    clockmark_obs::init_from_env();
    clockmark_obs::info!("{bin}: starting");
    let result = {
        let _span = clockmark_obs::span("bench.run").field("bin", bin);
        f()
    };
    clockmark_obs::flush();
    result
}

/// Renders a spread spectrum as a coarse ASCII table: the maximum |ρ| in
/// each of `bins` rotation bins, with a bar proportional to the value.
///
/// This is the textual stand-in for the paper's Fig. 5 panels: a single
/// bin dominating the rest is "a single significant correlation
/// coefficient can be resolved".
pub fn render_spectrum(spectrum: &SpreadSpectrum, bins: usize) -> String {
    let period = spectrum.period();
    let bins = bins.min(period).max(1);
    let (peak_rotation, peak_value) = spectrum.peak_abs();
    let scale = peak_value.abs().max(1e-12);

    let mut out = String::new();
    for b in 0..bins {
        let start = b * period / bins;
        let end = ((b + 1) * period / bins).max(start + 1);
        let max_abs = spectrum.rho()[start..end]
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()));
        let bar_len = ((max_abs / scale) * 50.0).round() as usize;
        let marker = if (start..end).contains(&peak_rotation) {
            "  <-- peak"
        } else {
            ""
        };
        out.push_str(&format!(
            "{start:>5}..{end:<5} |{:<50}| {max_abs:.5}{marker}\n",
            "#".repeat(bar_len.min(50))
        ));
    }
    out
}

/// Formats a `true`/`false` bit as the waveform glyphs used by the Fig. 2
/// listing.
pub fn wave(bit: bool) -> char {
    if bit {
        '▔'
    } else {
        '▁'
    }
}

/// Returns true when the process arguments contain `flag`.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Reads `--reps N` style numeric arguments, with a default.
pub fn arg_value(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark::prelude::Detector;

    #[test]
    fn render_marks_the_peak_bin() {
        let pattern = [true, false, false, true, false, true, false];
        let y: Vec<f64> = (0..700)
            .map(|i| if pattern[(i + 3) % 7] { 1.0 } else { 0.0 } + (i % 11) as f64 * 0.01)
            .collect();
        let s = Detector::new(&pattern)
            .expect("valid pattern")
            .spectrum(&y)
            .expect("valid");
        let rendered = render_spectrum(&s, 7);
        assert!(rendered.contains("<-- peak"));
        assert_eq!(rendered.lines().count(), 7);
    }

    #[test]
    fn wave_glyphs() {
        assert_ne!(wave(true), wave(false));
    }

    #[test]
    fn arg_value_falls_back_to_default() {
        assert_eq!(arg_value("--definitely-not-passed", 42), 42);
    }
}
