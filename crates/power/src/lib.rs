//! Power modelling for clock-gated netlists.
//!
//! Converts per-cycle switching activity (from `clockmark-sim`) into watts
//! using a per-cell energy library calibrated with the constants published
//! in Kufel et al. (DATE 2014): on the paper's TSMC 65 nm low-leakage
//! process at 10 MHz / 1.2 V,
//!
//! - a single register's embedded clock buffer consumes **1.476 µW**, and
//! - data switching in a single register consumes **1.126 µW**.
//!
//! Those two constants are the entire basis of the paper's Tables I and II,
//! which this crate reproduces analytically in [`tables`].
//!
//! # Example
//!
//! ```
//! use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
//! use clockmark_sim::GroupActivity;
//!
//! let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
//!
//! // 1,024 registers clocked, none switching data: the paper's Table I
//! // first row, 1.51 mW.
//! let activity = GroupActivity { reg_clock_events: 1024, ..Default::default() };
//! let p = model.dynamic_power(activity);
//! assert!((p.milliwatts() - 1.511).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod library;
mod model;
pub mod tables;
mod trace;
mod units;

pub use error::PowerError;
pub use library::EnergyLibrary;
pub use model::PowerModel;
pub use trace::PowerTrace;
pub use units::{Energy, Frequency, Power};
