use std::error::Error;
use std::fmt;

/// Errors produced by power-trace arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerError {
    /// Two traces of different lengths were combined element-wise.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::LengthMismatch { left, right } => {
                write!(f, "power traces have different lengths ({left} vs {right})")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_lengths() {
        let msg = PowerError::LengthMismatch { left: 3, right: 5 }.to_string();
        assert!(msg.contains('3') && msg.contains('5'));
    }
}
