use crate::{Power, PowerError};

/// A per-clock-cycle power series, in watts.
///
/// This is the common currency between the simulator (which produces one),
/// the SoC background-noise model (which produces another), the measurement
/// chain (which digitises the sum) and the CPA detector (which correlates
/// the result). Values are stored as raw `f64` watts for arithmetic speed;
/// use [`Power`] at the API edges.
///
/// ```
/// use clockmark_power::{Power, PowerTrace};
///
/// let mut trace = PowerTrace::new();
/// trace.push(Power::from_milliwatts(1.0));
/// trace.push(Power::from_milliwatts(3.0));
/// assert_eq!(trace.len(), 2);
/// assert!((trace.mean().milliwatts() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    watts: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace { watts: Vec::new() }
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(cycles: usize) -> Self {
        PowerTrace {
            watts: Vec::with_capacity(cycles),
        }
    }

    /// Wraps a raw per-cycle watts vector.
    pub fn from_watts(watts: Vec<f64>) -> Self {
        PowerTrace { watts }
    }

    /// A trace of `cycles` identical values.
    pub fn constant(value: Power, cycles: usize) -> Self {
        PowerTrace {
            watts: vec![value.watts(); cycles],
        }
    }

    /// Appends one cycle.
    pub fn push(&mut self, value: Power) {
        self.watts.push(value.watts());
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.watts.len()
    }

    /// Whether the trace holds no cycles.
    pub fn is_empty(&self) -> bool {
        self.watts.is_empty()
    }

    /// The power in one cycle.
    pub fn get(&self, cycle: usize) -> Option<Power> {
        self.watts.get(cycle).map(|&w| Power::from_watts(w))
    }

    /// The raw per-cycle watts.
    pub fn as_watts(&self) -> &[f64] {
        &self.watts
    }

    /// Consumes the trace, returning the raw watts vector.
    pub fn into_watts(self) -> Vec<f64> {
        self.watts
    }

    /// Element-wise sum of two traces.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LengthMismatch`] when lengths differ.
    pub fn checked_add(&self, other: &PowerTrace) -> Result<PowerTrace, PowerError> {
        if self.len() != other.len() {
            return Err(PowerError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(PowerTrace {
            watts: self
                .watts
                .iter()
                .zip(&other.watts)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Adds a constant offset (e.g. leakage) to every cycle, in place.
    pub fn add_offset(&mut self, offset: Power) {
        let w = offset.watts();
        for v in &mut self.watts {
            *v += w;
        }
    }

    /// Scales every cycle by a factor, in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.watts {
            *v *= factor;
        }
    }

    /// Arithmetic mean over all cycles (zero for an empty trace).
    pub fn mean(&self) -> Power {
        if self.watts.is_empty() {
            return Power::ZERO;
        }
        Power::from_watts(self.watts.iter().sum::<f64>() / self.watts.len() as f64)
    }

    /// Population standard deviation over all cycles.
    pub fn std_dev(&self) -> Power {
        if self.watts.is_empty() {
            return Power::ZERO;
        }
        let mean = self.mean().watts();
        let var = self
            .watts
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.watts.len() as f64;
        Power::from_watts(var.sqrt())
    }

    /// Smallest per-cycle value.
    pub fn min(&self) -> Option<Power> {
        self.watts
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .map(Power::from_watts)
    }

    /// Largest per-cycle value.
    pub fn max(&self) -> Option<Power> {
        self.watts
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .map(Power::from_watts)
    }

    /// A sub-range of the trace as a new trace.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn window(&self, start: usize, len: usize) -> PowerTrace {
        PowerTrace {
            watts: self.watts[start..start + len].to_vec(),
        }
    }

    /// Iterates over per-cycle values.
    pub fn iter(&self) -> impl Iterator<Item = Power> + '_ {
        self.watts.iter().map(|&w| Power::from_watts(w))
    }
}

impl FromIterator<Power> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = Power>>(iter: I) -> Self {
        PowerTrace {
            watts: iter.into_iter().map(|p| p.watts()).collect(),
        }
    }
}

impl Extend<Power> for PowerTrace {
    fn extend<I: IntoIterator<Item = Power>>(&mut self, iter: I) {
        self.watts.extend(iter.into_iter().map(|p| p.watts()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mw(values: &[f64]) -> PowerTrace {
        values.iter().map(|&v| Power::from_milliwatts(v)).collect()
    }

    #[test]
    fn statistics_on_known_values() {
        let t = mw(&[1.0, 2.0, 3.0, 4.0]);
        assert!((t.mean().milliwatts() - 2.5).abs() < 1e-12);
        assert!((t.std_dev().milliwatts() - 1.118).abs() < 1e-3);
        assert!((t.min().expect("non-empty").milliwatts() - 1.0).abs() < 1e-12);
        assert!((t.max().expect("non-empty").milliwatts() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), Power::ZERO);
        assert_eq!(t.std_dev(), Power::ZERO);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.get(0), None);
    }

    #[test]
    fn checked_add_requires_equal_lengths() {
        let a = mw(&[1.0, 2.0]);
        let b = mw(&[1.0]);
        assert_eq!(
            a.checked_add(&b).unwrap_err(),
            PowerError::LengthMismatch { left: 2, right: 1 }
        );
        let sum = a.checked_add(&mw(&[0.5, 0.5])).expect("same length");
        assert!((sum.get(0).expect("cycle 0").milliwatts() - 1.5).abs() < 1e-12);
        assert!((sum.get(1).expect("cycle 1").milliwatts() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn offset_and_scale_mutate_in_place() {
        let mut t = mw(&[1.0, 2.0]);
        t.add_offset(Power::from_milliwatts(0.1));
        t.scale(2.0);
        assert!((t.get(0).expect("cycle").milliwatts() - 2.2).abs() < 1e-12);
        assert!((t.get(1).expect("cycle").milliwatts() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn window_extracts_subrange() {
        let t = mw(&[1.0, 2.0, 3.0, 4.0]);
        let w = t.window(1, 2);
        assert_eq!(w.len(), 2);
        assert!((w.get(0).expect("cycle").milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_trace() {
        let t = PowerTrace::constant(Power::from_milliwatts(5.0), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.std_dev(), Power::ZERO);
        assert!((t.mean().milliwatts() - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mean_is_between_min_and_max(values in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let t = PowerTrace::from_watts(values);
            let mean = t.mean().watts();
            prop_assert!(mean >= t.min().expect("non-empty").watts() - 1e-9);
            prop_assert!(mean <= t.max().expect("non-empty").watts() + 1e-9);
        }

        #[test]
        fn add_then_subtract_offset_is_identity(values in proptest::collection::vec(-1e3f64..1e3, 0..50), offset in -1e3f64..1e3) {
            let mut t = PowerTrace::from_watts(values.clone());
            t.add_offset(Power::from_watts(offset));
            t.add_offset(Power::from_watts(-offset));
            for (a, b) in t.as_watts().iter().zip(&values) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn checked_add_is_commutative(a in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
            let b: Vec<f64> = a.iter().map(|v| v * 0.5 + 1.0).collect();
            let ta = PowerTrace::from_watts(a);
            let tb = PowerTrace::from_watts(b);
            let ab = ta.checked_add(&tb).expect("equal lengths");
            let ba = tb.checked_add(&ta).expect("equal lengths");
            prop_assert_eq!(ab, ba);
        }
    }
}
