use crate::{EnergyLibrary, Frequency, Power, PowerTrace};
use clockmark_netlist::GroupId;
use clockmark_sim::{ActivityTrace, GroupActivity};

/// Prices per-cycle switching activity into dynamic power.
///
/// Energies come from an [`EnergyLibrary`]; the clock frequency converts
/// per-event energies into per-cycle average power (the quantity an
/// oscilloscope integrating over one clock period observes).
///
/// ```
/// use clockmark_power::{EnergyLibrary, Frequency, PowerModel};
/// use clockmark_sim::GroupActivity;
///
/// let model = PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0));
/// let one_reg = GroupActivity { reg_clock_events: 1, reg_data_toggles: 1, ..Default::default() };
/// // 1.476 + 1.126 = 2.602 µW for one clocked, toggling register.
/// assert!((model.dynamic_power(one_reg).microwatts() - 2.602).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    library: EnergyLibrary,
    f_clk: Frequency,
}

impl PowerModel {
    /// Creates a model for a library at a clock frequency.
    pub fn new(library: EnergyLibrary, f_clk: Frequency) -> Self {
        PowerModel { library, f_clk }
    }

    /// The energy library in use.
    pub fn library(&self) -> &EnergyLibrary {
        &self.library
    }

    /// The clock frequency in use.
    pub fn clock_frequency(&self) -> Frequency {
        self.f_clk
    }

    /// Average dynamic power of one cycle's activity.
    pub fn dynamic_power(&self, activity: GroupActivity) -> Power {
        let lib = &self.library;
        let energy = lib.reg_clock * activity.reg_clock_events as f64
            + lib.reg_data * activity.reg_data_toggles as f64
            + lib.tree_buffer * activity.buffer_events as f64
            + lib.icg * activity.icg_events as f64;
        energy * self.f_clk
    }

    /// Per-cycle dynamic power of the whole design.
    pub fn trace(&self, activity: &ActivityTrace) -> PowerTrace {
        (0..activity.cycles())
            .map(|c| self.dynamic_power(activity.total(c)))
            .collect()
    }

    /// Per-cycle dynamic power of one cell group.
    pub fn group_trace(&self, activity: &ActivityTrace, group: GroupId) -> PowerTrace {
        (0..activity.cycles())
            .map(|c| self.dynamic_power(activity.activity(c, group)))
            .collect()
    }

    /// Static power of `registers` registers, for offsetting traces.
    pub fn static_power(&self, registers: usize) -> Power {
        self.library.leakage(registers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(EnergyLibrary::tsmc65ll(), Frequency::from_megahertz(10.0))
    }

    #[test]
    fn table1_first_row_clock_buffers_only() {
        // 1,024 registers clocked with no data switching: 1.51 mW.
        let activity = GroupActivity {
            reg_clock_events: 1024,
            ..Default::default()
        };
        let p = model().dynamic_power(activity);
        assert!((p.milliwatts() - 1.5114).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn table1_last_row_all_registers_switching() {
        // 1,024 clocked and toggling: 2.66 mW.
        let activity = GroupActivity {
            reg_clock_events: 1024,
            reg_data_toggles: 1024,
            ..Default::default()
        };
        let p = model().dynamic_power(activity);
        assert!((p.milliwatts() - 2.664).abs() < 1e-2, "got {p}");
    }

    #[test]
    fn idle_cycle_consumes_no_dynamic_power() {
        assert_eq!(model().dynamic_power(GroupActivity::default()), Power::ZERO);
    }

    #[test]
    fn trace_prices_every_cycle() {
        let mut activity = ActivityTrace::new(1);
        activity.push_cycle(&[GroupActivity {
            reg_clock_events: 10,
            ..Default::default()
        }]);
        activity.push_cycle(&[GroupActivity::default()]);
        let trace = model().trace(&activity);
        assert_eq!(trace.len(), 2);
        assert!(trace.get(0).expect("cycle").watts() > 0.0);
        assert_eq!(trace.get(1).expect("cycle"), Power::ZERO);
    }

    #[test]
    fn group_trace_isolates_one_group() {
        let mut activity = ActivityTrace::new(2);
        let busy = GroupActivity {
            reg_clock_events: 4,
            ..Default::default()
        };
        activity.push_cycle(&[GroupActivity::default(), busy]);
        let m = model();
        let top = m.group_trace(&activity, GroupId::TOP);
        assert_eq!(top.get(0).expect("cycle"), Power::ZERO);
        let total = m.trace(&activity);
        assert!(total.get(0).expect("cycle").watts() > 0.0);
    }

    #[test]
    fn tree_buffer_ablation_adds_power() {
        let lib = EnergyLibrary::tsmc65ll().with_tree_buffer(crate::Energy::from_femtojoules(30.0));
        let m = PowerModel::new(lib, Frequency::from_megahertz(10.0));
        let activity = GroupActivity {
            buffer_events: 42,
            ..Default::default()
        };
        let p = m.dynamic_power(activity);
        assert!((p.microwatts() - 42.0 * 0.3).abs() < 1e-9);
    }
}
