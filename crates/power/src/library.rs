use crate::{Energy, Frequency, Power};

/// Per-event switching energies and leakage for a standard-cell library.
///
/// The default [`tsmc65ll`](EnergyLibrary::tsmc65ll) instance encodes the
/// constants the paper reports from PrimeTime-PX sign-off on the TSMC 65 nm
/// low-leakage library at 1.2 V:
///
/// | event | paper figure @ 10 MHz | energy per event |
/// |---|---|---|
/// | register clock pin (embedded clock buffers) | 1.476 µW | 147.6 fJ |
/// | register output data toggle | 1.126 µW | 112.6 fJ |
/// | register leakage | ≈ 0.39 nW | — |
///
/// Clock-tree distribution buffers and ICG internal power default to zero
/// because the paper's per-register clock figure is an *average that already
/// includes the register's share of the tree* ("on average the dynamic
/// power consumption of a single clock buffer is 1.476 µW"). Set
/// [`tree_buffer`](EnergyLibrary::tree_buffer) /
/// [`icg`](EnergyLibrary::icg) to non-zero values for ablations that split
/// the tree out explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyLibrary {
    /// Energy per register whose clock pin receives an active cycle
    /// (covers both edges of the internal clock buffers).
    pub reg_clock: Energy,
    /// Energy per register output toggle.
    pub reg_data: Energy,
    /// Energy per active clock-tree buffer per cycle (default 0: lumped
    /// into `reg_clock`).
    pub tree_buffer: Energy,
    /// Energy per clock-gate cell receiving an input clock per cycle
    /// (default 0: lumped).
    pub icg: Energy,
    /// Static leakage per register.
    pub reg_leakage: Power,
}

impl EnergyLibrary {
    /// The paper's TSMC 65 nm low-leakage library constants.
    pub fn tsmc65ll() -> Self {
        let reference = Frequency::from_megahertz(10.0);
        EnergyLibrary {
            reg_clock: Power::from_microwatts(1.476) / reference,
            reg_data: Power::from_microwatts(1.126) / reference,
            tree_buffer: Energy::ZERO,
            icg: Energy::ZERO,
            // Table I: 0.404 µW static for the 1,024-register load circuit
            // plus its 12-register WGC → ≈ 0.39 nW per register.
            reg_leakage: Power::from_nanowatts(0.39),
        }
    }

    /// Clock-pin power of one register at a given clock frequency.
    pub fn reg_clock_power(&self, f_clk: Frequency) -> Power {
        self.reg_clock * f_clk
    }

    /// Data-toggle power of one register toggling every cycle at `f_clk`.
    pub fn reg_data_power(&self, f_clk: Frequency) -> Power {
        self.reg_data * f_clk
    }

    /// Static power of `n` registers.
    pub fn leakage(&self, registers: usize) -> Power {
        self.reg_leakage * registers as f64
    }

    /// Returns a copy with explicit tree-buffer energy (ablation use).
    pub fn with_tree_buffer(mut self, energy: Energy) -> Self {
        self.tree_buffer = energy;
        self
    }

    /// Returns a copy with explicit ICG energy (ablation use).
    pub fn with_icg(mut self, energy: Energy) -> Self {
        self.icg = energy;
        self
    }

    /// The nominal supply of the paper's chips, in volts.
    pub const NOMINAL_SUPPLY_VOLTS: f64 = 1.2;

    /// Returns a copy rescaled to a different supply voltage: switching
    /// energies scale as `(V/V₀)²` (CV² energy), leakage approximately
    /// linearly with `V` (a first-order fit adequate for the ±20 % range
    /// DVFS sweeps use; subthreshold leakage is really super-linear).
    ///
    /// ```
    /// use clockmark_power::{EnergyLibrary, Frequency};
    ///
    /// let low = EnergyLibrary::tsmc65ll().at_supply(0.9);
    /// let f = Frequency::from_megahertz(10.0);
    /// // (0.9/1.2)² = 0.5625 of the nominal 1.476 µW.
    /// assert!((low.reg_clock_power(f).microwatts() - 0.830).abs() < 0.01);
    /// ```
    pub fn at_supply(self, volts: f64) -> Self {
        let ratio = volts / Self::NOMINAL_SUPPLY_VOLTS;
        let dynamic = ratio * ratio;
        EnergyLibrary {
            reg_clock: self.reg_clock * dynamic,
            reg_data: self.reg_data * dynamic,
            tree_buffer: self.tree_buffer * dynamic,
            icg: self.icg * dynamic,
            reg_leakage: self.reg_leakage * ratio,
        }
    }
}

impl Default for EnergyLibrary {
    fn default() -> Self {
        Self::tsmc65ll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_at_reference_frequency() {
        let lib = EnergyLibrary::tsmc65ll();
        let f = Frequency::from_megahertz(10.0);
        assert!((lib.reg_clock_power(f).microwatts() - 1.476).abs() < 1e-9);
        assert!((lib.reg_data_power(f).microwatts() - 1.126).abs() < 1e-9);
    }

    #[test]
    fn clock_power_exceeds_data_power() {
        // The core observation of the paper: a register's clock buffers
        // burn more than its data switching.
        let lib = EnergyLibrary::tsmc65ll();
        assert!(lib.reg_clock > lib.reg_data);
    }

    #[test]
    fn leakage_scales_with_register_count() {
        let lib = EnergyLibrary::tsmc65ll();
        // 1,024 load registers + 12 WGC registers ≈ the 0.404 µW static
        // figure from Table I.
        let static_power = lib.leakage(1024 + 12);
        assert!((static_power.microwatts() - 0.404).abs() < 0.01);
    }

    #[test]
    fn ablation_setters_return_modified_copies() {
        let lib = EnergyLibrary::tsmc65ll()
            .with_tree_buffer(Energy::from_femtojoules(30.0))
            .with_icg(Energy::from_femtojoules(50.0));
        assert!((lib.tree_buffer.femtojoules() - 30.0).abs() < 1e-9);
        assert!((lib.icg.femtojoules() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn supply_scaling_is_quadratic_for_dynamic_linear_for_leakage() {
        let nominal = EnergyLibrary::tsmc65ll();
        let low = nominal.at_supply(0.6); // half the nominal 1.2 V
        assert!((low.reg_clock.joules() / nominal.reg_clock.joules() - 0.25).abs() < 1e-12);
        assert!((low.reg_data.joules() / nominal.reg_data.joules() - 0.25).abs() < 1e-12);
        assert!((low.reg_leakage.watts() / nominal.reg_leakage.watts() - 0.5).abs() < 1e-12);
        // Nominal voltage is the identity.
        let same = nominal.at_supply(EnergyLibrary::NOMINAL_SUPPLY_VOLTS);
        assert!((same.reg_clock.joules() - nominal.reg_clock.joules()).abs() < 1e-24);
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let lib = EnergyLibrary::tsmc65ll();
        let p10 = lib.reg_clock_power(Frequency::from_megahertz(10.0));
        let p20 = lib.reg_clock_power(Frequency::from_megahertz(20.0));
        assert!((p20.watts() - 2.0 * p10.watts()).abs() < 1e-15);
    }
}
