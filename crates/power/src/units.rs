use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Formats a value with engineering-prefix scaling for Display impls.
fn engineering(value: f64, unit: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let magnitude = value.abs();
    let (scaled, prefix) = if magnitude == 0.0 {
        (value, "")
    } else if magnitude >= 1.0 {
        if magnitude >= 1e9 {
            (value / 1e9, "G")
        } else if magnitude >= 1e6 {
            (value / 1e6, "M")
        } else if magnitude >= 1e3 {
            (value / 1e3, "k")
        } else {
            (value, "")
        }
    } else if magnitude >= 1e-3 {
        (value * 1e3, "m")
    } else if magnitude >= 1e-6 {
        (value * 1e6, "u")
    } else if magnitude >= 1e-9 {
        (value * 1e9, "n")
    } else if magnitude >= 1e-12 {
        (value * 1e12, "p")
    } else {
        (value * 1e15, "f")
    };
    write!(f, "{scaled:.3} {prefix}{unit}")
}

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Whether the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                engineering(self.0, $unit, f)
            }
        }
    };
}

unit_newtype!(
    /// Electrical power in watts.
    ///
    /// ```
    /// use clockmark_power::Power;
    ///
    /// let p = Power::from_microwatts(1476.0);
    /// assert!((p.milliwatts() - 1.476).abs() < 1e-12);
    /// assert_eq!(p.to_string(), "1.476 mW");
    /// ```
    Power,
    "W"
);

unit_newtype!(
    /// Energy in joules (per-event switching energies are femtojoule scale).
    ///
    /// ```
    /// use clockmark_power::{Energy, Frequency};
    ///
    /// let e = Energy::from_femtojoules(147.6);
    /// let p = e * Frequency::from_megahertz(10.0);
    /// assert!((p.microwatts() - 1.476).abs() < 1e-9);
    /// ```
    Energy,
    "J"
);

unit_newtype!(
    /// Frequency in hertz.
    ///
    /// ```
    /// use clockmark_power::Frequency;
    ///
    /// let f = Frequency::from_megahertz(10.0);
    /// assert_eq!(f.hertz(), 10_000_000.0);
    /// ```
    Frequency,
    "Hz"
);

impl Power {
    /// Constructs a power from watts.
    pub fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Constructs a power from milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Constructs a power from microwatts.
    pub fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Constructs a power from nanowatts.
    pub fn from_nanowatts(nw: f64) -> Self {
        Power(nw * 1e-9)
    }

    /// The value in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microwatts.
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }
}

impl Energy {
    /// Constructs an energy from joules.
    pub fn from_joules(joules: f64) -> Self {
        Energy(joules)
    }

    /// Constructs an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Constructs an energy from femtojoules.
    pub fn from_femtojoules(fj: f64) -> Self {
        Energy(fj * 1e-15)
    }

    /// The value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// The value in femtojoules.
    pub fn femtojoules(self) -> f64 {
        self.0 * 1e15
    }
}

impl Frequency {
    /// Constructs a frequency from hertz.
    pub fn from_hertz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Constructs a frequency from megahertz.
    pub fn from_megahertz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// The value in hertz.
    pub fn hertz(self) -> f64 {
        self.0
    }

    /// The value in megahertz.
    pub fn megahertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// The duration of one period, in seconds.
    pub fn period_seconds(self) -> f64 {
        1.0 / self.0
    }
}

/// Energy dissipated every cycle at a frequency is a power: `E × f = P`.
impl Mul<Frequency> for Energy {
    type Output = Power;
    fn mul(self, rhs: Frequency) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// Symmetric form of `Energy × Frequency`.
impl Mul<Energy> for Frequency {
    type Output = Power;
    fn mul(self, rhs: Energy) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// Power averaged over one cycle is an energy: `P / f = E`.
impl Div<Frequency> for Power {
    type Output = Energy;
    fn div(self, rhs: Frequency) -> Energy {
        Energy(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_constant_round_trips_through_energy() {
        // 1.476 µW at 10 MHz is 147.6 fJ per cycle.
        let p = Power::from_microwatts(1.476);
        let f = Frequency::from_megahertz(10.0);
        let e = p / f;
        assert!((e.femtojoules() - 147.6).abs() < 1e-9);
        let back = e * f;
        assert!((back.microwatts() - 1.476).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(Power::from_watts(0.0).to_string(), "0.000 W");
        assert_eq!(Power::from_milliwatts(2.66).to_string(), "2.660 mW");
        assert_eq!(Power::from_nanowatts(404.0).to_string(), "404.000 nW");
        assert_eq!(Frequency::from_megahertz(500.0).to_string(), "500.000 MHz");
        assert_eq!(Energy::from_femtojoules(112.6).to_string(), "112.600 fJ");
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Power::from_milliwatts(1.0);
        let b = Power::from_milliwatts(0.5);
        assert!(((a + b).milliwatts() - 1.5).abs() < 1e-12);
        assert!(((a - b).milliwatts() - 0.5).abs() < 1e-12);
        assert!(((a * 2.0).milliwatts() - 2.0).abs() < 1e-12);
        assert!(((a / 2.0).milliwatts() - 0.5).abs() < 1e-12);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert!(((-a).milliwatts() + 1.0).abs() < 1e-12);
        let total: Power = [a, b, b].into_iter().sum();
        assert!((total.milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let full = Power::from_milliwatts(2.66);
        let part = Power::from_milliwatts(1.51);
        let pct = part / full * 100.0;
        assert!((pct - 56.8).abs() < 0.1);
    }

    proptest! {
        #[test]
        fn unit_conversions_are_inverses(mw in -1e6f64..1e6) {
            let p = Power::from_milliwatts(mw);
            prop_assert!((p.milliwatts() - mw).abs() <= mw.abs() * 1e-12 + 1e-15);
            prop_assert!((Power::from_watts(p.watts()).watts() - p.watts()).abs() < 1e-12);
        }

        #[test]
        fn energy_frequency_power_triangle(fj in 0.1f64..1e6, mhz in 0.001f64..1e4) {
            let e = Energy::from_femtojoules(fj);
            let f = Frequency::from_megahertz(mhz);
            let p = e * f;
            let e2 = p / f;
            prop_assert!((e2.femtojoules() - fj).abs() <= fj * 1e-9);
        }
    }
}
