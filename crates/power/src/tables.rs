//! Analytic reproductions of the paper's Table I and Table II.
//!
//! Both tables are linear roll-ups of the two per-register constants the
//! paper measured with PrimeTime-PX (see [`EnergyLibrary::tsmc65ll`]):
//!
//! - **Table I** prices the placed-and-routed 1,024-register load circuit as
//!   the number of data-switching registers grows from 0 to all 1,024.
//! - **Table II** inverts the model: given a target detectable load power,
//!   how many shift registers would the state-of-the-art load circuit need
//!   (`N = P_load / (1.126 µW + 1.476 µW)`), and what fraction of the
//!   watermark area does the proposed technique therefore remove
//!   (`N / (N + 12)` with a 12-register WGC)?
//!
//! The functions here are deliberately analytic so the benches can compare
//! them against the *simulated* roll-up from `clockmark-sim`; the two must
//! agree exactly, which is itself a regression test of the simulator.

use crate::{EnergyLibrary, Frequency, Power};

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Number of registers whose data toggles when `WMARK = 1` (the rest
    /// only burn clock power).
    pub switching_registers: u32,
    /// Dynamic power while the watermark is active.
    pub dynamic: Power,
    /// Static (leakage) power of the whole watermark circuit.
    pub static_power: Power,
    /// Total power (dynamic + static).
    pub total: Power,
    /// Load-circuit share of the total watermark dynamic power, in percent.
    pub load_share_pct: f64,
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The target detectable load-circuit dynamic power.
    pub p_load: Power,
    /// Registers the state-of-the-art load circuit needs to reach it:
    /// `N = P_load / (data + clock power per register)`.
    pub registers_needed: u64,
    /// Area-overhead reduction achieved by removing the load circuit and
    /// keeping only the WGC, in percent: `N / (N + wgc_registers) × 100`.
    pub area_reduction_pct: f64,
}

/// Parameters shared by both tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableModel {
    /// Energy library supplying the per-register constants.
    pub library: EnergyLibrary,
    /// Clock frequency at which powers are quoted (the paper uses 10 MHz).
    pub f_clk: Frequency,
    /// Total registers in the clock-gated redundant block (1,024 in the
    /// test chips).
    pub load_registers: u32,
    /// Registers in the watermark generation circuit (12 in the paper's
    /// experiments: a 12-bit LFSR).
    pub wgc_registers: u32,
    /// Dynamic power of the WGC itself. The paper's Table I percentages
    /// imply ≈ 60 µW for the WGC macro including its control logic.
    pub wgc_dynamic: Power,
}

impl TableModel {
    /// The paper's experimental configuration.
    pub fn paper() -> Self {
        TableModel {
            library: EnergyLibrary::tsmc65ll(),
            f_clk: Frequency::from_megahertz(10.0),
            load_registers: 1024,
            wgc_registers: 12,
            wgc_dynamic: Power::from_microwatts(60.0),
        }
    }

    /// Dynamic power of the gated block with `switching` of its registers
    /// toggling data (all of them burn clock power while `WMARK = 1`).
    pub fn load_dynamic(&self, switching: u32) -> Power {
        let clock = self.library.reg_clock_power(self.f_clk) * self.load_registers as f64;
        let data = self.library.reg_data_power(self.f_clk) * switching as f64;
        clock + data
    }

    /// Computes one Table I row.
    pub fn table1_row(&self, switching_registers: u32) -> Table1Row {
        let dynamic = self.load_dynamic(switching_registers);
        let static_power = self
            .library
            .leakage((self.load_registers + self.wgc_registers) as usize);
        let load_share_pct = dynamic / (dynamic + self.wgc_dynamic) * 100.0;
        Table1Row {
            switching_registers,
            dynamic,
            static_power,
            total: dynamic + static_power,
            load_share_pct,
        }
    }

    /// Computes the paper's four Table I rows (0, 256, 512, 1,024 switching
    /// registers).
    pub fn table1(&self) -> Vec<Table1Row> {
        [0u32, 256, 512, 1024]
            .into_iter()
            .map(|k| self.table1_row(k))
            .collect()
    }

    /// Per-register cost used by Table II: clock plus data power of one
    /// load-circuit register (2.602 µW at the paper's constants).
    pub fn per_register_load_power(&self) -> Power {
        self.library.reg_clock_power(self.f_clk) + self.library.reg_data_power(self.f_clk)
    }

    /// Computes one Table II row for a target load power.
    pub fn table2_row(&self, p_load: Power) -> Table2Row {
        let n = (p_load / self.per_register_load_power()).floor() as u64;
        let area_reduction_pct = n as f64 / (n as f64 + self.wgc_registers as f64) * 100.0;
        Table2Row {
            p_load,
            registers_needed: n,
            area_reduction_pct,
        }
    }

    /// Computes the paper's six Table II rows
    /// (0.25, 0.5, 1, 1.5, 5 and 10 mW).
    pub fn table2(&self) -> Vec<Table2Row> {
        [0.25, 0.5, 1.0, 1.5, 5.0, 10.0]
            .into_iter()
            .map(|mw| self.table2_row(Power::from_milliwatts(mw)))
            .collect()
    }
}

impl Default for TableModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_dynamic_column() {
        // Paper: 1.51, 1.80, 2.09, 2.66 mW.
        let rows = TableModel::paper().table1();
        let expected_mw = [1.51, 1.80, 2.09, 2.66];
        for (row, expected) in rows.iter().zip(expected_mw) {
            assert!(
                (row.dynamic.milliwatts() - expected).abs() < 0.01,
                "{} switching: got {}, paper {expected} mW",
                row.switching_registers,
                row.dynamic
            );
        }
    }

    #[test]
    fn table1_static_column_matches_paper() {
        // Paper: ≈ 0.404–0.408 µW static in every row.
        for row in TableModel::paper().table1() {
            assert!(
                (row.static_power.microwatts() - 0.404).abs() < 0.01,
                "got {}",
                row.static_power
            );
        }
    }

    #[test]
    fn table1_share_column_matches_paper_shape() {
        // Paper: 95.6 %, 96.8 %, 97.2 %, 98 % — monotonically increasing,
        // all above 95 %.
        let rows = TableModel::paper().table1();
        let shares: Vec<f64> = rows.iter().map(|r| r.load_share_pct).collect();
        assert!(shares.windows(2).all(|w| w[1] > w[0]), "{shares:?}");
        assert!(shares.iter().all(|&s| s > 95.0 && s < 99.0), "{shares:?}");
        // Middle rows reproduce the paper to a tenth of a percent.
        assert!((shares[1] - 96.8).abs() < 0.1, "{}", shares[1]);
        assert!((shares[2] - 97.2).abs() < 0.1, "{}", shares[2]);
    }

    #[test]
    fn table2_reproduces_paper_register_column_exactly() {
        // Paper: 96, 192, 384, 576, 1921, 3843 registers.
        let rows = TableModel::paper().table2();
        let expected = [96u64, 192, 384, 576, 1921, 3843];
        for (row, expected) in rows.iter().zip(expected) {
            assert_eq!(
                row.registers_needed, expected,
                "for {}, got {} registers",
                row.p_load, row.registers_needed
            );
        }
    }

    #[test]
    fn table2_reproduces_paper_area_column() {
        // Paper: 88.9, 94.1, 96.9, 98, 99.4, 99.7 %.
        let rows = TableModel::paper().table2();
        let expected = [88.9, 94.1, 96.9, 98.0, 99.4, 99.7];
        for (row, expected) in rows.iter().zip(expected) {
            assert!(
                (row.area_reduction_pct - expected).abs() < 0.1,
                "for {}: got {:.2}, paper {expected}",
                row.p_load,
                row.area_reduction_pct
            );
        }
    }

    #[test]
    fn area_reduction_grows_with_system_size() {
        // Bigger systems need bigger load circuits, so removing the load
        // saves more — the paper's scaling argument.
        let rows = TableModel::paper().table2();
        assert!(rows
            .windows(2)
            .all(|w| w[1].area_reduction_pct > w[0].area_reduction_pct));
    }

    #[test]
    fn per_register_cost_is_2_602_uw() {
        let p = TableModel::paper().per_register_load_power();
        assert!((p.microwatts() - 2.602).abs() < 1e-9);
    }
}
