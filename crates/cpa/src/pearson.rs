use crate::CpaError;

/// Pearson correlation coefficient between two equal-length vectors.
///
/// Implements equation (1) of the paper:
///
/// ```text
///         N·Σxᵢyᵢ − Σxᵢ·Σyᵢ
/// ρ = ─────────────────────────────────────────────
///     √(N·Σxᵢ² − (Σxᵢ)²) · √(N·Σyᵢ² − (Σyᵢ)²)
/// ```
///
/// Returns a value in `[-1, 1]`; `1` for identical signals, `-1` for
/// identical but inverted signals, `0` for no linear relationship. When one
/// of the vectors has zero variance the correlation is undefined; this
/// function returns `0.0` in that case (the detector treats such rotations
/// as "no relationship", matching how a flat measurement would read).
///
/// # Errors
///
/// Returns [`CpaError::LengthMismatch`] when lengths differ and
/// [`CpaError::TooShort`] when fewer than two samples are supplied.
///
/// ```
/// # fn main() -> Result<(), clockmark_cpa::CpaError> {
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let anti = [4.0, 3.0, 2.0, 1.0];
/// assert!((clockmark_cpa::pearson(&x, &x)? - 1.0).abs() < 1e-12);
/// assert!((clockmark_cpa::pearson(&x, &anti)? + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, CpaError> {
    if x.len() != y.len() {
        return Err(CpaError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(CpaError::TooShort { len: x.len() });
    }
    let n = x.len() as f64;
    // Four independent lanes per sum, combined pairwise at the end. This
    // breaks the loop-carried addition chains so the five sums
    // autovectorize; unlike the fold and rotation kernels, nothing
    // downstream byte-compares pearson() results, so this reassociation
    // is free to change the last bits (the tolerance tests below pin the
    // accuracy).
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (
        [0.0f64; 4],
        [0.0f64; 4],
        [0.0f64; 4],
        [0.0f64; 4],
        [0.0f64; 4],
    );
    let mut xq = x.chunks_exact(4);
    let mut yq = y.chunks_exact(4);
    for (a, b) in xq.by_ref().zip(yq.by_ref()) {
        for lane in 0..4 {
            sx[lane] += a[lane];
            sy[lane] += b[lane];
            sxx[lane] += a[lane] * a[lane];
            syy[lane] += b[lane] * b[lane];
            sxy[lane] += a[lane] * b[lane];
        }
    }
    for (&a, &b) in xq.remainder().iter().zip(yq.remainder()) {
        sx[0] += a;
        sy[0] += b;
        sxx[0] += a * a;
        syy[0] += b * b;
        sxy[0] += a * b;
    }
    let fold4 = |l: [f64; 4]| (l[0] + l[1]) + (l[2] + l[3]);
    Ok(correlation_from_sums(
        n,
        fold4(sx),
        fold4(sy),
        fold4(sxx),
        fold4(syy),
        fold4(sxy),
    ))
}

/// Assembles ρ from running sums — shared with the folded rotational path.
pub(crate) fn correlation_from_sums(n: f64, sx: f64, sy: f64, sxx: f64, syy: f64, sxy: f64) -> f64 {
    let num = n * sxy - sx * sy;
    let var_x = n * sxx - sx * sx;
    let var_y = n * syy - sy * sy;
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    let rho = num / (var_x.sqrt() * var_y.sqrt());
    rho.clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlation_and_anticorrelation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let inv: Vec<f64> = x.iter().map(|v| -2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).expect("valid") - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &inv).expect("valid") + 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_signals_correlate_to_zero() {
        // One full period of sine vs cosine, coarsely sampled.
        let n = 360;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).to_radians().sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).to_radians().cos()).collect();
        assert!(pearson(&x, &y).expect("valid").abs() < 1e-10);
    }

    #[test]
    fn zero_variance_reads_as_zero() {
        let flat = [5.0; 10];
        let ramp: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&flat, &ramp).expect("valid"), 0.0);
        assert_eq!(pearson(&ramp, &flat).expect("valid"), 0.0);
    }

    #[test]
    fn input_validation() {
        assert_eq!(
            pearson(&[1.0], &[1.0, 2.0]).unwrap_err(),
            CpaError::LengthMismatch { left: 1, right: 2 }
        );
        assert_eq!(
            pearson(&[1.0], &[1.0]).unwrap_err(),
            CpaError::TooShort { len: 1 }
        );
        assert_eq!(
            pearson(&[], &[]).unwrap_err(),
            CpaError::TooShort { len: 0 }
        );
    }

    proptest! {
        #[test]
        fn result_is_always_within_unit_interval(
            x in proptest::collection::vec(-1e3f64..1e3, 2..100),
        ) {
            let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v * 0.3 + (i % 5) as f64).collect();
            let rho = pearson(&x, &y).expect("valid");
            prop_assert!((-1.0..=1.0).contains(&rho));
        }

        #[test]
        fn symmetric_in_arguments(x in proptest::collection::vec(-100f64..100.0, 2..50)) {
            let y: Vec<f64> = x.iter().rev().copied().collect();
            let a = pearson(&x, &y).expect("valid");
            let b = pearson(&y, &x).expect("valid");
            prop_assert!((a - b).abs() < 1e-12);
        }

        #[test]
        fn invariant_under_affine_transform(
            x in proptest::collection::vec(-100f64..100.0, 3..50),
            scale in 0.1f64..10.0,
            offset in -100f64..100.0,
        ) {
            let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v + (i as f64).sin()).collect();
            let x2: Vec<f64> = x.iter().map(|v| v * scale + offset).collect();
            let a = pearson(&x, &y).expect("valid");
            let b = pearson(&x2, &y).expect("valid");
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
