use crate::{CpaError, DetectionCriterion, SpreadSpectrum};

/// Box-plot statistics of a sample set, matching the paper's Fig. 6
/// convention: the box covers 95 % of all values (2.5th to 97.5th
/// percentile), the median marks the centre, and extremes are the whisker
/// ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlotStats {
    /// Sample median.
    pub median: f64,
    /// 2.5th percentile (lower edge of the 95 % box).
    pub q_low: f64,
    /// 97.5th percentile (upper edge of the 95 % box).
    pub q_high: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl BoxPlotStats {
    /// Computes the statistics from a sample set.
    ///
    /// Returns `None` for an empty input.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(BoxPlotStats {
            median: percentile(&sorted, 50.0),
            q_low: percentile(&sorted, 2.5),
            q_high: percentile(&sorted, 97.5),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            n: sorted.len(),
        })
    }
}

/// Linear-interpolation percentile over a pre-sorted slice.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let frac = rank - low as f64;
    sorted[low] * (1.0 - frac) + sorted[high] * frac
}

/// Aggregates spread spectra from repeated experiments — the data behind
/// the paper's Fig. 6 box plots (100 repetitions per chip).
///
/// ```
/// # fn main() -> Result<(), clockmark_cpa::CpaError> {
/// use clockmark_cpa::{Detector, RotationEnsemble};
///
/// let pattern = [true, false, true, false, false];
/// let detector = Detector::new(&pattern)?;
/// let mut ensemble = RotationEnsemble::new(pattern.len());
/// for run in 0..5 {
///     let y: Vec<f64> = (0..100)
///         .map(|i| if pattern[(i + 2) % 5] { 1.0 } else { 0.0 } + (i + run) as f64 * 1e-3)
///         .collect();
///     ensemble.add(&detector.spectrum(&y)?)?;
/// }
/// assert_eq!(ensemble.runs(), 5);
/// let peak_stats = ensemble.stats_at(2).expect("has samples");
/// assert!(peak_stats.median > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RotationEnsemble {
    period: usize,
    /// Row-major: run-major storage of per-rotation coefficients.
    runs: Vec<Vec<f64>>,
}

impl RotationEnsemble {
    /// Creates an empty ensemble for a watermark period.
    pub fn new(period: usize) -> Self {
        RotationEnsemble {
            period,
            runs: Vec::new(),
        }
    }

    /// Adds one experiment's spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::PeriodMismatch`] when the spectrum's period
    /// differs from the ensemble's.
    pub fn add(&mut self, spectrum: &SpreadSpectrum) -> Result<(), CpaError> {
        if spectrum.period() != self.period {
            return Err(CpaError::PeriodMismatch {
                expected: self.period,
                got: spectrum.period(),
            });
        }
        self.runs.push(spectrum.rho().to_vec());
        Ok(())
    }

    /// Number of collected runs.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Box statistics of the coefficients observed at one rotation across
    /// all runs. `None` when no runs were added or the rotation is out of
    /// range.
    pub fn stats_at(&self, rotation: usize) -> Option<BoxPlotStats> {
        if rotation >= self.period || self.runs.is_empty() {
            return None;
        }
        let samples: Vec<f64> = self.runs.iter().map(|r| r[rotation]).collect();
        BoxPlotStats::from_samples(&samples)
    }

    /// Box statistics at every rotation (length = period).
    pub fn stats(&self) -> Vec<Option<BoxPlotStats>> {
        (0..self.period).map(|r| self.stats_at(r)).collect()
    }

    /// The rotation whose median coefficient is largest, with its stats.
    pub fn peak_rotation(&self) -> Option<(usize, BoxPlotStats)> {
        (0..self.period)
            .filter_map(|r| self.stats_at(r).map(|s| (r, s)))
            .max_by(|a, b| a.1.median.total_cmp(&b.1.median))
    }

    /// How many runs satisfied the detection criterion — the paper reports
    /// 100 / 100 for both chips.
    pub fn detection_count(&self, criterion: &DetectionCriterion) -> usize {
        self.runs
            .iter()
            .filter(|rho| {
                SpreadSpectrum::from_rho((*rho).clone())
                    .detect(criterion)
                    .detected
            })
            .count()
    }

    /// Pooled box statistics over every off-peak rotation and run — the
    /// "floor" distribution of Fig. 6.
    pub fn floor_stats(&self) -> Option<BoxPlotStats> {
        let (peak, _) = self.peak_rotation()?;
        let samples: Vec<f64> = self
            .runs
            .iter()
            .flat_map(|run| {
                run.iter()
                    .enumerate()
                    .filter(move |(r, _)| *r != peak)
                    .map(|(_, v)| *v)
            })
            .collect();
        BoxPlotStats::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaError, Detector};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::new(pattern)?.spectrum(y)
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = BoxPlotStats::from_samples(&samples).expect("non-empty");
        assert!((stats.median - 50.5).abs() < 1e-9);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 100.0);
        assert!((stats.q_low - 3.475).abs() < 1e-9);
        assert!((stats.q_high - 97.525).abs() < 1e-9);
        assert_eq!(stats.n, 100);
    }

    #[test]
    fn single_sample_stats() {
        let stats = BoxPlotStats::from_samples(&[3.0]).expect("non-empty");
        assert_eq!(stats.median, 3.0);
        assert_eq!(stats.q_low, 3.0);
        assert_eq!(stats.q_high, 3.0);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert_eq!(BoxPlotStats::from_samples(&[]), None);
    }

    #[test]
    fn ensemble_rejects_mismatched_periods() {
        let mut ensemble = RotationEnsemble::new(7);
        let s =
            spread_spectrum(&[true, false, true], &[1.0, 0.0, 1.0, 1.0, 0.0, 1.0]).expect("valid");
        assert_eq!(
            ensemble.add(&s).unwrap_err(),
            CpaError::PeriodMismatch {
                expected: 7,
                got: 3
            }
        );
    }

    #[test]
    fn repeated_noisy_experiments_reproduce_fig6_shape() {
        // 30 repetitions of a watermarked, noisy measurement: the peak
        // rotation's median is clearly separated from the pooled floor.
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(5).expect("valid width");
        let pattern: Vec<bool> = (0..31).map(|_| lfsr.next_bit()).collect();
        let mut ensemble = RotationEnsemble::new(31);
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let y: Vec<f64> = (0..3000)
                .map(|i| {
                    let wm = if pattern[(i + 9) % 31] { 0.5 } else { 0.0 };
                    wm + rng.random_range(-2.0..2.0)
                })
                .collect();
            ensemble
                .add(&spread_spectrum(&pattern, &y).expect("valid"))
                .expect("same period");
        }

        let (peak_rot, peak_stats) = ensemble.peak_rotation().expect("has runs");
        assert_eq!(peak_rot, 9);
        let floor = ensemble.floor_stats().expect("has runs");
        assert!(
            peak_stats.median > floor.q_high,
            "peak median {} must clear floor 97.5th percentile {}",
            peak_stats.median,
            floor.q_high
        );
        // Every run individually detects.
        assert_eq!(ensemble.detection_count(&DetectionCriterion::default()), 30);
        // Floor medians hug zero.
        assert!(floor.median.abs() < 0.02, "floor median {}", floor.median);
    }

    #[test]
    fn stats_at_out_of_range_rotation_is_none() {
        let ensemble = RotationEnsemble::new(5);
        assert_eq!(ensemble.stats_at(9), None);
        assert_eq!(ensemble.stats_at(0), None, "no runs added yet");
    }

    proptest! {
        #[test]
        fn percentile_bounds_hold(samples in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let stats = BoxPlotStats::from_samples(&samples).expect("non-empty");
            prop_assert!(stats.min <= stats.q_low + 1e-9);
            prop_assert!(stats.q_low <= stats.median + 1e-9);
            prop_assert!(stats.median <= stats.q_high + 1e-9);
            prop_assert!(stats.q_high <= stats.max + 1e-9);
        }
    }
}
