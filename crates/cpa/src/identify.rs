//! Batched multi-pattern identification: *whose* watermark does a trace
//! carry?
//!
//! Verification asks a yes/no question about one known pattern; the
//! ownership-identification workload correlates one trace against many
//! candidate LFSR seed/tap patterns and ranks them. Naively that is N
//! independent detects, each re-folding the trace and re-transforming
//! the fold. But the per-residue fold (`c`, `m`, Σy, Σy²) depends only
//! on the *period*, never on the pattern bits, so one fold serves every
//! candidate; and with the trace-side transform `Z = DFT(c + i·m)`
//! cached ([`clockmark_dsp::MultiCorrelator`]), each candidate costs one
//! forward FFT of its ones-indicator plus one inverse — down from the
//! three transforms an independent detect pays, before candidates are
//! spread across threads.
//!
//! **Bit-identity.** Every per-candidate [`DetectionResult`] is
//! bit-identical to what [`Detector::detect`](crate::Detector::detect)
//! would report for that candidate on the same samples (for the folded
//! kernel by shared arithmetic; for the FFT kernel because the cached
//! `Z`, the per-candidate indicator transform, the elementwise product
//! and the exact refinement reproduce `spectrum_fft`'s operations bit
//! for bit — the batching only reorders *which call* computes each
//! transform, never the arithmetic inside one). `CpaAlgo::Naive`
//! follows the streaming precedent and is evaluated with the
//! (decision-identical) folded arithmetic, since a fold retains no raw
//! trace.

use crate::detect::{DetectionCriterion, DetectionResult};
use crate::error::CpaError;
use crate::kernel::{refine_exactly, rho_from_correlations, spectrum_folded, SpectrumInputs};
use crate::{CpaAlgo, SpreadSpectrum};
use clockmark_dsp::MultiCorrelator;

/// One candidate watermark pattern in an identification query.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePattern {
    /// Caller-chosen name carried through to the ranked ledger (e.g.
    /// `"lfsr12:seed=0x5a3"`).
    pub label: String,
    /// One period of the candidate pattern; must match the query period
    /// and must not be constant.
    pub pattern: Vec<bool>,
}

impl CandidatePattern {
    /// Builds a labelled candidate.
    pub fn new(label: impl Into<String>, pattern: Vec<bool>) -> Self {
        CandidatePattern {
            label: label.into(),
            pattern,
        }
    }
}

/// One candidate's entry in the ranked identification ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Index of the candidate in the caller's input order.
    pub index: usize,
    /// The candidate's label, echoed back.
    pub label: String,
    /// The full verdict for this candidate — bit-identical to an
    /// independent [`Detector::detect`](crate::Detector::detect) with
    /// the same kernel on the same samples.
    pub result: DetectionResult,
}

/// A ranked identification ledger: candidates ordered by descending
/// peak |ρ| (ties broken by input order).
#[derive(Debug, Clone, PartialEq)]
pub struct Identification {
    /// Cycles of trace the scores were computed over.
    pub cycles: u64,
    /// Per-candidate verdicts, best first.
    pub scores: Vec<CandidateScore>,
}

impl Identification {
    /// The best-ranked candidate.
    pub fn best(&self) -> &CandidateScore {
        &self.scores[0]
    }
}

/// Scores every candidate against one shared fold and ranks them.
///
/// `threads` partitions the *candidates*; each candidate's spectrum is
/// computed serially with arithmetic independent of the partition, so
/// any thread count yields the same bytes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn identify_over_fold(
    nf: f64,
    sy: f64,
    syy: f64,
    c: &[f64],
    m: &[u64],
    cycles: u64,
    candidates: &[CandidatePattern],
    criterion: &DetectionCriterion,
    algo: CpaAlgo,
    threads: usize,
) -> Result<Identification, CpaError> {
    let period = c.len();
    if candidates.is_empty() {
        return Err(CpaError::InvalidState {
            message: "identify needs at least one candidate pattern".to_owned(),
        });
    }
    for candidate in candidates {
        if candidate.pattern.len() != period {
            return Err(CpaError::PeriodMismatch {
                expected: period,
                got: candidate.pattern.len(),
            });
        }
        if candidate.pattern.iter().all(|&b| b) || candidate.pattern.iter().all(|&b| !b) {
            return Err(CpaError::ConstantPattern);
        }
    }
    if cycles < period as u64 {
        return Err(CpaError::InsufficientCycles {
            have: cycles,
            need: period,
        });
    }

    let span = clockmark_obs::span("cpa.identify")
        .field("period", period)
        .field("candidates", candidates.len())
        .field("algo", algo.as_str())
        .field("threads", threads);
    let timed = span.is_recording().then(std::time::Instant::now);

    let threads = threads.clamp(1, candidates.len());
    let results: Vec<DetectionResult> = if threads == 1 {
        score_chunk(nf, sy, syy, c, m, candidates, criterion, algo)
    } else {
        let chunk = candidates.len().div_ceil(threads);
        let mut results = Vec::with_capacity(candidates.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || score_chunk(nf, sy, syy, c, m, part, criterion, algo))
                })
                .collect();
            // Joining in spawn order keeps the concatenation — and thus
            // the tie-break order — deterministic.
            for handle in handles {
                results.extend(handle.join().expect("identify worker panicked"));
            }
        });
        results
    };

    let mut order: Vec<usize> = (0..results.len()).collect();
    order.sort_by(|&a, &b| {
        results[b]
            .peak_rho
            .abs()
            .total_cmp(&results[a].peak_rho.abs())
            .then(a.cmp(&b))
    });
    let scores: Vec<CandidateScore> = order
        .into_iter()
        .map(|i| CandidateScore {
            index: i,
            label: candidates[i].label.clone(),
            result: results[i],
        })
        .collect();
    if let Some(t0) = timed {
        clockmark_obs::observe("cpa.identify_seconds", t0.elapsed().as_secs_f64());
    }
    Ok(Identification { cycles, scores })
}

/// Scores a contiguous slice of candidates on one thread, in input
/// order. The FFT path builds one [`MultiCorrelator`] per thread and
/// caches `Z = DFT(c + i·m)` across its candidates.
#[allow(clippy::too_many_arguments)]
fn score_chunk(
    nf: f64,
    sy: f64,
    syy: f64,
    c: &[f64],
    m: &[u64],
    candidates: &[CandidatePattern],
    criterion: &DetectionCriterion,
    algo: CpaAlgo,
) -> Vec<DetectionResult> {
    let period = c.len();
    let mut ones: Vec<usize> = Vec::with_capacity(period);
    if algo == CpaAlgo::Fft {
        let mut multi = MultiCorrelator::new(period)
            .expect("validated patterns have period >= 2, so the plan is non-empty");
        let m_f64: Vec<f64> = m.iter().map(|&v| v as f64).collect();
        multi
            .set_signals(c, &m_f64)
            .expect("fold buffers share the correlator length by construction");
        let mut indicator = vec![0.0f64; period];
        let mut sxy = vec![0.0f64; period];
        let mut sx = vec![0.0f64; period];
        candidates
            .iter()
            .map(|candidate| {
                ones.clear();
                ones.extend((0..period).filter(|&j| candidate.pattern[j]));
                indicator.fill(0.0);
                for &j in &ones {
                    indicator[j] = 1.0;
                }
                multi
                    .correlate_one(&indicator, &mut sxy, &mut sx)
                    .expect("buffers sized to the correlator length");
                let inputs = SpectrumInputs {
                    nf,
                    sy,
                    syy,
                    c,
                    m,
                    ones: &ones,
                };
                let mut rho = rho_from_correlations(&inputs, &sxy, &sx);
                refine_exactly(&inputs, &mut rho, 1);
                SpreadSpectrum::from_rho(rho).detect(criterion)
            })
            .collect()
    } else {
        candidates
            .iter()
            .map(|candidate| {
                ones.clear();
                ones.extend((0..period).filter(|&j| candidate.pattern[j]));
                let inputs = SpectrumInputs {
                    nf,
                    sy,
                    syy,
                    c,
                    m,
                    ones: &ones,
                };
                spectrum_folded(&inputs, 1).detect(criterion)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAlgo, CpaError, DetectOptions, Detector, StreamingCpa};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Distinct random 127-period binary candidates. Cyclic shifts of
    /// one m-sequence would NOT work here: they are the same sequence
    /// at different phases, and rotational CPA is phase-blind by
    /// design. Independent random patterns have low cross-correlation,
    /// so only the embedded candidate scores high.
    fn candidate_bank(count: usize) -> Vec<CandidatePattern> {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        (0..count)
            .map(|s| {
                let mut pattern: Vec<bool> =
                    (0..127).map(|_| rng.random_range(0..2) == 1).collect();
                // Guard against the (astronomically unlikely) constant draw.
                pattern[0] = true;
                pattern[1] = false;
                CandidatePattern::new(format!("seed-{s}"), pattern)
            })
            .collect()
    }

    fn noisy_trace(pattern: &[bool], n: usize, phase: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let wm = if pattern[(i + phase) % pattern.len()] {
                    1.0
                } else {
                    0.0
                };
                wm + rng.random_range(-2.0..2.0f64)
            })
            .collect()
    }

    #[test]
    fn identify_ranks_the_embedded_pattern_first() {
        let candidates = candidate_bank(16);
        let truth = 5usize;
        let y = noisy_trace(&candidates[truth].pattern, 40_000, 13, 3);
        // The detector pattern fixes the fold period; any 127-period
        // pattern works as the fold anchor.
        let detector = Detector::new(&candidates[0].pattern).expect("valid");
        let identification = detector.identify(&y, &candidates).expect("valid");
        assert_eq!(identification.cycles, 40_000);
        assert_eq!(identification.scores.len(), 16);
        let best = identification.best();
        assert_eq!(best.index, truth);
        assert_eq!(best.label, "seed-5");
        assert!(best.result.detected);
        // Ranked by descending |peak_rho|.
        for pair in identification.scores.windows(2) {
            assert!(pair[0].result.peak_rho.abs() >= pair[1].result.peak_rho.abs());
        }
    }

    /// The tentpole contract: every per-candidate result from the shared
    /// fold is bit-identical to an independent `Detector::detect` with
    /// that candidate as the pattern — for both kernels.
    #[test]
    fn identify_is_bit_identical_to_independent_detects() {
        let candidates = candidate_bank(8);
        let y = noisy_trace(&candidates[2].pattern, 20_000, 41, 9);
        for algo in [CpaAlgo::Folded, CpaAlgo::Fft] {
            let detector = Detector::with_options(
                &candidates[0].pattern,
                DetectOptions::default().with_algo(algo),
            )
            .expect("valid");
            let identification = detector.identify(&y, &candidates).expect("valid");
            for score in &identification.scores {
                let independent = Detector::with_options(
                    &candidates[score.index].pattern,
                    DetectOptions::default().with_algo(algo),
                )
                .expect("valid")
                .detect(&y)
                .expect("valid");
                assert_eq!(score.result.detected, independent.detected, "{algo:?}");
                assert_eq!(score.result.peak_rotation, independent.peak_rotation);
                assert_eq!(
                    score.result.peak_rho.to_bits(),
                    independent.peak_rho.to_bits()
                );
                assert_eq!(
                    score.result.floor_max_abs.to_bits(),
                    independent.floor_max_abs.to_bits()
                );
                assert_eq!(score.result.ratio.to_bits(), independent.ratio.to_bits());
                assert_eq!(score.result.zscore.to_bits(), independent.zscore.to_bits());
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_a_single_bit() {
        let candidates = candidate_bank(9);
        let y = noisy_trace(&candidates[4].pattern, 15_000, 0, 17);
        let mut session = StreamingCpa::new(&candidates[0].pattern).expect("valid");
        session.push_chunk(&y);
        let criterion = crate::DetectionCriterion::default();
        let serial = session.identify(&candidates, &criterion, 1).expect("valid");
        for threads in [2usize, 3, 8, 64] {
            let parallel = session
                .identify(&candidates, &criterion, threads)
                .expect("valid");
            assert_eq!(parallel.scores.len(), serial.scores.len());
            for (p, s) in parallel.scores.iter().zip(&serial.scores) {
                assert_eq!(p.index, s.index, "threads {threads}");
                assert_eq!(p.result.peak_rho.to_bits(), s.result.peak_rho.to_bits());
                assert_eq!(p.result.zscore.to_bits(), s.result.zscore.to_bits());
            }
        }
    }

    #[test]
    fn validation_rejects_bad_candidates() {
        let candidates = candidate_bank(2);
        let y = noisy_trace(&candidates[0].pattern, 5_000, 0, 1);
        let detector = Detector::new(&candidates[0].pattern).expect("valid");

        let err = detector.identify(&y, &[]).unwrap_err();
        assert!(matches!(err, CpaError::InvalidState { .. }));

        let short = CandidatePattern::new("short", vec![true; 63]);
        let err = detector.identify(&y, &[short]).unwrap_err();
        assert!(matches!(
            err,
            CpaError::PeriodMismatch {
                expected: 127,
                got: 63
            }
        ));

        let constant = CandidatePattern::new("constant", vec![true; 127]);
        let err = detector.identify(&y, &[constant]).unwrap_err();
        assert!(matches!(err, CpaError::ConstantPattern));

        let err = detector.identify(&y[..100], &candidates).unwrap_err();
        assert!(matches!(
            err,
            CpaError::TraceShorterThanPeriod {
                have: 100,
                need: 127
            }
        ));
    }

    #[test]
    fn streaming_identify_matches_batch_identify() {
        let candidates = candidate_bank(5);
        let y = noisy_trace(&candidates[1].pattern, 12_000, 99, 23);
        let detector = Detector::new(&candidates[0].pattern).expect("valid");
        let batch = detector.identify(&y, &candidates).expect("valid");

        let mut session = detector.detect_streaming();
        for chunk in y.chunks(777) {
            session.push_chunk(chunk);
        }
        let streamed = session.identify(&candidates).expect("valid");
        assert_eq!(streamed.cycles, batch.cycles);
        for (a, b) in streamed.scores.iter().zip(&batch.scores) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.result.peak_rho.to_bits(), b.result.peak_rho.to_bits());
        }
    }
}
