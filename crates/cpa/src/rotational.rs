use crate::pearson::correlation_from_sums;
use crate::{CpaError, DetectionCriterion, DetectionResult};

/// The correlation spread spectrum: one Pearson coefficient per rotation of
/// the watermark model vector (Fig. 5 of the paper).
///
/// Rotation `r` models the hypothesis that the measurement started `r`
/// cycles into the watermark period: `Xᵢ = pattern[(i + r) mod P]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadSpectrum {
    rho: Vec<f64>,
}

impl SpreadSpectrum {
    pub(crate) fn from_rho(rho: Vec<f64>) -> Self {
        SpreadSpectrum { rho }
    }

    /// The per-rotation correlation coefficients.
    pub fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// The watermark period (number of rotations evaluated).
    pub fn period(&self) -> usize {
        self.rho.len()
    }

    /// The rotation with the largest *signed* coefficient, and its value.
    ///
    /// Detection statistics use [`peak_abs`](Self::peak_abs) instead, so an
    /// inverted watermark (power *drops* when the pattern bit is high, e.g.
    /// an attacker re-inverting the modulation polarity) is still found.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum is empty, which the constructors prevent.
    pub fn peak(&self) -> (usize, f64) {
        let (idx, &val) = self
            .rho
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("spectra are non-empty by construction");
        (idx, val)
    }

    /// The rotation whose coefficient has the largest magnitude, and its
    /// *signed* value — negative for an inverted watermark.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum is empty, which the constructors prevent.
    pub fn peak_abs(&self) -> (usize, f64) {
        let (idx, &val) = self
            .rho
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .expect("spectra are non-empty by construction");
        (idx, val)
    }

    /// Whether every coefficient is exactly zero — a zero-variance
    /// (constant) trace, where correlation is undefined and the
    /// correlation kernel reports 0 for every rotation. No peak can
    /// be resolved from such a spectrum.
    pub fn is_degenerate(&self) -> bool {
        self.rho.iter().all(|&r| r == 0.0)
    }

    /// Whether the spectrum has any off-peak rotations at all.
    ///
    /// A period-1 spectrum consists of nothing but its own peak:
    /// [`floor_mean`](SpreadSpectrum::floor_mean) and
    /// [`floor_std`](SpreadSpectrum::floor_std) report `0.0` and the
    /// peak-vs-floor statistics degenerate to infinities, so no criterion
    /// comparing the peak against a floor can be meaningfully evaluated.
    pub fn has_noise_floor(&self) -> bool {
        self.rho.len() >= 2
    }

    /// The largest absolute coefficient among all rotations *except* the
    /// magnitude peak — the noise floor the peak must clear to be
    /// "resolved".
    pub fn floor_max_abs(&self) -> f64 {
        let (peak_idx, _) = self.peak_abs();
        self.rho
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != peak_idx)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max)
    }

    /// Mean of the non-peak coefficients.
    pub fn floor_mean(&self) -> f64 {
        let (peak_idx, _) = self.peak_abs();
        let n = self.rho.len() - 1;
        if n == 0 {
            return 0.0;
        }
        self.rho
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != peak_idx)
            .map(|(_, v)| v)
            .sum::<f64>()
            / n as f64
    }

    /// Population standard deviation of the non-peak coefficients.
    pub fn floor_std(&self) -> f64 {
        let (peak_idx, _) = self.peak_abs();
        let n = self.rho.len() - 1;
        if n == 0 {
            return 0.0;
        }
        let mean = self.floor_mean();
        let var = self
            .rho
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != peak_idx)
            .map(|(_, v)| (v - mean) * (v - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Peak magnitude divided by the largest other absolute value. Greater
    /// than one means the peak stands above everything else.
    ///
    /// A degenerate (all-zero) spectrum has no peak at all and reports
    /// `0.0`, never a spurious infinity.
    pub fn peak_to_floor_ratio(&self) -> f64 {
        let (_, peak) = self.peak_abs();
        let peak = peak.abs();
        let floor = self.floor_max_abs();
        if peak == 0.0 {
            0.0
        } else if floor == 0.0 {
            f64::INFINITY
        } else {
            peak / floor
        }
    }

    /// How many floor standard deviations the peak magnitude stands away
    /// from the floor mean.
    ///
    /// A degenerate (all-zero) spectrum reports `0.0`; a peak coinciding
    /// with the floor mean likewise scores `0.0` even when the floor has no
    /// spread.
    pub fn peak_zscore(&self) -> f64 {
        let (_, peak) = self.peak_abs();
        let distance = (peak - self.floor_mean()).abs();
        let std = self.floor_std();
        if distance == 0.0 {
            0.0
        } else if std == 0.0 {
            f64::INFINITY
        } else {
            distance / std
        }
    }

    /// Applies a detection criterion, returning the full decision record.
    pub fn detect(&self, criterion: &DetectionCriterion) -> DetectionResult {
        criterion.evaluate(self)
    }
}

pub(crate) fn validate_inputs(pattern: &[bool], y: &[f64]) -> Result<(), CpaError> {
    let period = pattern.len();
    if period < 2 {
        return Err(CpaError::TooShort { len: period });
    }
    if y.len() < period {
        return Err(CpaError::TraceShorterThanPeriod {
            have: y.len(),
            need: period,
        });
    }
    let ones = pattern.iter().filter(|&&b| b).count();
    if ones == 0 || ones == period {
        return Err(CpaError::ConstantPattern);
    }
    Ok(())
}

/// The naive kernel's body: reference O(N·P) rotational CPA, the
/// Pearson correlation between `y` and every rotation of `pattern` tiled
/// to `y`'s length, exactly as the detection procedure in Section III
/// describes. Kept as the trusted reference the fast kernels are tested
/// against; reached through the [`Detector`](crate::Detector) facade
/// with `DetectOptions::with_algo(CpaAlgo::Naive)`. Callers validate
/// first.
pub(crate) fn naive_spectrum(pattern: &[bool], y: &[f64]) -> SpreadSpectrum {
    let period = pattern.len();
    let n = y.len();
    let mut rho = Vec::with_capacity(period);

    let nf = n as f64;
    let sy: f64 = y.iter().sum();
    let syy: f64 = y.iter().map(|v| v * v).sum();

    for r in 0..period {
        let mut sx = 0.0f64;
        let mut sxy = 0.0f64;
        for (i, &yi) in y.iter().enumerate() {
            if pattern[(i + r) % period] {
                sx += 1.0;
                sxy += yi;
            }
        }
        // For binary x, Σx² = Σx.
        rho.push(correlation_from_sums(nf, sx, sy, sx, syy, sxy));
    }
    SpreadSpectrum::from_rho(rho)
}

/// The rotation-invariant folded sums shared by the serial and parallel
/// spread-spectrum implementations.
///
/// Built once in O(N); each rotation's ρ is then an O(W) sum over the
/// folded arrays, so any partition of the rotation range performs exactly
/// the same arithmetic per rotation — the basis of the bit-identical
/// guarantee of [`spread_spectrum_parallel`](crate::spread_spectrum_parallel).
#[derive(Debug, Clone)]
pub(crate) struct FoldedTrace {
    nf: f64,
    sy: f64,
    syy: f64,
    /// Per-residue sums `c_k = Σ_{i ≡ k (mod P)} y_i`.
    c: Vec<f64>,
    /// Per-residue counts `m_k = |{i ≡ k (mod P)}|`.
    m: Vec<u64>,
    /// Indices of the ones in the pattern.
    ones: Vec<usize>,
}

impl FoldedTrace {
    /// Folds a validated measurement (callers run [`validate_inputs`] first).
    pub(crate) fn new(pattern: &[bool], y: &[f64]) -> Self {
        let period = pattern.len();
        let mut c = vec![0.0f64; period];
        let mut m = vec![0u64; period];
        let mut sy = 0.0f64;
        let mut syy = 0.0f64;
        // The chunked struct-of-arrays fold (`fold.rs`): each accumulator
        // still sees the samples in index order, so the sums are
        // bit-identical to the fused scalar loop this replaces.
        crate::fold::fold_samples(&mut c, &mut m, &mut sy, &mut syy, 0, y);
        FoldedTrace {
            nf: y.len() as f64,
            sy,
            syy,
            c,
            m,
            ones: (0..period).filter(|&j| pattern[j]).collect(),
        }
    }

    /// The watermark period.
    pub(crate) fn period(&self) -> usize {
        self.c.len()
    }

    /// The multiply-adds needed for the full spectrum (`P·W`); used to
    /// decide whether parallelism is worth the thread-spawn overhead.
    pub(crate) fn work(&self) -> usize {
        self.period().saturating_mul(self.ones.len())
    }

    /// Borrows the fold as the kernel-facing view the spectrum kernels
    /// in [`crate::kernel`] operate on.
    pub(crate) fn as_inputs(&self) -> crate::kernel::SpectrumInputs<'_> {
        crate::kernel::SpectrumInputs {
            nf: self.nf,
            sy: self.sy,
            syy: self.syy,
            c: &self.c,
            m: &self.m,
            ones: &self.ones,
        }
    }
}

// Folded O(N + P·W) rotational CPA (`W` = ones per period).
//
// Because the model vector is periodic, all rotation-dependent sums reduce
// to sums over the *folded* measurement: with
// `c_k = Σ_{i ≡ k (mod P)} y_i` and `m_k = |{i ≡ k}|`,
//
//   Σ xᵢ^(r) yᵢ = Σ_{j : pattern[j]=1} c_{(j−r) mod P}
//   Σ xᵢ^(r)    = Σ_{j : pattern[j]=1} m_{(j−r) mod P}
//
// while `Σy`, `Σy²` are rotation-invariant. This turns the paper-scale
// problem (N = 300,000, P = 4,095) from ~1.2 G multiply-adds into ~8 M,
// with decisions bit-identical to the naive reference loop (values agree
// to floating-point accumulation order). The folded sums live in
// [`FoldedTrace`]; the kernels that consume them are in
// [`crate::kernel`], and every entry point — kernel choice, threading,
// environment override — is the [`Detector`](crate::Detector) facade.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAlgo, DetectOptions, Detector};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::new(pattern)?.spectrum(y)
    }

    fn spread_spectrum_naive(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        spread_spectrum_with_algo(pattern, y, CpaAlgo::Naive)
    }

    fn spread_spectrum_with_algo(
        pattern: &[bool],
        y: &[f64],
        algo: CpaAlgo,
    ) -> Result<SpreadSpectrum, CpaError> {
        Detector::with_options(pattern, DetectOptions::default().with_algo(algo))?.spectrum(y)
    }

    /// Tiles `pattern` starting at `phase` into a clean power trace.
    fn tiled(pattern: &[bool], n: usize, phase: usize, high: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if pattern[(i + phase) % pattern.len()] {
                    high
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn clean_signal_peaks_at_the_phase_offset() {
        let pattern = [true, false, true, true, false, false, false];
        for phase in 0..pattern.len() {
            let y = tiled(&pattern, 140, phase, 2.0);
            let s = spread_spectrum(&pattern, &y).expect("valid");
            let (rot, rho) = s.peak();
            assert_eq!(rot, phase, "peak must land on the injected phase");
            assert!(
                (rho - 1.0).abs() < 1e-9,
                "clean tiling correlates perfectly"
            );
        }
    }

    #[test]
    fn folded_matches_naive_on_noisy_input() {
        let mut rng = StdRng::seed_from_u64(42);
        let pattern: Vec<bool> = (0..31).map(|_| rng.random_bool(0.5)).collect();
        // Keep the pattern non-constant.
        let mut pattern = pattern;
        pattern[0] = true;
        pattern[1] = false;

        let n = 1000; // deliberately not a multiple of 31
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let wm = if pattern[(i + 11) % 31] { 0.8 } else { 0.0 };
                wm + rng.random_range(-3.0..3.0)
            })
            .collect();

        let fast = spread_spectrum(&pattern, &y).expect("valid");
        let slow = spread_spectrum_naive(&pattern, &y).expect("valid");
        assert_eq!(fast.period(), slow.period());
        for (a, b) in fast.rho().iter().zip(slow.rho()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_pattern_is_rejected() {
        let y = vec![0.0; 100];
        assert_eq!(
            spread_spectrum(&[true, true, true], &y).unwrap_err(),
            CpaError::ConstantPattern
        );
        assert_eq!(
            spread_spectrum(&[false, false], &y).unwrap_err(),
            CpaError::ConstantPattern
        );
    }

    #[test]
    fn measurement_shorter_than_period_is_rejected() {
        // The dedicated variant, with both lengths reported — not the
        // generic `LengthMismatch`, which is about *equal-length* inputs.
        assert_eq!(
            spread_spectrum(&[true, false, true, false], &[1.0, 2.0]).unwrap_err(),
            CpaError::TraceShorterThanPeriod { have: 2, need: 4 }
        );
    }

    #[test]
    fn spectrum_statistics_on_flat_noise() {
        // Pure constant y: every rotation has zero variance in y → all 0.
        // A zero-variance trace carries no watermark evidence, so the
        // statistics must stay finite and the spectrum must not detect.
        let pattern = [true, false, false, true];
        let y = vec![2.5; 64];
        let s = spread_spectrum(&pattern, &y).expect("valid");
        assert!(s.rho().iter().all(|&r| r == 0.0));
        assert!(s.is_degenerate());
        assert_eq!(s.floor_max_abs(), 0.0);
        assert_eq!(s.peak_to_floor_ratio(), 0.0);
        assert_eq!(s.peak_zscore(), 0.0);
        let result = s.detect(&crate::DetectionCriterion::default());
        assert!(!result.detected, "constant trace must not detect: {result}");
    }

    #[test]
    fn inverted_watermark_correlates_negatively() {
        let pattern = [true, false, true, false, false];
        // Power is *low* when the pattern bit is high.
        let y: Vec<f64> = (0..200)
            .map(|i| if pattern[i % 5] { 0.0 } else { 1.0 })
            .collect();
        let s = spread_spectrum(&pattern, &y).expect("valid");
        // Rotation 0 should be strongly negative, and the magnitude peak
        // must land there with its sign preserved.
        assert!(s.rho()[0] < -0.9);
        let (rot, rho) = s.peak_abs();
        assert_eq!(rot, 0);
        assert!(rho < -0.9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn folded_equals_naive(
            seed in 0u64..1000,
            period in 3usize..24,
            n_mult in 2usize..6,
            extra in 0usize..7,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pattern: Vec<bool> = (0..period).map(|_| rng.random_bool(0.5)).collect();
            pattern[0] = true;
            if pattern.iter().all(|&b| b) {
                pattern[1] = false;
            }
            let n = period * n_mult + extra;
            let y: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..5.0)).collect();

            let fast = spread_spectrum(&pattern, &y).expect("valid");
            let slow = spread_spectrum_naive(&pattern, &y).expect("valid");
            for (a, b) in fast.rho().iter().zip(slow.rho()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        /// Satellite proptest (a): the FFT kernel matches the naive
        /// reference everywhere, on random patterns and traces whose
        /// lengths are deliberately not multiples of the period, with the
        /// watermark sometimes inverted (power low on pattern-high).
        #[test]
        fn fft_matches_naive_within_1e9(
            seed in 0u64..1000,
            period in 3usize..48,
            n_mult in 2usize..6,
            extra in 1usize..7,
            inverted in proptest::any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pattern: Vec<bool> = (0..period).map(|_| rng.random_bool(0.5)).collect();
            pattern[0] = true;
            if pattern.iter().all(|&b| b) {
                pattern[1] = false;
            }
            let n = period * n_mult + extra.min(period - 1);
            let sign = if inverted { -1.0 } else { 1.0 };
            let y: Vec<f64> = (0..n)
                .map(|i| {
                    let wm = if pattern[(i + 5) % period] { sign * 0.8 } else { 0.0 };
                    wm + rng.random_range(-3.0..3.0)
                })
                .collect();

            let fft = spread_spectrum_with_algo(&pattern, &y, CpaAlgo::Fft).expect("valid");
            let naive = spread_spectrum_naive(&pattern, &y).expect("valid");
            prop_assert_eq!(fft.period(), naive.period());
            for (a, b) in fft.rho().iter().zip(naive.rho()) {
                prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
            }
        }

        /// Satellite proptest (b): after exact refinement, the FFT
        /// kernel's peak rotation and peak ρ — signed and by magnitude —
        /// are bit-identical to the folded kernel's, ties included.
        #[test]
        fn fft_peak_is_bit_identical_to_folded(
            seed in 0u64..1000,
            period in 3usize..200,
            n_mult in 1usize..5,
            extra in 0usize..11,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pattern: Vec<bool> = (0..period).map(|_| rng.random_bool(0.5)).collect();
            pattern[0] = true;
            if pattern.iter().all(|&b| b) {
                pattern[1] = false;
            }
            let n = period * n_mult + extra.min(period - 1) + period;
            let y: Vec<f64> = (0..n)
                .map(|i| {
                    let wm = if pattern[(i + 2) % period] { 0.4 } else { 0.0 };
                    wm + rng.random_range(-2.0..2.0)
                })
                .collect();

            let fft = spread_spectrum_with_algo(&pattern, &y, CpaAlgo::Fft).expect("valid");
            let folded = spread_spectrum_with_algo(&pattern, &y, CpaAlgo::Folded).expect("valid");
            let (fft_rot, fft_rho) = fft.peak_abs();
            let (fold_rot, fold_rho) = folded.peak_abs();
            prop_assert_eq!(fft_rot, fold_rot);
            prop_assert_eq!(fft_rho.to_bits(), fold_rho.to_bits());
            let (fft_rot, fft_rho) = fft.peak();
            let (fold_rot, fold_rho) = folded.peak();
            prop_assert_eq!(fft_rot, fold_rot);
            prop_assert_eq!(fft_rho.to_bits(), fold_rho.to_bits());
        }

        #[test]
        fn all_coefficients_in_unit_interval(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pattern: Vec<bool> = (0..15).map(|i| i % 3 == 0 || rng.random_bool(0.3)).collect();
            let y: Vec<f64> = (0..150).map(|_| rng.random_range(0.0..10.0)).collect();
            let s = spread_spectrum(&pattern, &y).expect("valid");
            for &r in s.rho() {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }
    }
}
