//! std-thread parallel execution of the spectrum kernels.
//!
//! The folded algorithm behind [`Detector`](crate::Detector) computes
//! each rotation's ρ from rotation-invariant sums, so the rotation
//! range can be partitioned across threads with **no** change to the
//! per-rotation arithmetic: the parallel spectrum is bit-identical to the
//! serial one for every thread count. The FFT kernel's transform is a
//! single serial O(P log P) pass, so there the *exact-refinement*
//! candidates are what gets partitioned — each candidate's refined ρ is a
//! pure function of its rotation index, preserving the same guarantee.
//! No external crates are involved — only [`std::thread::scope`].
//!
//! The worker count defaults to the machine's available parallelism and can
//! be pinned with the `CLOCKMARK_THREADS` environment variable (useful for
//! reproducible benchmarking and for confining CI runners).

/// Minimum multiply-adds (`P·W`) before the facade's spectrum path
/// prefers the threaded rotation loop; below this the thread-spawn overhead
/// dominates. The paper-scale problem (P = 4,095, W ≈ 2,048 → ~8.4 M) sits
/// well above it; unit-test-sized inputs sit well below.
pub(crate) const PARALLEL_WORK_THRESHOLD: usize = 1 << 20;

/// The number of worker threads the crate will use for parallel work.
///
/// Reads the `CLOCKMARK_THREADS` environment variable when set to a
/// positive integer; otherwise falls back to
/// [`std::thread::available_parallelism`] (and to 1 if even that is
/// unavailable).
///
/// ```
/// assert!(clockmark_cpa::thread_count() >= 1);
/// ```
pub fn thread_count() -> usize {
    thread_count_from(std::env::var("CLOCKMARK_THREADS").ok().as_deref())
}

/// [`thread_count`] with the environment lookup factored out for testing.
fn thread_count_from(var: Option<&str>) -> usize {
    if let Some(requested) = var.and_then(|v| v.trim().parse::<usize>().ok()) {
        if requested >= 1 {
            return requested;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

// Threaded spectra (`DetectOptions::with_threads`) are bit-identical to
// serial ones for every thread count. With the folded kernel the
// rotation range is partitioned: the folded sums are computed once and
// each rotation's ρ involves exactly the same operations in the same
// order regardless of which thread evaluates it. With the FFT kernel the
// transform stays serial and the exact-refinement candidates are
// partitioned instead. `threads` is clamped; `0` or `1` runs serially on
// the calling thread, and a `naive` kernel override runs the reference
// loop serially, ignoring `threads`.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAlgo, CpaError, DetectOptions, Detector, SpreadSpectrum};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum_parallel(
        pattern: &[bool],
        y: &[f64],
        threads: usize,
    ) -> Result<SpreadSpectrum, CpaError> {
        Detector::with_options(pattern, DetectOptions::default().with_threads(threads))?.spectrum(y)
    }

    fn spread_spectrum_naive(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::with_options(pattern, DetectOptions::default().with_algo(CpaAlgo::Naive))?
            .spectrum(y)
    }

    fn random_case(seed: u64, period: usize, n: usize) -> (Vec<bool>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pattern: Vec<bool> = (0..period).map(|_| rng.random_bool(0.5)).collect();
        pattern[0] = true;
        if pattern.iter().all(|&b| b) {
            pattern[1] = false;
        }
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let wm = if pattern[(i + 7) % period] { 0.5 } else { 0.0 };
                wm + rng.random_range(-2.0..2.0)
            })
            .collect();
        (pattern, y)
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_every_thread_count() {
        let (pattern, y) = random_case(3, 97, 2000);
        let serial = spread_spectrum_parallel(&pattern, &y, 1).expect("valid");
        for threads in [2, 3, 4, 7, 16, 97, 200] {
            let parallel = spread_spectrum_parallel(&pattern, &y, threads).expect("valid");
            // Exact bit equality, not approximate: chunking must not change
            // any per-rotation arithmetic.
            assert_eq!(serial.rho(), parallel.rho(), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_matches_the_naive_reference() {
        let (pattern, y) = random_case(4, 31, 700);
        let parallel = spread_spectrum_parallel(&pattern, &y, 5).expect("valid");
        let naive = spread_spectrum_naive(&pattern, &y).expect("valid");
        for (a, b) in parallel.rho().iter().zip(naive.rho()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_threads_degrades_to_serial() {
        let (pattern, y) = random_case(5, 13, 130);
        let zero = spread_spectrum_parallel(&pattern, &y, 0).expect("valid");
        let one = spread_spectrum_parallel(&pattern, &y, 1).expect("valid");
        assert_eq!(zero.rho(), one.rho());
    }

    #[test]
    fn parallel_validates_inputs_like_serial() {
        assert_eq!(
            spread_spectrum_parallel(&[true, true], &[1.0, 2.0], 4).unwrap_err(),
            CpaError::ConstantPattern
        );
        assert_eq!(
            spread_spectrum_parallel(&[true, false, true], &[1.0], 4).unwrap_err(),
            CpaError::TraceShorterThanPeriod { have: 1, need: 3 }
        );
    }

    #[test]
    fn thread_count_prefers_the_environment_override() {
        assert_eq!(thread_count_from(Some("3")), 3);
        assert_eq!(thread_count_from(Some(" 12 ")), 12);
        // Zero, garbage and absence all fall back to machine parallelism.
        assert!(thread_count_from(Some("0")) >= 1);
        assert!(thread_count_from(Some("lots")) >= 1);
        assert!(thread_count_from(None) >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn parallel_equals_serial_on_random_inputs(
            seed in 0u64..10_000,
            period in 3usize..64,
            n_mult in 1usize..5,
            extra in 0usize..11,
            threads in 2usize..12,
        ) {
            let n = period * n_mult + extra.min(period - 1) + period;
            let (pattern, y) = random_case(seed, period, n);
            let serial = spread_spectrum_parallel(&pattern, &y, 1).expect("valid");
            let parallel = spread_spectrum_parallel(&pattern, &y, threads).expect("valid");
            prop_assert_eq!(serial.period(), parallel.period());
            for (a, b) in serial.rho().iter().zip(parallel.rho()) {
                prop_assert!((a - b).abs() <= 1e-12, "{} vs {}", a, b);
            }
        }
    }
}
