//! Sequential-analysis early-termination detection.
//!
//! Fixed-budget detection burns the full trace (~300k cycles at paper
//! scale) even when the watermark crosses the peak-vs-noise criterion
//! orders of magnitude earlier. The sequential engine evaluates the
//! spectrum on a *growing prefix schedule* — geometric by default, every
//! [`SequentialOptions::base_cycles`] cycles scaled by
//! [`SequentialOptions::growth`] — and stops consuming the stream as soon
//! as the acceptance rule fires, reporting how many cycles the verdict
//! actually needed.
//!
//! The acceptance rule at a checkpoint with `cycles` consumed:
//!
//! 1. the [`DetectionCriterion`] passes on the prefix spectrum, **and**
//! 2. `cycles` has reached the floor (`max(min_cycles, 4·period)` —
//!    tiny prefixes have degenerate noise floors, so the engine never
//!    accepts before four watermark periods), **and**
//! 3. when a [`confidence`](SequentialOptions::confidence) is set, the
//!    analytic peak false-positive probability
//!    ([`SpreadSpectrum::peak_p_value`]) is at or below it.
//!
//! The floor and confidence gate only *early termination*: a session
//! that runs out of stream (or out of
//! [`max_cycles`](SequentialOptions::max_cycles) budget) falls back to
//! the classic fixed-budget criterion verdict on everything consumed, so
//! a no-early-stop sequential run is bit-identical to
//! [`Detector::detect`](crate::Detector::detect) — pinned by proptest.
//!
//! Determinism: the checkpoint schedule is a pure function of the
//! options and the absolute cycle count, so a session resumed from a
//! [`StreamingCpaState`](crate::StreamingCpaState) at *any* cycle count
//! re-derives exactly the checkpoints an uninterrupted run would have
//! hit, and early-stops at the identical cycle with the identical
//! verdict bytes. Campaigns lean on this to replay schedules across
//! SIGKILL resume (see `docs/sequential.md`).

use crate::detect::{DetectionCriterion, DetectionResult};
use crate::streaming::StreamingCpa;

/// Configuration for sequential early-termination detection.
///
/// The default schedule checks at 4096 cycles and doubles from there
/// (`4096, 8192, 16384, …`), with no confidence gate and no budget cap.
///
/// ```
/// use clockmark_cpa::SequentialOptions;
///
/// let opts = SequentialOptions::default();
/// assert_eq!(opts.next_checkpoint_after(0), Some(4096));
/// assert_eq!(opts.next_checkpoint_after(4096), Some(8192));
/// assert_eq!(opts.next_checkpoint_after(10_000), Some(16384));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialOptions {
    /// First checkpoint, in cycles (clamped to ≥ 1). Default 4096.
    pub base_cycles: u64,
    /// Schedule growth factor. Values above 1.0 give a geometric
    /// schedule (`base, base·g, base·g², …`, rounded down, always
    /// advancing by at least `base_cycles`); 1.0 or below gives an
    /// arithmetic schedule at every multiple of `base_cycles`.
    /// Default 2.0.
    pub growth: f64,
    /// Maximum analytic false-positive probability
    /// ([`SpreadSpectrum::peak_p_value`](crate::SpreadSpectrum::peak_p_value))
    /// an early accept may carry. `None` (default) gates early accepts
    /// on the [`DetectionCriterion`] alone.
    pub confidence: Option<f64>,
    /// Explicit floor below which the engine never early-accepts.
    /// The effective floor is `max(min_cycles, 4 × period)`; the
    /// four-period minimum is unconditional because shorter prefixes
    /// have too few folded samples per residue for a stable noise
    /// floor. Default 0 (four periods).
    pub min_cycles: u64,
    /// Hard consumption budget: the session stops folding at this many
    /// cycles and renders its fixed-budget verdict there, ignoring any
    /// further input. `None` (default) consumes whatever the caller
    /// streams.
    pub max_cycles: Option<u64>,
}

impl Default for SequentialOptions {
    fn default() -> Self {
        SequentialOptions {
            base_cycles: 4096,
            growth: 2.0,
            confidence: None,
            min_cycles: 0,
            max_cycles: None,
        }
    }
}

impl SequentialOptions {
    /// An arithmetic schedule checking every `interval` cycles — the
    /// shape the legacy `run_until_detected(check_interval)` loop used.
    pub fn every(interval: u64) -> Self {
        SequentialOptions {
            base_cycles: interval.max(1),
            growth: 1.0,
            ..SequentialOptions::default()
        }
    }

    /// Sets the first-checkpoint position.
    #[must_use]
    pub fn with_base_cycles(mut self, base_cycles: u64) -> Self {
        self.base_cycles = base_cycles;
        self
    }

    /// Sets the schedule growth factor.
    #[must_use]
    pub fn with_growth(mut self, growth: f64) -> Self {
        self.growth = growth;
        self
    }

    /// Sets the confidence gate (maximum early-accept p-value).
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = Some(confidence);
        self
    }

    /// Sets the explicit early-accept floor in cycles.
    #[must_use]
    pub fn with_min_cycles(mut self, min_cycles: u64) -> Self {
        self.min_cycles = min_cycles;
        self
    }

    /// Sets the hard consumption budget in cycles.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    /// The first checkpoint strictly after `cycles`, or `None` when the
    /// budget is exhausted.
    ///
    /// The schedule is a pure function of the options and the absolute
    /// cycle count — this is the determinism-on-resume contract: a
    /// session restored at any cycle count re-derives exactly the
    /// checkpoints an uninterrupted run would have evaluated.
    pub fn next_checkpoint_after(&self, cycles: u64) -> Option<u64> {
        let base = self.base_cycles.max(1);
        let mut next = if self.growth > 1.0 {
            let mut p = base;
            while p <= cycles {
                // Round down, but always advance by at least `base` so
                // growth factors barely above 1.0 cannot stall.
                let grown = (p as f64 * self.growth) as u64;
                p = grown.max(p.saturating_add(base));
            }
            p
        } else {
            (cycles / base).saturating_add(1).saturating_mul(base)
        };
        if let Some(max) = self.max_cycles {
            if cycles >= max {
                return None;
            }
            next = next.min(max);
        }
        Some(next)
    }
}

/// One entry of a sequential session's checkpoint trail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialCheckpoint {
    /// Absolute cycles consumed when this checkpoint was evaluated.
    pub cycles: u64,
    /// Whether the full acceptance rule (criterion + floor + confidence)
    /// fired here. A checkpoint where the raw criterion passed but the
    /// floor or confidence gate blocked the accept records `false`.
    pub accepted: bool,
    /// Signed peak correlation of the prefix spectrum (0.0 below one
    /// period, where no spectrum exists yet).
    pub peak_rho: f64,
    /// Analytic peak false-positive probability of the prefix spectrum
    /// (1.0 below one period).
    pub p_value: f64,
}

/// Outcome of a sequential detection: the classic verdict extended with
/// how many cycles it actually consumed and the checkpoint trail that
/// led there.
///
/// `result` keeps the exact [`DetectionResult`] layout so wire encoding
/// and campaign reports stay byte-stable: an early-stopped verdict is
/// bit-identical to [`Detector::detect`](crate::Detector::detect) on the
/// same prefix, and a run-to-completion verdict is bit-identical to
/// `detect` on the full trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialResult {
    /// The verdict, evaluated on exactly `cycles_consumed` cycles.
    pub result: DetectionResult,
    /// Cycles the session folded before rendering the verdict.
    pub cycles_consumed: u64,
    /// Whether the acceptance rule fired at a checkpoint (as opposed to
    /// the stream ending or the budget running out).
    pub early_stopped: bool,
    /// Every checkpoint evaluated, in order. Resumed sessions only
    /// carry checkpoints evaluated since the restore.
    pub checkpoints: Vec<SequentialCheckpoint>,
}

/// The schedule/decision state of a sequential session, factored out so
/// both the owning [`SequentialDetection`] session and the legacy
/// iterator-driven `run_until_detected` loop share one engine.
#[derive(Debug, Clone)]
pub(crate) struct SequentialEngine {
    criterion: DetectionCriterion,
    options: SequentialOptions,
    /// Effective early-accept floor: `max(min_cycles, 4 × period)`.
    min_accept: u64,
    /// Next schedule point, `None` once the budget is exhausted.
    pub(crate) next_checkpoint: Option<u64>,
    trail: Vec<SequentialCheckpoint>,
    verdict: Option<DetectionResult>,
    early: bool,
}

impl SequentialEngine {
    pub(crate) fn new(
        options: SequentialOptions,
        criterion: DetectionCriterion,
        inner: &StreamingCpa,
    ) -> Self {
        let min_accept = options.min_cycles.max(4 * inner.period() as u64);
        let next_checkpoint = options.next_checkpoint_after(inner.cycles());
        SequentialEngine {
            criterion,
            options,
            min_accept,
            next_checkpoint,
            trail: Vec::new(),
            verdict: None,
            early: false,
        }
    }

    pub(crate) fn decided(&self) -> bool {
        self.verdict.is_some()
    }

    /// Folds `ys` into `inner`, splitting at checkpoint boundaries so
    /// every evaluation happens at an exact schedule point regardless of
    /// how the caller chunks the stream. Input past a decision (accept
    /// or exhausted budget) is ignored.
    pub(crate) fn push_chunk(&mut self, inner: &mut StreamingCpa, ys: &[f64]) {
        let mut rest = ys;
        while !rest.is_empty() && self.verdict.is_none() {
            let cycles = inner.cycles();
            if self.options.max_cycles.is_some_and(|max| cycles >= max) {
                self.exhaust_budget(inner);
                return;
            }
            let mut take = rest.len() as u64;
            if let Some(next) = self.next_checkpoint {
                take = take.min(next - cycles);
            }
            if let Some(max) = self.options.max_cycles {
                take = take.min(max - cycles);
            }
            let take = take as usize;
            inner.push_chunk(&rest[..take]);
            rest = &rest[take..];

            let cycles = inner.cycles();
            if self.next_checkpoint == Some(cycles) {
                self.checkpoint_now(inner);
                if self.verdict.is_some() {
                    return;
                }
                self.next_checkpoint = self.options.next_checkpoint_after(cycles);
            }
            if self.options.max_cycles == Some(cycles) {
                self.exhaust_budget(inner);
                return;
            }
        }
    }

    /// Evaluates the prefix spectrum at the current cycle count and
    /// applies the acceptance rule, recording a trail entry either way.
    fn checkpoint_now(&mut self, inner: &StreamingCpa) -> bool {
        let cycles = inner.cycles();
        let Ok(spectrum) = inner.spectrum() else {
            // Below one period there is no spectrum to judge.
            self.trail.push(SequentialCheckpoint {
                cycles,
                accepted: false,
                peak_rho: 0.0,
                p_value: 1.0,
            });
            return false;
        };
        let result = self.criterion.evaluate(&spectrum);
        let p_value = spectrum.peak_p_value(cycles as usize);
        let accepted = result.detected
            && cycles >= self.min_accept
            && self.options.confidence.is_none_or(|c| p_value <= c);
        self.trail.push(SequentialCheckpoint {
            cycles,
            accepted,
            peak_rho: result.peak_rho,
            p_value,
        });
        if accepted {
            self.verdict = Some(result);
            self.early = true;
        }
        accepted
    }

    /// Renders the fixed-budget verdict at the consumption cap. If the
    /// cap coincided with a (rejecting) checkpoint the trail entry is
    /// already there; otherwise evaluate one final checkpoint first so
    /// the trail records where the budget ran out.
    fn exhaust_budget(&mut self, inner: &StreamingCpa) {
        if self.verdict.is_some() {
            return;
        }
        if self.trail.last().map(|c| c.cycles) != Some(inner.cycles()) {
            self.checkpoint_now(inner);
        }
        if self.verdict.is_none() {
            self.verdict = Some(inner.detect(&self.criterion));
            self.early = false;
        }
    }

    /// The session outcome: the early verdict if one fired, otherwise
    /// the classic fixed-budget evaluation of everything consumed.
    pub(crate) fn finalize(&self, inner: &StreamingCpa) -> SequentialResult {
        let (result, early_stopped) = match self.verdict {
            Some(result) => (result, self.early),
            None => (inner.detect(&self.criterion), false),
        };
        SequentialResult {
            result,
            cycles_consumed: inner.cycles(),
            early_stopped,
            checkpoints: self.trail.clone(),
        }
    }

    pub(crate) fn checkpoints(&self) -> &[SequentialCheckpoint] {
        &self.trail
    }
}

/// An in-flight sequential detection session: a [`StreamingCpa`] fold
/// driven by a checkpoint schedule. Built by
/// [`Detector::detect_sequential_streaming`](crate::Detector::detect_sequential_streaming)
/// (or resumed by
/// [`Detector::resume_sequential`](crate::Detector::resume_sequential)),
/// fed with [`push_chunk`](Self::push_chunk), finished with
/// [`finalize`](Self::finalize).
///
/// Once the session decides — the acceptance rule fires at a checkpoint
/// or the [`max_cycles`](SequentialOptions::max_cycles) budget runs out —
/// further input is ignored and [`cycles`](Self::cycles) freezes at the
/// cycles the verdict consumed, which is where the serve path's CPU
/// savings come from: chunks after the decision cost nothing.
#[derive(Debug, Clone)]
pub struct SequentialDetection {
    inner: StreamingCpa,
    engine: SequentialEngine,
}

impl SequentialDetection {
    pub(crate) fn from_parts(
        inner: StreamingCpa,
        criterion: DetectionCriterion,
        options: SequentialOptions,
    ) -> Self {
        let engine = SequentialEngine::new(options, criterion, &inner);
        SequentialDetection { inner, engine }
    }

    /// Folds a chunk of trace samples, evaluating any checkpoints the
    /// chunk crosses. Input past a decision is ignored.
    pub fn push_chunk(&mut self, ys: &[f64]) {
        self.engine.push_chunk(&mut self.inner, ys);
    }

    /// Whether the session has rendered its verdict (early accept or
    /// exhausted budget) and stopped folding.
    pub fn decided(&self) -> bool {
        self.engine.decided()
    }

    /// Cycles folded so far; frozen once [`decided`](Self::decided).
    pub fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.inner.period()
    }

    /// The checkpoints evaluated so far.
    pub fn checkpoints(&self) -> &[SequentialCheckpoint] {
        self.engine.checkpoints()
    }

    /// Snapshot of the fold accumulators, resumable via
    /// [`Detector::resume_sequential`](crate::Detector::resume_sequential).
    /// The schedule needs no extra state: it is re-derived from the
    /// options and the cycle count on restore.
    pub fn state(&self) -> crate::StreamingCpaState {
        self.inner.state()
    }

    /// The underlying fold session.
    pub fn inner(&self) -> &StreamingCpa {
        &self.inner
    }

    /// The session outcome (see [`SequentialResult`]). Callable at any
    /// point; before any input it reports the conservative
    /// not-detected verdict on zero cycles.
    pub fn finalize(&self) -> SequentialResult {
        self.engine.finalize(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAlgo, DetectOptions, Detector};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn m_sequence_pattern() -> Vec<bool> {
        let mut lfsr = clockmark_seq::Lfsr::maximal(7).expect("7-bit maximal LFSR");
        (0..127)
            .map(|_| clockmark_seq::SequenceGenerator::next_bit(&mut lfsr))
            .collect()
    }

    fn noisy_trace(
        pattern: &[bool],
        n: usize,
        phase: usize,
        amp: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let wm = if pattern[(i + phase) % pattern.len()] {
                    amp
                } else {
                    0.0
                };
                wm + rng.random_range(-noise..noise)
            })
            .collect()
    }

    fn assert_results_bit_identical(a: &crate::DetectionResult, b: &crate::DetectionResult) {
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.peak_rotation, b.peak_rotation);
        assert_eq!(a.peak_rho.to_bits(), b.peak_rho.to_bits());
        assert_eq!(a.floor_max_abs.to_bits(), b.floor_max_abs.to_bits());
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
        assert_eq!(a.zscore.to_bits(), b.zscore.to_bits());
    }

    #[test]
    fn geometric_schedule_doubles_and_arithmetic_ticks() {
        let geo = SequentialOptions::default();
        assert_eq!(geo.next_checkpoint_after(0), Some(4096));
        assert_eq!(geo.next_checkpoint_after(4095), Some(4096));
        assert_eq!(geo.next_checkpoint_after(4096), Some(8192));
        assert_eq!(geo.next_checkpoint_after(8192), Some(16384));
        assert_eq!(geo.next_checkpoint_after(100_000), Some(131_072));

        let arith = SequentialOptions::every(500);
        assert_eq!(arith.next_checkpoint_after(0), Some(500));
        assert_eq!(arith.next_checkpoint_after(500), Some(1000));
        assert_eq!(arith.next_checkpoint_after(501), Some(1000));

        let capped = SequentialOptions::default().with_max_cycles(10_000);
        assert_eq!(capped.next_checkpoint_after(8192), Some(10_000));
        assert_eq!(capped.next_checkpoint_after(10_000), None);

        // A growth factor barely above 1.0 still advances by >= base.
        let slow = SequentialOptions::default()
            .with_base_cycles(100)
            .with_growth(1.0001);
        let first = slow.next_checkpoint_after(0).unwrap();
        let second = slow.next_checkpoint_after(first).unwrap();
        assert!(second >= first + 100);
    }

    #[test]
    fn strong_watermark_stops_early_and_matches_prefix_detect() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 60_000, 41, 1.0, 2.0, 7);
        for algo in [CpaAlgo::Folded, CpaAlgo::Fft] {
            let detector =
                Detector::with_options(&pattern, DetectOptions::default().with_algo(algo))
                    .expect("valid");
            let options = SequentialOptions::default().with_base_cycles(1024);
            let outcome = detector.detect_sequential(&y, options).expect("valid");
            assert!(outcome.early_stopped, "algo {algo:?}");
            assert!(outcome.result.detected);
            assert!(
                outcome.cycles_consumed < 60_000 / 4,
                "consumed {} of 60000 cycles",
                outcome.cycles_consumed
            );
            assert!(!outcome.checkpoints.is_empty());
            assert!(outcome.checkpoints.last().unwrap().accepted);
            // The early verdict is detect() on exactly the consumed prefix.
            let prefix = &y[..outcome.cycles_consumed as usize];
            let direct = detector.detect(prefix).expect("valid");
            assert_results_bit_identical(&outcome.result, &direct);
        }
    }

    #[test]
    fn absent_watermark_runs_to_the_end_with_the_fixed_budget_verdict() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 20_000, 0, 0.0, 2.0, 11);
        let detector = Detector::new(&pattern).expect("valid");
        let outcome = detector
            .detect_sequential(&y, SequentialOptions::default())
            .expect("valid");
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.cycles_consumed, 20_000);
        let direct = detector.detect(&y).expect("valid");
        assert_results_bit_identical(&outcome.result, &direct);
        // Every checkpoint was evaluated and rejected.
        assert!(outcome.checkpoints.iter().all(|c| !c.accepted));
    }

    /// Satellite regression: an adversarial burst that correlates
    /// perfectly for the first two periods (so the raw criterion fires
    /// on that prefix) must not early-accept below the four-period
    /// floor — without the floor, sequential mode would "detect" a
    /// watermark in what is otherwise pure noise.
    #[test]
    fn adversarial_short_burst_cannot_early_accept_below_the_floor() {
        let pattern = m_sequence_pattern();
        let period = pattern.len();
        let mut rng = StdRng::seed_from_u64(13);
        let mut y: Vec<f64> = Vec::with_capacity(30_000);
        // Two pristine periods: the watermark with no noise at all.
        for i in 0..2 * period {
            y.push(if pattern[i % period] { 1.0 } else { 0.0 });
        }
        // ... then nothing but noise.
        for _ in 2 * period..30_000 {
            y.push(rng.random_range(-2.0..2.0f64));
        }

        let detector = Detector::new(&pattern).expect("valid");
        // The raw criterion *does* fire on the pristine 2-period prefix —
        // that is what makes the burst adversarial.
        let burst_only = detector.detect(&y[..2 * period]).expect("valid");
        assert!(
            burst_only.detected,
            "test premise: the burst alone must satisfy the raw criterion"
        );

        // Checkpoints at every period boundary, the most aggressive
        // schedule: the floor is the only thing standing in the way.
        let options = SequentialOptions::every(period as u64);
        let outcome = detector.detect_sequential(&y, options).expect("valid");
        let below_floor: Vec<_> = outcome
            .checkpoints
            .iter()
            .filter(|c| c.cycles < 4 * period as u64)
            .collect();
        // The schedule really did evaluate the burst region...
        assert!(below_floor.iter().any(|c| c.cycles <= 2 * period as u64));
        // ...and the floor blocked every accept there, despite the raw
        // criterion passing on that prefix.
        assert!(
            below_floor.iter().all(|c| !c.accepted),
            "early accept below the {} floor",
            4 * period
        );
        assert!(outcome.cycles_consumed >= 4 * period as u64);
    }

    #[test]
    fn explicit_min_cycles_raises_the_floor() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 60_000, 41, 1.0, 2.0, 7);
        let detector = Detector::new(&pattern).expect("valid");
        let unfloored = detector
            .detect_sequential(&y, SequentialOptions::default().with_base_cycles(1024))
            .expect("valid");
        let floored = detector
            .detect_sequential(
                &y,
                SequentialOptions::default()
                    .with_base_cycles(1024)
                    .with_min_cycles(32_768),
            )
            .expect("valid");
        assert!(unfloored.cycles_consumed < 32_768);
        assert!(floored.early_stopped);
        assert!(floored.cycles_consumed >= 32_768);
    }

    #[test]
    fn confidence_gate_blocks_marginal_accepts() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 30_000, 41, 1.0, 2.0, 7);
        let detector = Detector::new(&pattern).expect("valid");
        // An unsatisfiable confidence bound (p-values can round down to
        // exactly 0.0 on strong peaks, so 0.0 is NOT unsatisfiable):
        // the session can never early-accept.
        let outcome = detector
            .detect_sequential(
                &y,
                SequentialOptions::default()
                    .with_base_cycles(1024)
                    .with_confidence(-1.0),
            )
            .expect("valid");
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.cycles_consumed, 30_000);
        // A permissive bound stops early, and the trail carries the
        // p-value that justified it.
        let outcome = detector
            .detect_sequential(
                &y,
                SequentialOptions::default()
                    .with_base_cycles(1024)
                    .with_confidence(1e-6),
            )
            .expect("valid");
        assert!(outcome.early_stopped);
        let accept = outcome.checkpoints.last().unwrap();
        assert!(accept.accepted && accept.p_value <= 1e-6);
    }

    #[test]
    fn max_cycles_budget_freezes_the_session() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 40_000, 0, 0.0, 2.0, 5);
        let detector = Detector::new(&pattern).expect("valid");
        let options = SequentialOptions::default().with_max_cycles(9_000);
        let mut session = detector.detect_sequential_streaming(options);
        session.push_chunk(&y);
        assert!(session.decided());
        assert_eq!(session.cycles(), 9_000);
        // Further input is ignored entirely.
        session.push_chunk(&y);
        assert_eq!(session.cycles(), 9_000);
        let outcome = session.finalize();
        assert!(!outcome.early_stopped);
        assert_eq!(outcome.cycles_consumed, 9_000);
        let direct = detector.detect(&y[..9_000]).expect("valid");
        assert_results_bit_identical(&outcome.result, &direct);
    }

    /// Chunking must not matter: any split of the stream crosses the
    /// same checkpoints at the same cycle counts.
    #[test]
    fn chunking_is_irrelevant_to_the_outcome() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 30_000, 17, 1.0, 2.0, 21);
        let detector = Detector::new(&pattern).expect("valid");
        let options = SequentialOptions::default().with_base_cycles(700);

        let whole = {
            let mut s = detector.detect_sequential_streaming(options);
            s.push_chunk(&y);
            s.finalize()
        };
        for chunk_size in [1usize, 97, 1024, 8192] {
            let mut s = detector.detect_sequential_streaming(options);
            for chunk in y.chunks(chunk_size) {
                s.push_chunk(chunk);
                if s.decided() {
                    break;
                }
            }
            let split = s.finalize();
            assert_eq!(
                split.cycles_consumed, whole.cycles_consumed,
                "chunk {chunk_size}"
            );
            assert_eq!(split.early_stopped, whole.early_stopped);
            assert_results_bit_identical(&split.result, &whole.result);
            assert_eq!(split.checkpoints, whole.checkpoints);
        }
    }

    /// SIGKILL-anywhere determinism: snapshot the fold at an arbitrary
    /// cycle, resume, and the session must hit the same checkpoints and
    /// render the same verdict bytes as an uninterrupted run.
    #[test]
    fn resume_replays_the_same_schedule_bit_identically() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 30_000, 41, 1.0, 2.0, 31);
        let detector = Detector::new(&pattern).expect("valid");
        let options = SequentialOptions::default().with_base_cycles(1024);

        let whole = {
            let mut s = detector.detect_sequential_streaming(options);
            s.push_chunk(&y);
            s.finalize()
        };
        for cut in [1usize, 1000, 1024, 5000, 8191] {
            let mut first = detector.detect_sequential_streaming(options);
            first.push_chunk(&y[..cut]);
            if first.decided() {
                continue; // nothing left to resume
            }
            let mut resumed = detector
                .resume_sequential(first.state(), options)
                .expect("valid state");
            resumed.push_chunk(&y[cut..]);
            let outcome = resumed.finalize();
            assert_eq!(outcome.cycles_consumed, whole.cycles_consumed, "cut {cut}");
            assert_eq!(outcome.early_stopped, whole.early_stopped);
            assert_results_bit_identical(&outcome.result, &whole.result);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: sequential-vs-fixed-budget bit-identity. A run
        /// that never early-stops must equal `Detector::detect` on the
        /// full trace bit for bit, and an early-stopped verdict must
        /// equal `detect` on exactly the consumed prefix — for both
        /// kernels.
        #[test]
        fn sequential_is_bit_identical_to_fixed_budget_detect(
            period_sel in 0usize..3,
            phase in 0usize..126,
            amp_milli in 0u64..1500,
            seed in 0u64..1000,
            base in 256u64..4096,
            fft in 0usize..2,
        ) {
            let period = [31usize, 63, 127][period_sel];
            let mut lfsr = clockmark_seq::Lfsr::maximal(match period {
                31 => 5,
                63 => 6,
                _ => 7,
            }).expect("maximal LFSR");
            let pattern: Vec<bool> = (0..period)
                .map(|_| clockmark_seq::SequenceGenerator::next_bit(&mut lfsr))
                .collect();
            let amp = amp_milli as f64 / 1000.0;
            let y = noisy_trace(&pattern, 12_000, phase % period, amp, 2.0, seed);
            let algo = if fft == 1 { CpaAlgo::Fft } else { CpaAlgo::Folded };
            let detector = Detector::with_options(
                &pattern,
                DetectOptions::default().with_algo(algo),
            ).expect("valid");

            let outcome = detector
                .detect_sequential(&y, SequentialOptions::default().with_base_cycles(base))
                .expect("valid");
            let reference = detector
                .detect(&y[..outcome.cycles_consumed as usize])
                .expect("valid");
            prop_assert_eq!(outcome.result.detected, reference.detected);
            prop_assert_eq!(outcome.result.peak_rotation, reference.peak_rotation);
            prop_assert_eq!(outcome.result.peak_rho.to_bits(), reference.peak_rho.to_bits());
            prop_assert_eq!(outcome.result.floor_max_abs.to_bits(), reference.floor_max_abs.to_bits());
            prop_assert_eq!(outcome.result.ratio.to_bits(), reference.ratio.to_bits());
            prop_assert_eq!(outcome.result.zscore.to_bits(), reference.zscore.to_bits());
            if !outcome.early_stopped {
                prop_assert_eq!(outcome.cycles_consumed, 12_000u64);
            }
        }
    }
}
