//! Spectrum-kernel selection.
//!
//! Three interchangeable kernels compute the rotational-CPA spread
//! spectrum; they are pinned against each other by proptests:
//!
//! - [`CpaAlgo::Naive`]: the textbook O(N·P) loop — the trusted
//!   reference, impractical at paper scale;
//! - [`CpaAlgo::Folded`]: the O(N + P·W) fold over per-residue sums;
//! - [`CpaAlgo::Fft`]: the O(N + P log P) circular-correlation path with
//!   an exact refinement step, so the reported peak matches the folded
//!   kernel bit for bit (see `docs/cpa-fft.md`).
//!
//! Callers normally let [`spread_spectrum`](crate::spread_spectrum)
//! resolve the kernel from the pattern's work size; the
//! `CLOCKMARK_CPA_ALGO` environment variable overrides that choice, and
//! the campaign engine records the resolved kernel in its spec so resumed
//! runs replay the same arithmetic regardless of the environment.

use std::fmt;
use std::str::FromStr;

/// Minimum folded work (`P·W`, rotations times pattern ones) before the
/// work heuristic prefers the FFT kernel. Below this the folded loop's
/// cache-friendly accumulation beats the transform's fixed cost; the
/// paper-scale period (P = 4,095, W ≈ 2,048 → ~8.4 M) sits far above,
/// unit-test-sized patterns far below.
pub(crate) const FFT_WORK_THRESHOLD: usize = 1 << 17;

/// Which kernel computes the spread spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CpaAlgo {
    /// The O(N·P) reference loop over the raw measurement.
    Naive,
    /// The folded O(N + P·W) kernel over per-residue sums.
    Folded,
    /// The FFT circular-correlation kernel with exact peak refinement.
    Fft,
}

impl CpaAlgo {
    /// Every kernel, in reference-first order.
    pub const ALL: [CpaAlgo; 3] = [CpaAlgo::Naive, CpaAlgo::Folded, CpaAlgo::Fft];

    /// The canonical lower-case name, as accepted by
    /// `CLOCKMARK_CPA_ALGO` and recorded in campaign specs.
    pub fn as_str(self) -> &'static str {
        match self {
            CpaAlgo::Naive => "naive",
            CpaAlgo::Folded => "folded",
            CpaAlgo::Fft => "fft",
        }
    }

    /// Parses a kernel name, ignoring surrounding whitespace and case.
    /// Returns `None` for anything unrecognised.
    pub fn parse(name: &str) -> Option<CpaAlgo> {
        match name.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(CpaAlgo::Naive),
            "folded" => Some(CpaAlgo::Folded),
            "fft" => Some(CpaAlgo::Fft),
            _ => None,
        }
    }

    /// The kernel the work heuristic picks for a watermark pattern:
    /// [`CpaAlgo::Fft`] once the folded work `P·W` reaches the crossover
    /// threshold, [`CpaAlgo::Folded`] otherwise. The naive
    /// kernel is never auto-selected; it exists as the reference.
    pub fn resolved_for_pattern(pattern: &[bool]) -> CpaAlgo {
        let ones = pattern.iter().filter(|&&b| b).count();
        if pattern.len().saturating_mul(ones) >= FFT_WORK_THRESHOLD {
            CpaAlgo::Fft
        } else {
            CpaAlgo::Folded
        }
    }
}

impl fmt::Display for CpaAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CpaAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CpaAlgo::parse(s)
            .ok_or_else(|| format!("unknown CPA algorithm {s:?} (expected naive, folded or fft)"))
    }
}

/// The kernel forced by the `CLOCKMARK_CPA_ALGO` environment variable,
/// when set to a recognised name. Unset, empty or unrecognised values
/// all mean "no override" — detection must never fail because of a typo
/// in an ambient variable, and the work heuristic is always a safe
/// fallback.
pub fn algo_override() -> Option<CpaAlgo> {
    std::env::var("CLOCKMARK_CPA_ALGO")
        .ok()
        .as_deref()
        .and_then(CpaAlgo::parse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for algo in CpaAlgo::ALL {
            assert_eq!(CpaAlgo::parse(algo.as_str()), Some(algo));
            assert_eq!(algo.as_str().parse::<CpaAlgo>(), Ok(algo));
            assert_eq!(algo.to_string(), algo.as_str());
        }
    }

    #[test]
    fn parsing_is_forgiving_about_case_and_whitespace() {
        assert_eq!(CpaAlgo::parse(" FFT\n"), Some(CpaAlgo::Fft));
        assert_eq!(CpaAlgo::parse("Folded"), Some(CpaAlgo::Folded));
        assert_eq!(CpaAlgo::parse(""), None);
        assert_eq!(CpaAlgo::parse("fastest"), None);
        assert!("fastest"
            .parse::<CpaAlgo>()
            .unwrap_err()
            .contains("fastest"));
    }

    #[test]
    fn heuristic_picks_fft_only_at_scale() {
        // Unit-test-sized pattern: folded.
        let small = vec![true, false, true, false, false, true, false];
        assert_eq!(CpaAlgo::resolved_for_pattern(&small), CpaAlgo::Folded);
        // Paper-scale pattern (P = 4095, half ones): FFT.
        let large: Vec<bool> = (0..4095).map(|i| i % 2 == 0).collect();
        assert_eq!(CpaAlgo::resolved_for_pattern(&large), CpaAlgo::Fft);
    }
}
