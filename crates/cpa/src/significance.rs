//! Statistical significance of a spread-spectrum peak.
//!
//! The paper's criterion — "a single significant correlation coefficient
//! can be resolved" — is visual. This module makes it quantitative: under
//! the null hypothesis (no watermark), each rotation's ρ against
//! independent noise is asymptotically normal with σ ≈ 1/√N, so the
//! probability that the *maximum* over `P` rotations reaches an observed
//! peak is
//!
//! ```text
//! p = 1 − Φ(ρ_peak · √N)^P
//! ```
//!
//! (treating rotations as independent, which is conservative for
//! m-sequences whose rotations are nearly orthogonal). A detection can
//! then be reported with a false-positive probability instead of a bare
//! threshold.

use crate::SpreadSpectrum;

/// The standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun 7.1.26 erf approximation (|error| < 1.5e-7),
/// ample for p-value reporting.
///
/// ```
/// let phi = clockmark_cpa::normal_cdf(0.0);
/// assert!((phi - 0.5).abs() < 1e-7);
/// assert!(clockmark_cpa::normal_cdf(3.0) > 0.9986);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The error function via Abramowitz–Stegun 7.1.26.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The probability that pure noise produces a spread-spectrum maximum at
/// least as large as `peak_rho`, over `rotations` rotations of an
/// `n_cycles`-long trace.
///
/// Values are clamped to `[0, 1]`; peaks so large that `Φ` saturates
/// report `0.0` (numerically indistinguishable from certainty).
///
/// ```
/// // The paper-scale experiment: rho = 0.0165 over 4,095 rotations of a
/// // 300,000-cycle trace is overwhelming evidence…
/// let p = clockmark_cpa::peak_false_positive_probability(0.0165, 300_000, 4_095);
/// assert!(p < 1e-9);
///
/// // …while the same rho on a 10,000-cycle trace is unremarkable.
/// let p = clockmark_cpa::peak_false_positive_probability(0.0165, 10_000, 4_095);
/// assert!(p > 0.05);
/// ```
pub fn peak_false_positive_probability(peak_rho: f64, n_cycles: usize, rotations: usize) -> f64 {
    if peak_rho <= 0.0 {
        return 1.0;
    }
    let z = peak_rho * (n_cycles as f64).sqrt();
    let phi = normal_cdf(z);
    // 1 − Φ^P, computed stably for Φ → 1 via log1p.
    let log_phi = phi.ln();
    let log_pow = rotations as f64 * log_phi;
    (-(log_pow.exp_m1())).clamp(0.0, 1.0)
}

impl SpreadSpectrum {
    /// The false-positive probability of this spectrum's peak for a trace
    /// of `n_cycles` cycles (see
    /// [`peak_false_positive_probability`]).
    ///
    /// Uses the peak *magnitude*, so an inverted watermark reports the
    /// same significance as an upright one.
    pub fn peak_p_value(&self, n_cycles: usize) -> f64 {
        let (_, peak) = self.peak_abs();
        peak_false_positive_probability(peak.abs(), n_cycles, self.period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaError, Detector, SpreadSpectrum};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::new(pattern)?.spectrum(y)
    }

    #[test]
    fn normal_cdf_reference_points() {
        let cases = [
            (-3.0, 0.001_349_898),
            (-1.0, 0.158_655_254),
            (0.0, 0.5),
            (1.0, 0.841_344_746),
            (1.96, 0.975_002_105),
            (3.0, 0.998_650_102),
        ];
        for (x, expected) in cases {
            let got = normal_cdf(x);
            assert!(
                (got - expected).abs() < 1e-6,
                "Φ({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let mut last = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let phi = normal_cdf(x);
            assert!(phi >= last);
            last = phi;
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn p_value_edges() {
        assert_eq!(peak_false_positive_probability(0.0, 1000, 100), 1.0);
        assert_eq!(peak_false_positive_probability(-0.5, 1000, 100), 1.0);
        let huge = peak_false_positive_probability(0.9, 1_000_000, 4095);
        assert!(huge < 1e-12);
    }

    #[test]
    fn p_value_grows_with_rotation_count() {
        // More rotations = more chances for noise to spike.
        let few = peak_false_positive_probability(0.02, 50_000, 63);
        let many = peak_false_positive_probability(0.02, 50_000, 4095);
        assert!(many > few, "{many} vs {few}");
    }

    #[test]
    fn p_value_shrinks_with_trace_length() {
        let short = peak_false_positive_probability(0.02, 10_000, 255);
        let long = peak_false_positive_probability(0.02, 100_000, 255);
        assert!(long < short, "{long} vs {short}");
    }

    #[test]
    fn monte_carlo_false_positive_rate_matches_prediction() {
        // Pure-noise spectra: the fraction of runs whose peak exceeds a
        // threshold should be close to the predicted probability.
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(6).expect("valid");
        let pattern: Vec<bool> = (0..63).map(|_| lfsr.next_bit()).collect();
        let n = 4000usize;
        let runs = 300;
        let threshold = 0.045;

        let mut exceed = 0usize;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let y: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let s = spread_spectrum(&pattern, &y).expect("valid");
            if s.peak().1 >= threshold {
                exceed += 1;
            }
        }
        let empirical = exceed as f64 / runs as f64;
        let predicted = peak_false_positive_probability(threshold, n, 63);
        // Agreement within a factor allowing for finite-sample noise and
        // the independence approximation.
        assert!(
            (empirical - predicted).abs() < 0.05 + predicted,
            "empirical {empirical:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn watermarked_spectrum_reports_tiny_p_value() {
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(8).expect("valid");
        let pattern: Vec<bool> = (0..255).map(|_| lfsr.next_bit()).collect();
        let mut rng = StdRng::seed_from_u64(77);
        let y: Vec<f64> = (0..20_000)
            .map(|i| {
                let wm = if pattern[(i + 9) % 255] { 1.0 } else { 0.0 };
                wm + rng.random_range(-3.0..3.0)
            })
            .collect();
        let s = spread_spectrum(&pattern, &y).expect("valid");
        assert!(s.peak_p_value(20_000) < 1e-6);

        let noise: Vec<f64> = (0..20_000).map(|_| rng.random_range(-3.0..3.0)).collect();
        let s = spread_spectrum(&pattern, &noise).expect("valid");
        assert!(s.peak_p_value(20_000) > 1e-3);
    }
}
