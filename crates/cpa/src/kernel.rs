//! The spectrum kernels: folded rotation loop and FFT circular
//! correlation, both operating on the same per-residue view of a
//! measurement.
//!
//! Every implementation in this crate that owns folded accumulators —
//! [`FoldedTrace`](crate::rotational) for batch traces,
//! [`StreamingCpa`](crate::StreamingCpa) for incremental ones — lowers to
//! a borrowed [`SpectrumInputs`] and dispatches here, so the kernels are
//! written once and the batch/streaming/parallel entry points cannot
//! drift apart.
//!
//! # The FFT path
//!
//! For rotation `r`, the two rotation-dependent sums of the folded
//! algorithm are
//!
//! ```text
//! sxy[r] = Σ_{j : pattern[j]=1} c[(j−r) mod P]
//! sx[r]  = Σ_{j : pattern[j]=1} m[(j−r) mod P]
//! ```
//!
//! — circular cross-correlations of the per-residue fold (`c`, `m`)
//! against the pattern's ones-indicator, so both drop from O(P·W) to
//! O(P log P) via one packed FFT (`clockmark_dsp::CircularCorrelator`).
//! The transform introduces rounding at the 1e-12 level, far below any
//! physical effect but enough to break the bit-identical-decision
//! guarantee the campaign engine's byte-compared reports rely on. The
//! kernel therefore ends with an **exact refinement**: every rotation
//! whose approximate |ρ| (or signed ρ) is within [`REFINE_EPS`] of the
//! respective maximum — plus the [`REFINE_TOP_K`] largest magnitudes as
//! margin — is recomputed with the folded arithmetic, operation for
//! operation. Because the FFT error is orders of magnitude below
//! `REFINE_EPS`, the exact peak and every exact tie are always among the
//! candidates, so `peak()`/`peak_abs()` (rotation *and* value) match the
//! folded kernel bit for bit. `docs/cpa-fft.md` carries the full
//! argument.

use std::cell::RefCell;

use clockmark_dsp::CircularCorrelator;

use crate::pearson::correlation_from_sums;
use crate::{CpaAlgo, SpreadSpectrum};

/// Approximate-ρ margin within which a rotation is refined exactly.
/// The FFT's rounding error on ρ is ~1e-12 for paper-scale inputs;
/// 1e-5 leaves seven orders of magnitude of slack while still refining
/// only a handful of rotations on non-degenerate spectra.
const REFINE_EPS: f64 = 1e-5;

/// Rotations with the largest approximate |ρ| always refined, margin on
/// top of the [`REFINE_EPS`] bands.
const REFINE_TOP_K: usize = 32;

/// A borrowed view of the rotation-invariant folded sums — everything a
/// spectrum kernel needs, independent of who accumulated it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpectrumInputs<'a> {
    /// Measurement length N as f64.
    pub nf: f64,
    /// Σy over the whole measurement.
    pub sy: f64,
    /// Σy² over the whole measurement.
    pub syy: f64,
    /// Per-residue sums `c_k = Σ_{i ≡ k (mod P)} y_i`, length P.
    pub c: &'a [f64],
    /// Per-residue counts `m_k = |{i ≡ k (mod P)}|`, length P.
    pub m: &'a [u64],
    /// Indices of the ones in the pattern, strictly increasing.
    pub ones: &'a [usize],
}

impl SpectrumInputs<'_> {
    /// The watermark period P.
    pub(crate) fn period(&self) -> usize {
        self.c.len()
    }

    /// The folded kernel's multiply-adds for the full spectrum (`P·W`);
    /// drives both the thread-count and the algorithm heuristics.
    pub(crate) fn work(&self) -> usize {
        self.period().saturating_mul(self.ones.len())
    }

    /// ρ for a single rotation, by the folded arithmetic. This is *the*
    /// reference per-rotation computation: the folded kernel evaluates it
    /// for every rotation, the FFT kernel for every refinement candidate,
    /// so refined values are bit-identical to the folded spectrum's.
    pub(crate) fn rho_at(&self, r: usize) -> f64 {
        let period = self.period();
        let mut sx = 0.0f64;
        let mut sxy = 0.0f64;
        for &j in self.ones {
            // (j - r) mod P without branching on negatives.
            let k = (j + period - r) % period;
            sx += self.m[k] as f64;
            sxy += self.c[k];
        }
        // For binary x, Σx² = Σx.
        correlation_from_sums(self.nf, sx, self.sy, sx, self.syy, sxy)
    }
}

/// The struct-of-arrays mirror of the folded accumulators the hot
/// rotation loop runs on.
///
/// Two ideas, neither of which moves a single rounding step:
///
/// - **Doubled arrays.** `c` and `m` are stored twice back to back, so
///   the wrapped index `(j − r) mod P` of [`SpectrumInputs::rho_at`]
///   becomes the branch-free, division-free `j + (P − r)` into the
///   doubled array — the integer division that dominated the scalar
///   inner loop is gone.
/// - **Pre-converted counts.** `m` is converted to `f64` once per
///   spectrum (`u64 → f64` is exact for any real count, far below 2^53)
///   instead of once per (rotation, one) pair.
///
/// The inner loop is unrolled four lanes wide with a *single*
/// accumulator pair, so every sum still adds the same values in the
/// same order as the scalar reference — the spectrum is bit-identical
/// (pinned by proptests below), which the byte-compared campaign
/// reports rely on.
pub(crate) struct SoaInputs {
    /// `[c, c]` concatenated: `c2[j + P − r] == c[(j − r) mod P]`.
    c2: Vec<f64>,
    /// `[m, m]` concatenated, pre-converted to `f64`.
    m2: Vec<f64>,
}

impl SoaInputs {
    /// Builds the doubled arrays; O(P) time and memory. Production code
    /// goes through the per-thread scratch ([`fill`](Self::fill)); tests
    /// use this to pin the scalar reference.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(inputs: &SpectrumInputs<'_>) -> Self {
        let mut soa = SoaInputs {
            c2: Vec::new(),
            m2: Vec::new(),
        };
        soa.fill(inputs);
        soa
    }

    /// Refills the doubled arrays in place, reusing their capacity — the
    /// sequential engine re-evaluates the spectrum at every checkpoint,
    /// and this is what lets those evaluations run allocation-free after
    /// the first.
    pub(crate) fn fill(&mut self, inputs: &SpectrumInputs<'_>) {
        self.c2.clear();
        self.c2.reserve(2 * inputs.c.len());
        self.c2.extend_from_slice(inputs.c);
        self.c2.extend_from_slice(inputs.c);
        self.m2.clear();
        self.m2.reserve(2 * inputs.m.len());
        self.m2.extend(inputs.m.iter().map(|&v| v as f64));
        self.m2.extend(inputs.m.iter().map(|&v| v as f64));
    }

    /// ρ for one rotation — bit-identical to
    /// [`SpectrumInputs::rho_at`], via the doubled-array gather.
    pub(crate) fn rho_at(&self, inputs: &SpectrumInputs<'_>, r: usize) -> f64 {
        let period = self.c2.len() / 2;
        debug_assert_eq!(period, inputs.period());
        debug_assert!(r < period);
        let off = period - r;
        let cw = &self.c2[off..off + period];
        let mw = &self.m2[off..off + period];
        let ones = inputs.ones;
        let mut sx = 0.0f64;
        let mut sxy = 0.0f64;
        let mut i = 0usize;
        while i + 4 <= ones.len() {
            let (j0, j1, j2, j3) = (ones[i], ones[i + 1], ones[i + 2], ones[i + 3]);
            sx += mw[j0];
            sxy += cw[j0];
            sx += mw[j1];
            sxy += cw[j1];
            sx += mw[j2];
            sxy += cw[j2];
            sx += mw[j3];
            sxy += cw[j3];
            i += 4;
        }
        while i < ones.len() {
            let j = ones[i];
            sx += mw[j];
            sxy += cw[j];
            i += 1;
        }
        // For binary x, Σx² = Σx.
        correlation_from_sums(inputs.nf, sx, inputs.sy, sx, inputs.syy, sxy)
    }

    /// ρ for a contiguous rotation range. The arithmetic depends only on
    /// the folded arrays, never on the range boundaries, so concatenating
    /// ranges reproduces the full spectrum bit for bit — the basis of the
    /// parallel engine's determinism guarantee.
    pub(crate) fn rho_range(
        &self,
        inputs: &SpectrumInputs<'_>,
        rotations: std::ops::Range<usize>,
    ) -> Vec<f64> {
        rotations.map(|r| self.rho_at(inputs, r)).collect()
    }
}

/// Evaluates the full spectrum with the requested kernel on `threads`
/// threads. The naive kernel needs the raw measurement, which this view
/// no longer has; callers resolve [`CpaAlgo::Naive`] before folding.
pub(crate) fn spectrum_with_algo(
    inputs: &SpectrumInputs<'_>,
    algo: CpaAlgo,
    threads: usize,
) -> SpreadSpectrum {
    match algo {
        CpaAlgo::Fft => spectrum_fft(inputs, threads),
        _ => spectrum_folded(inputs, threads),
    }
}

/// The folded O(P·W) kernel, rotation loop chunked across `threads`
/// threads. Bit-identical for every thread count.
pub(crate) fn spectrum_folded(inputs: &SpectrumInputs<'_>, threads: usize) -> SpreadSpectrum {
    let period = inputs.period();
    let threads = threads.clamp(1, period);
    let span = clockmark_obs::span("cpa.spread_spectrum")
        .field("algo", CpaAlgo::Folded.as_str())
        .field("period", period)
        .field("work", inputs.work())
        .field("threads", threads);
    let timed = span.is_recording().then(std::time::Instant::now);

    // One O(P) struct-of-arrays refill into the per-thread scratch,
    // shared read-only by every worker — repeated spectra (the
    // sequential checkpoint path) allocate nothing after the first.
    let spectrum = SOA_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.fill(inputs);
        let soa = &*scratch;
        if threads == 1 {
            SpreadSpectrum::from_rho(rotate_chunk(inputs, soa, 0, 0, period))
        } else {
            let chunk = period.div_ceil(threads);
            let mut rho = Vec::with_capacity(period);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let start = (t * chunk).min(period);
                        let end = ((t + 1) * chunk).min(period);
                        scope.spawn(move || rotate_chunk(inputs, soa, t, start, end))
                    })
                    .collect();
                // Joining in spawn order keeps the concatenation deterministic.
                for handle in handles {
                    rho.extend(handle.join().expect("rotation worker panicked"));
                }
            });
            SpreadSpectrum::from_rho(rho)
        }
    });
    finish_spectrum_span(spectrum, timed)
}

/// One worker's share of the rotation loop, wrapped in a `cpa.rotate`
/// span so per-chunk wall time (and thus thread imbalance) is visible.
fn rotate_chunk(
    inputs: &SpectrumInputs<'_>,
    soa: &SoaInputs,
    worker: usize,
    start: usize,
    end: usize,
) -> Vec<f64> {
    let span = clockmark_obs::span("cpa.rotate")
        .field("worker", worker)
        .field("start", start)
        .field("end", end);
    let timed = span.is_recording().then(std::time::Instant::now);
    let rho = soa.rho_range(inputs, start..end);
    if let Some(t0) = timed {
        clockmark_obs::observe("cpa.chunk_seconds", t0.elapsed().as_secs_f64());
    }
    rho
}

/// The FFT O(P log P) kernel: one packed circular correlation for the
/// whole spectrum, then exact refinement of the peak candidates. The
/// transform itself is serial (it is a single O(P log P) pass); when
/// `threads > 1` the *refinement* is what gets partitioned.
pub(crate) fn spectrum_fft(inputs: &SpectrumInputs<'_>, threads: usize) -> SpreadSpectrum {
    let period = inputs.period();
    let span = clockmark_obs::span("cpa.spread_spectrum")
        .field("algo", CpaAlgo::Fft.as_str())
        .field("period", period)
        .field("work", inputs.work())
        .field("threads", threads);
    let timed = span.is_recording().then(std::time::Instant::now);

    let mut rho = FFT_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let FftScratch { m_f64, sxy, sx } = &mut *scratch;
        m_f64.clear();
        m_f64.extend(inputs.m.iter().map(|&v| v as f64));
        sxy.clear();
        sxy.resize(period, 0.0);
        sx.clear();
        sx.resize(period, 0.0);
        with_cached_correlator(period, inputs.ones, |correlator| {
            let exec = clockmark_obs::span("cpa.fft.exec").field("period", period);
            let exec_timed = exec.is_recording().then(std::time::Instant::now);
            correlator
                .correlate_dual(inputs.c, m_f64, sxy, sx)
                .expect("fold buffers share the correlator length by construction");
            if let Some(t0) = exec_timed {
                clockmark_obs::observe("cpa.fft.exec_seconds", t0.elapsed().as_secs_f64());
            }
        });
        rho_from_correlations(inputs, sxy, sx)
    });
    refine_exactly(inputs, &mut rho, threads);
    finish_spectrum_span(SpreadSpectrum::from_rho(rho), timed)
}

/// Approximate ρ for every rotation from the circular-correlation sums.
/// `sx[r]` is a sum of integer counts, so rounding strips the FFT noise
/// from it entirely; only `sxy` carries residual error into ρ. Shared by
/// [`spectrum_fft`] and the batched identification path, which must
/// round and combine with exactly the same arithmetic.
pub(crate) fn rho_from_correlations(
    inputs: &SpectrumInputs<'_>,
    sxy: &[f64],
    sx: &[f64],
) -> Vec<f64> {
    (0..inputs.period())
        .map(|r| {
            let sxr = sx[r].round();
            correlation_from_sums(inputs.nf, sxr, inputs.sy, sxr, inputs.syy, sxy[r])
        })
        .collect()
}

/// Recomputes every peak-candidate rotation with the folded arithmetic,
/// in place. Candidates are all rotations within [`REFINE_EPS`] of the
/// approximate |ρ| maximum or of the approximate signed maximum, plus the
/// [`REFINE_TOP_K`] largest magnitudes; each candidate's refined value is
/// a pure function of the rotation index, so any partition across
/// `threads` yields the same spectrum.
pub(crate) fn refine_exactly(inputs: &SpectrumInputs<'_>, rho: &mut [f64], threads: usize) {
    let candidates = refinement_candidates(rho);
    let span = clockmark_obs::span("cpa.refine")
        .field("candidates", candidates.len())
        .field("threads", threads);
    let timed = span.is_recording().then(std::time::Instant::now);

    let threads = threads.clamp(1, candidates.len().max(1));
    let exact: Vec<f64> = if threads > 1 {
        let chunk = candidates.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(|&r| inputs.rho_at(r)).collect()))
                .collect();
            let mut exact: Vec<f64> = Vec::with_capacity(candidates.len());
            for handle in handles {
                let part: Vec<f64> = handle.join().expect("refine worker panicked");
                exact.extend(part);
            }
            exact
        })
    } else {
        candidates.iter().map(|&r| inputs.rho_at(r)).collect()
    };
    for (&r, &value) in candidates.iter().zip(&exact) {
        rho[r] = value;
    }
    if let Some(t0) = timed {
        clockmark_obs::observe("cpa.refine_seconds", t0.elapsed().as_secs_f64());
    }
}

/// The rotations whose approximate ρ could plausibly be (or tie) the
/// exact peak, sorted and deduplicated.
fn refinement_candidates(rho: &[f64]) -> Vec<usize> {
    let max_abs = rho.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    let max_signed = rho.iter().fold(f64::NEG_INFINITY, |acc, &v| acc.max(v));
    let mut candidates: Vec<usize> = (0..rho.len())
        .filter(|&r| rho[r].abs() >= max_abs - REFINE_EPS || rho[r] >= max_signed - REFINE_EPS)
        .collect();
    let mut by_abs: Vec<usize> = (0..rho.len()).collect();
    by_abs.sort_by(|&a, &b| rho[b].abs().total_cmp(&rho[a].abs()));
    candidates.extend(by_abs.into_iter().take(REFINE_TOP_K));
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Shared span/metrics tail of both kernels.
fn finish_spectrum_span(
    spectrum: SpreadSpectrum,
    timed: Option<std::time::Instant>,
) -> SpreadSpectrum {
    let period = spectrum.period();
    clockmark_obs::counter_add("cpa.rotations", period as u64);
    if clockmark_obs::enabled() {
        clockmark_obs::gauge_set("cpa.peak_rho_abs", spectrum.peak_abs().1.abs());
    }
    if let Some(t0) = timed {
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            clockmark_obs::gauge_set("cpa.rotations_per_sec", period as f64 / secs);
        }
    }
    spectrum
}

/// A per-thread `(period, ones)`-keyed cache of the last correlator, so
/// repeated spectra against the same watermark — the campaign and
/// streaming hot path — pay the FFT plan and the reference transform
/// once per worker thread instead of once per call.
struct CachedCorrelator {
    period: usize,
    ones: Vec<usize>,
    correlator: CircularCorrelator,
}

thread_local! {
    static CORRELATOR_CACHE: RefCell<Option<CachedCorrelator>> = const { RefCell::new(None) };

    /// Per-thread FFT-path scratch (`m` as f64, the two correlation
    /// outputs), so repeated spectra — the sequential checkpoint loop —
    /// run the transform allocation-free after the first call.
    static FFT_SCRATCH: RefCell<FftScratch> = const {
        RefCell::new(FftScratch {
            m_f64: Vec::new(),
            sxy: Vec::new(),
            sx: Vec::new(),
        })
    };

    /// Per-thread doubled-array scratch for the folded kernel.
    static SOA_SCRATCH: RefCell<SoaInputs> = const {
        RefCell::new(SoaInputs {
            c2: Vec::new(),
            m2: Vec::new(),
        })
    };
}

struct FftScratch {
    m_f64: Vec<f64>,
    sxy: Vec<f64>,
    sx: Vec<f64>,
}

fn with_cached_correlator<R>(
    period: usize,
    ones: &[usize],
    f: impl FnOnce(&mut CircularCorrelator) -> R,
) -> R {
    CORRELATOR_CACHE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let plan_hit = slot.as_ref().is_some_and(|cached| cached.period == period);
        let full_hit = plan_hit && slot.as_ref().is_some_and(|cached| cached.ones == ones);
        if !full_hit {
            let span = clockmark_obs::span("cpa.fft.plan")
                .field("period", period)
                .field("ones", ones.len())
                .field("plan_reused", plan_hit);
            let plan_timed = span.is_recording().then(std::time::Instant::now);
            // A same-period cache with a different pattern keeps its FFT
            // plan (twiddles + scratch) and only re-transforms the new
            // reference — one forward FFT instead of a full plan build.
            // This is what makes per-candidate spectra in the batched
            // identification path cheap.
            let mut cached = match slot.take() {
                Some(cached) if plan_hit => cached,
                _ => CachedCorrelator {
                    period,
                    ones: Vec::new(),
                    correlator: CircularCorrelator::new(period)
                        .expect("validated patterns have period >= 2, so the plan is non-empty"),
                },
            };
            let mut indicator = vec![0.0f64; period];
            for &j in ones {
                indicator[j] = 1.0;
            }
            cached.correlator.set_reference(&indicator);
            cached.ones.clear();
            cached.ones.extend_from_slice(ones);
            if let Some(t0) = plan_timed {
                clockmark_obs::observe("cpa.fft.plan_seconds", t0.elapsed().as_secs_f64());
            }
            *slot = Some(cached);
        }
        f(&mut slot.as_mut().expect("cache populated above").correlator)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn inputs_for<'a>(
        pattern: &[bool],
        y: &[f64],
        c: &'a mut Vec<f64>,
        m: &'a mut Vec<u64>,
        ones: &'a mut Vec<usize>,
    ) -> SpectrumInputs<'a> {
        let period = pattern.len();
        c.resize(period, 0.0);
        m.resize(period, 0);
        for (i, &yi) in y.iter().enumerate() {
            c[i % period] += yi;
            m[i % period] += 1;
        }
        *ones = (0..period).filter(|&j| pattern[j]).collect();
        SpectrumInputs {
            nf: y.len() as f64,
            sy: y.iter().sum(),
            syy: y.iter().map(|v| v * v).sum(),
            c,
            m,
            ones,
        }
    }

    #[test]
    fn fft_kernel_matches_folded_within_fft_noise() {
        let pattern: Vec<bool> = (0..97).map(|i| (i * 7) % 13 < 6).collect();
        let y: Vec<f64> = (0..1000)
            .map(|i| {
                let wm = if pattern[(i + 31) % 97] { 0.7 } else { 0.0 };
                wm + ((i * 2654435761usize) % 1000) as f64 / 250.0
            })
            .collect();
        let (mut c, mut m, mut ones) = (Vec::new(), Vec::new(), Vec::new());
        let inputs = inputs_for(&pattern, &y, &mut c, &mut m, &mut ones);
        let folded = spectrum_folded(&inputs, 1);
        let fft = spectrum_fft(&inputs, 1);
        for (a, b) in folded.rho().iter().zip(fft.rho()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // The refined peak is not merely close — it is the same bits.
        assert_eq!(folded.peak_abs().0, fft.peak_abs().0);
        assert_eq!(folded.peak_abs().1.to_bits(), fft.peak_abs().1.to_bits());
        assert_eq!(folded.peak().0, fft.peak().0);
        assert_eq!(folded.peak().1.to_bits(), fft.peak().1.to_bits());
    }

    #[test]
    fn fft_refinement_is_thread_count_invariant() {
        let pattern: Vec<bool> = (0..64).map(|i| i % 3 != 0).collect();
        let y: Vec<f64> = (0..640).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let (mut c, mut m, mut ones) = (Vec::new(), Vec::new(), Vec::new());
        let inputs = inputs_for(&pattern, &y, &mut c, &mut m, &mut ones);
        let serial = spectrum_fft(&inputs, 1);
        for threads in [2, 3, 8, 100] {
            let parallel = spectrum_fft(&inputs, threads);
            assert_eq!(serial.rho(), parallel.rho(), "threads = {threads}");
        }
    }

    #[test]
    fn degenerate_trace_stays_exactly_zero_under_fft() {
        // Constant y → zero variance → every ρ must be exactly 0.0, even
        // though the FFT smears tiny noise into the numerator sums: the
        // variance guard fires on the exact, rotation-invariant Σy/Σy².
        let pattern: Vec<bool> = (0..31).map(|i| i % 2 == 0).collect();
        let y = vec![3.25; 310];
        let (mut c, mut m, mut ones) = (Vec::new(), Vec::new(), Vec::new());
        let inputs = inputs_for(&pattern, &y, &mut c, &mut m, &mut ones);
        let fft = spectrum_fft(&inputs, 2);
        assert!(fft.is_degenerate());
    }

    #[test]
    fn soa_rho_is_bit_identical_to_the_scalar_reference() {
        let pattern: Vec<bool> = (0..97).map(|i| (i * 11) % 17 < 8).collect();
        let y: Vec<f64> = (0..977)
            .map(|i| ((i * 2654435761usize) % 2000) as f64 / 500.0 - 2.0)
            .collect();
        let (mut c, mut m, mut ones) = (Vec::new(), Vec::new(), Vec::new());
        let inputs = inputs_for(&pattern, &y, &mut c, &mut m, &mut ones);
        let soa = SoaInputs::new(&inputs);
        for r in 0..inputs.period() {
            assert_eq!(
                soa.rho_at(&inputs, r).to_bits(),
                inputs.rho_at(r).to_bits(),
                "rotation {r}"
            );
        }
    }

    proptest! {
        /// The chunked-SoA spectrum is bit-identical to the scalar
        /// `rho_at` reference for every kernel and thread count — the
        /// guarantee the byte-compared campaign reports rest on. (The
        /// FFT kernel's guarantee is peak-exactness; its full spectrum
        /// is compared at the refined candidates.)
        #[test]
        fn soa_spectrum_is_bit_identical_for_every_algo_and_thread_count(
            period in 3usize..80,
            len_mult in 2usize..9,
            phase in 0usize..79,
            threads in 1usize..9,
        ) {
            let pattern: Vec<bool> = (0..period).map(|i| (i * 13) % 7 < 3).collect();
            prop_assume!(pattern.iter().any(|&b| b) && pattern.iter().any(|&b| !b));
            let y: Vec<f64> = (0..period * len_mult + 1)
                .map(|i| {
                    let wm = if pattern[(i + phase) % period] { 0.6 } else { 0.0 };
                    wm + ((i * 2654435761usize) % 1000) as f64 * 0.002
                })
                .collect();
            let (mut c, mut m, mut ones) = (Vec::new(), Vec::new(), Vec::new());
            let inputs = inputs_for(&pattern, &y, &mut c, &mut m, &mut ones);
            let reference: Vec<f64> = (0..period).map(|r| inputs.rho_at(r)).collect();

            let folded = spectrum_folded(&inputs, threads);
            for (r, (a, b)) in folded.rho().iter().zip(&reference).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "folded, rotation {}", r);
            }
            let fft = spectrum_fft(&inputs, threads);
            prop_assert_eq!(fft.peak_abs().0, folded.peak_abs().0);
            prop_assert_eq!(
                fft.peak_abs().1.to_bits(),
                folded.peak_abs().1.to_bits()
            );
            prop_assert_eq!(fft.peak().1.to_bits(), folded.peak().1.to_bits());
        }
    }

    #[test]
    fn candidate_selection_keeps_ties_and_near_ties() {
        let rho = [0.1, 0.9, -0.9, 0.9 - 1e-7, 0.0];
        let candidates = refinement_candidates(&rho);
        // Everything is a candidate here (tiny spectrum, top-K covers it),
        // but the near-tie logic must specifically keep 1, 2 and 3.
        assert!(candidates.contains(&1));
        assert!(candidates.contains(&2));
        assert!(candidates.contains(&3));
    }
}
