//! The chunked struct-of-arrays fold kernel shared by the batch fold
//! ([`FoldedTrace`](crate::rotational::FoldedTrace)) and the streaming
//! fold ([`StreamingCpa`](crate::StreamingCpa)).
//!
//! # Layout and bit-identity
//!
//! The fold maintains four accumulators: per-residue sums `c[k]`,
//! per-residue counts `m[k]`, and the global `Σy` / `Σy²`. The reference
//! formulation is a single fused loop carrying a wrapping residue index —
//! one load/store pair per accumulator per sample, with a loop-carried
//! wrap branch that defeats autovectorization.
//!
//! This kernel restructures the same arithmetic into struct-of-arrays
//! mini-passes without changing a single rounding step:
//!
//! - **Global sums** accumulate in strict trace order, exactly like the
//!   fused loop. Each of `Σy` and `Σy²` is its own dependency chain, so
//!   splitting them out of the fused loop reorders nothing; the 4-lane
//!   unroll keeps a *single* accumulator per sum, so the addition order
//!   is untouched (splitting into per-lane partial sums would change the
//!   rounding and thus the persisted checkpoint bits).
//! - **Per-residue sums** are updated period-block-wise: after a scalar
//!   head aligns the residue index to 0, every full period-length block
//!   of samples maps 1:1 onto the residues (`c[j] += block[j]`), which is
//!   a pure elementwise add the compiler vectorizes. Each `c[k]` still
//!   receives exactly the samples `y[i]` with `i ≡ k (mod period)` in
//!   increasing `i` — the same values in the same order as the fused
//!   loop, hence the same bits.
//! - **Per-residue counts** are integers; adding the whole-block count in
//!   one go is exact.
//!
//! The two mini-passes are interleaved at a cache-block granularity
//! (~32 KiB of samples): each group of whole periods gets its
//! vectorized `c[j] += block[j]` sweep immediately followed by its
//! serial `Σy`/`Σy²` sweep while the group is still L1/L2-resident.
//! Running the two passes over the *entire* chunk instead (the first
//! shape this kernel shipped with) streams a large chunk from DRAM
//! twice and loses to the fused loop on memory bandwidth. Blocking only
//! changes *when* each mini-pass runs, not the order of additions
//! within either dependency chain, so the bits are unchanged.
//!
//! The net effect: checkpointed [`StreamingCpaState`] snapshots, resumed
//! campaigns, and every ρ value derived from the fold are bit-identical
//! to the scalar formulation (pinned by proptests in this module and in
//! `streaming.rs`/`rotational.rs`).
//!
//! [`StreamingCpaState`]: crate::StreamingCpaState

/// Folds `ys` into the accumulators, starting at residue `start`,
/// returning the residue index the *next* sample would land on.
///
/// `c` and `m` must both have `period` elements and `start < period`.
/// Bit-identical to the fused scalar wrap loop (see the module docs).
pub(crate) fn fold_samples(
    c: &mut [f64],
    m: &mut [u64],
    sum_y: &mut f64,
    sum_yy: &mut f64,
    start: usize,
    ys: &[f64],
) -> usize {
    let period = c.len();
    debug_assert_eq!(m.len(), period);
    debug_assert!(start < period);

    let mut sy = *sum_y;
    let mut syy = *sum_yy;
    let mut k = start;
    let mut rest = ys;

    // Scalar head until the residue index wraps to 0, fully fused.
    if k != 0 {
        let head = (period - k).min(rest.len());
        for &y in &rest[..head] {
            c[k] += y;
            m[k] += 1;
            sy += y;
            syy += y * y;
            k += 1;
        }
        if k == period {
            k = 0;
        }
        rest = &rest[head..];
    }
    debug_assert!(rest.is_empty() || k == 0);

    // Middle: whole-period blocks, cache-blocked. Each ~32 KiB group of
    // samples gets the vectorized per-residue sweep and then the serial
    // global-sum sweep while still cache-resident, so the chunk is
    // streamed from memory once, not twice.
    const BLOCK_SAMPLES: usize = (32 << 10) / std::mem::size_of::<f64>();
    let blocks = rest.len() / period;
    if blocks > 0 {
        let (full, tail) = rest.split_at(blocks * period);
        let group_len = (BLOCK_SAMPLES / period).max(1) * period;
        for group in full.chunks(group_len) {
            for block in group.chunks_exact(period) {
                let mut j = 0;
                while j + 4 <= period {
                    c[j] += block[j];
                    c[j + 1] += block[j + 1];
                    c[j + 2] += block[j + 2];
                    c[j + 3] += block[j + 3];
                    j += 4;
                }
                while j < period {
                    c[j] += block[j];
                    j += 1;
                }
            }
            // Global sums in strict trace order. One accumulator per
            // sum — the unroll shortens the loop, it must not fan out
            // into per-lane partials (that would reassociate the
            // additions and change the persisted checkpoint bits).
            let mut quads = group.chunks_exact(4);
            for q in quads.by_ref() {
                sy += q[0];
                syy += q[0] * q[0];
                sy += q[1];
                syy += q[1] * q[1];
                sy += q[2];
                syy += q[2] * q[2];
                sy += q[3];
                syy += q[3] * q[3];
            }
            for &y in quads.remainder() {
                sy += y;
                syy += y * y;
            }
        }
        let whole = blocks as u64;
        for count in m.iter_mut() {
            *count += whole;
        }
        rest = tail;
    }

    // Scalar tail, fully fused.
    for &y in rest {
        c[k] += y;
        m[k] += 1;
        sy += y;
        syy += y * y;
        k += 1;
    }
    if k == period {
        k = 0;
    }
    *sum_y = sy;
    *sum_yy = syy;
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The reference formulation: the fused scalar wrap loop this kernel
    /// replaced.
    fn fold_reference(
        c: &mut [f64],
        m: &mut [u64],
        sum_y: &mut f64,
        sum_yy: &mut f64,
        start: usize,
        ys: &[f64],
    ) -> usize {
        let period = c.len();
        let mut k = start;
        for &y in ys {
            c[k] += y;
            m[k] += 1;
            *sum_y += y;
            *sum_yy += y * y;
            k += 1;
            if k == period {
                k = 0;
            }
        }
        k
    }

    proptest! {
        /// The SoA kernel is bit-identical to the fused scalar loop for
        /// every period, starting residue, chunk split, and odd tail.
        #[test]
        fn soa_fold_is_bit_identical_to_the_fused_loop(
            period in 2usize..65,
            start_offset in 0usize..64,
            ys in proptest::collection::vec(-1.0e3f64..1.0e3, 0..700),
            splits in proptest::collection::vec(1usize..97, 1..8),
        ) {
            let start = start_offset % period;
            let mut c_ref = vec![0.1f64; period];
            let mut m_ref = vec![3u64; period];
            let (mut sy_ref, mut syy_ref) = (0.25f64, 0.75f64);
            let k_ref = fold_reference(
                &mut c_ref, &mut m_ref, &mut sy_ref, &mut syy_ref, start, &ys,
            );

            // Feed the SoA kernel the same samples, re-chunked at
            // arbitrary boundaries (chunk boundaries must not matter).
            let mut c = vec![0.1f64; period];
            let mut m = vec![3u64; period];
            let (mut sy, mut syy) = (0.25f64, 0.75f64);
            let mut k = start;
            let mut fed = 0usize;
            for &s in &splits {
                if fed >= ys.len() {
                    break;
                }
                let end = (fed + s).min(ys.len());
                k = fold_samples(&mut c, &mut m, &mut sy, &mut syy, k, &ys[fed..end]);
                fed = end;
            }
            if fed < ys.len() {
                k = fold_samples(&mut c, &mut m, &mut sy, &mut syy, k, &ys[fed..]);
            }

            prop_assert_eq!(k, k_ref);
            prop_assert_eq!(sy.to_bits(), sy_ref.to_bits());
            prop_assert_eq!(syy.to_bits(), syy_ref.to_bits());
            prop_assert_eq!(&m, &m_ref);
            for (i, (a, b)) in c.iter().zip(&c_ref).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "c[{}]", i);
            }
        }
    }
}
