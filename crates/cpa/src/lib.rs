//! Correlation power analysis (CPA) for watermark detection.
//!
//! Implements the detection side of Kufel et al. (DATE 2014): the IP vendor
//! knows the watermark sequence (the *model vector* `X`, one period of the
//! WGC output) and records the device's per-clock-cycle power (`Y`, each
//! value the average of the oscilloscope samples within one cycle). Because
//! the phase between the two is unknown, `X` is rotated one cycle at a time
//! and the Pearson correlation coefficient recomputed — producing the
//! *spread spectrum* of Fig. 5. A watermark is detected when a single
//! significant peak resolves.
//!
//! Three kernels are provided and tested against each other (see
//! [`CpaAlgo`]):
//!
//! - the naive textbook O(N·P) loop, kept as the reference
//!   (`DetectOptions::with_algo(CpaAlgo::Naive)`);
//! - the folded O(N + P·W) kernel (`W` = ones per period) exploiting the
//!   periodicity of `X`, which makes the paper-scale problem
//!   (N = 300,000, P = 4,095) interactive;
//! - the FFT O(N + P log P) kernel, which computes both rotation-dependent
//!   sums as circular cross-correlations against the pattern's
//!   ones-indicator and then *exactly refines* the peak candidates with
//!   the folded arithmetic, so its reported peak is bit-identical to the
//!   folded kernel's (`docs/cpa-fft.md` has the derivation).
//!
//! The [`Detector`] facade is the single entry point: a validated pattern
//! plus [`DetectOptions`] (kernel, threading, decision criterion), with
//! batch ([`Detector::detect`]), streaming
//! ([`Detector::detect_streaming`]) and chunked-reader
//! ([`Detector::detect_trace`]) query paths that share one fold and are
//! bit-identical for the same samples. The kernel resolves automatically
//! (override with the `CLOCKMARK_CPA_ALGO` environment variable or pin it
//! via [`DetectOptions::with_algo`]).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use clockmark_cpa::Detector;
//! use clockmark_seq::{Lfsr, SequenceGenerator};
//!
//! // One period of a 6-bit m-sequence, tiled into a measurement starting
//! // 17 cycles into the period, with a deterministic "noise" ramp on top.
//! let mut wgc = Lfsr::maximal(6)?;
//! let pattern: Vec<bool> = (0..63).map(|_| wgc.next_bit()).collect();
//! let y: Vec<f64> = (0..630)
//!     .map(|i| if pattern[(i + 17) % 63] { 1.0 } else { 0.0 } + (i % 7) as f64 * 0.01)
//!     .collect();
//!
//! let detection = Detector::new(&pattern)?.detect(&y)?;
//! assert!(detection.detected);
//! assert_eq!(detection.peak_rotation, 17);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod detect;
mod detector;
mod error;
mod fold;
mod identify;
mod kernel;
mod parallel;
mod pearson;
mod rotational;
mod sequential;
mod significance;
mod stats;
mod streaming;

pub use algo::{algo_override, CpaAlgo};
pub use detect::{DetectionCriterion, DetectionResult};
pub use detector::{
    DetectOptions, Detector, SliceInput, StreamingDetection, TraceDetection, TraceInput,
    TraceInputError,
};
pub use error::CpaError;
pub use identify::{CandidatePattern, CandidateScore, Identification};
pub use parallel::thread_count;
pub use pearson::pearson;
pub use rotational::SpreadSpectrum;
pub use sequential::{
    SequentialCheckpoint, SequentialDetection, SequentialOptions, SequentialResult,
};
pub use significance::{normal_cdf, peak_false_positive_probability};
pub use stats::{BoxPlotStats, RotationEnsemble};
pub use streaming::{StreamingCpa, StreamingCpaState};
