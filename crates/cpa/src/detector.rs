//! The unified detection facade.
//!
//! Historically the crate grew four near-duplicate batch entry points
//! differing only in how they resolve the kernel and the thread count.
//! [`Detector`] collapses them into one object: a validated watermark
//! pattern plus a [`DetectOptions`] describing kernel, threading and
//! decision criterion. Every consumer — the experiment pipeline, the
//! campaign engine, the detection server and the CLI — routes through
//! it, so there is exactly one place where those choices are made; the
//! legacy free functions are gone.
//!
//! The options are pure resolution knobs, not alternative algorithms:
//! for every option combination the spectrum is **bit-identical** to the
//! default path's (a proptest at the bottom of this module pins that for
//! every [`CpaAlgo`] and for pinned thread counts).
//!
//! ```
//! # fn main() -> Result<(), clockmark_cpa::CpaError> {
//! use clockmark_cpa::{DetectOptions, Detector};
//!
//! let pattern = [true, false, true, true, false, false, true, false];
//! let y: Vec<f64> = (0..400)
//!     .map(|i| if pattern[(i + 3) % 8] { 1.0 } else { 0.0 } + (i % 5) as f64 * 0.1)
//!     .collect();
//!
//! let detector = Detector::new(&pattern)?;
//! let result = detector.detect(&y)?;
//! assert!(result.detected);
//! assert_eq!(result.peak_rotation, 3);
//!
//! // The same decision, streamed chunk by chunk.
//! let mut session = detector.detect_streaming();
//! for chunk in y.chunks(37) {
//!     session.push_chunk(chunk);
//! }
//! assert_eq!(session.result(), result);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use crate::rotational::{validate_inputs, FoldedTrace};
use crate::{
    CpaAlgo, CpaError, DetectionCriterion, DetectionResult, SpreadSpectrum, StreamingCpa,
    StreamingCpaState,
};

/// Samples read per [`TraceInput::next_chunk`] call in
/// [`Detector::detect_trace`]. Matches the corpus reader's natural chunk
/// granularity; the fold is bit-identical for any chunking.
const TRACE_CHUNK: usize = 8192;

/// How a [`Detector`] resolves its kernel, threading and decision rule.
///
/// The defaults reproduce the historical `spread_spectrum` behaviour
/// exactly: kernel from the `CLOCKMARK_CPA_ALGO` override else the work
/// heuristic, threads from [`thread_count`](crate::thread_count) once the
/// folded work justifies them, and the strict default
/// [`DetectionCriterion`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectOptions {
    /// Kernel pinned by the caller; `None` resolves per call (environment
    /// override, then work heuristic) — the semantics of the legacy
    /// `spread_spectrum`. The campaign engine pins the kernel recorded in
    /// its spec here so resumes replay the same arithmetic.
    pub algo: Option<CpaAlgo>,
    /// Worker threads for the batch spectrum; `None` auto-sizes (machine
    /// parallelism once the folded work passes the parallel threshold,
    /// serial below it), `Some(n)` pins the count like the legacy
    /// `spread_spectrum_parallel`. The spectrum is bit-identical for every
    /// value. Streaming sessions always run on the calling thread.
    pub threads: Option<usize>,
    /// The decision rule applied by [`Detector::detect`] and friends.
    pub criterion: DetectionCriterion,
}

impl DetectOptions {
    /// Returns the options with the kernel pinned.
    #[must_use]
    pub fn with_algo(mut self, algo: CpaAlgo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Returns the options with the batch thread count pinned.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the options with the decision criterion replaced.
    #[must_use]
    pub fn with_criterion(mut self, criterion: DetectionCriterion) -> Self {
        self.criterion = criterion;
        self
    }
}

/// The single entry point for watermark detection: a validated pattern
/// plus the [`DetectOptions`] every query uses.
///
/// Construct once, detect many times — against in-memory traces
/// ([`detect`](Self::detect)), incrementally arriving cycles
/// ([`detect_streaming`](Self::detect_streaming)) or chunked readers such
/// as corpus `.cmt` traces ([`detect_trace`](Self::detect_trace)). All
/// three paths share the same fold arithmetic, so their verdicts are
/// bit-identical for the same samples and options.
#[derive(Debug, Clone, PartialEq)]
pub struct Detector {
    pattern: Vec<bool>,
    options: DetectOptions,
}

impl Detector {
    /// Creates a detector with default [`DetectOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::TooShort`] for a pattern shorter than 2 and
    /// [`CpaError::ConstantPattern`] when the pattern has no variance.
    pub fn new(pattern: &[bool]) -> Result<Self, CpaError> {
        Self::with_options(pattern, DetectOptions::default())
    }

    /// Creates a detector with explicit options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn with_options(pattern: &[bool], options: DetectOptions) -> Result<Self, CpaError> {
        if pattern.len() < 2 {
            return Err(CpaError::TooShort { len: pattern.len() });
        }
        let ones = pattern.iter().filter(|&&b| b).count();
        if ones == 0 || ones == pattern.len() {
            return Err(CpaError::ConstantPattern);
        }
        Ok(Detector {
            pattern: pattern.to_vec(),
            options,
        })
    }

    /// One period of the watermark pattern.
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// The options every query of this detector uses.
    pub fn options(&self) -> &DetectOptions {
        &self.options
    }

    /// The decision criterion applied by the `detect*` methods.
    pub fn criterion(&self) -> &DetectionCriterion {
        &self.options.criterion
    }

    /// The kernel a query issued right now would run: the pinned option if
    /// set, else the `CLOCKMARK_CPA_ALGO` override, else the work
    /// heuristic for this pattern.
    pub fn resolved_algo(&self) -> CpaAlgo {
        self.options
            .algo
            .or_else(crate::algo::algo_override)
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&self.pattern))
    }

    /// Computes the full spread spectrum of a measured trace.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::TraceShorterThanPeriod`] when `y` holds fewer
    /// cycles than one watermark period.
    pub fn spectrum(&self, y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        validate_inputs(&self.pattern, y)?;
        let algo = self.resolved_algo();
        if algo == CpaAlgo::Naive {
            return Ok(crate::rotational::naive_spectrum(&self.pattern, y));
        }
        let folded = FoldedTrace::new(&self.pattern, y);
        let threads = match self.options.threads {
            Some(threads) => threads,
            None => {
                let threads = crate::thread_count();
                if threads > 1 && folded.work() >= crate::parallel::PARALLEL_WORK_THRESHOLD {
                    threads
                } else {
                    1
                }
            }
        };
        Ok(crate::kernel::spectrum_with_algo(
            &folded.as_inputs(),
            algo,
            threads,
        ))
    }

    /// Detects the watermark in an in-memory trace: the spectrum of
    /// [`spectrum`](Self::spectrum) judged by this detector's criterion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`spectrum`](Self::spectrum).
    pub fn detect(&self, y: &[f64]) -> Result<DetectionResult, CpaError> {
        Ok(self.spectrum(y)?.detect(&self.options.criterion))
    }

    /// Opens a streaming session: feed cycles as they arrive, query the
    /// verdict whenever you like. The session pins this detector's kernel
    /// choice and criterion; its fold is bit-identical to the batch path
    /// for the same samples.
    pub fn detect_streaming(&self) -> StreamingDetection {
        let mut inner =
            StreamingCpa::new(&self.pattern).expect("pattern validated at Detector construction");
        if let Some(algo) = self.options.algo {
            inner = inner.with_algo(algo);
        }
        StreamingDetection {
            inner,
            criterion: self.options.criterion,
        }
    }

    /// Re-opens a streaming session from a persisted fold snapshot — the
    /// campaign engine's checkpoint-resume path.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::InvalidState`] when the snapshot's pattern
    /// differs from this detector's, plus every validation error of
    /// [`StreamingCpa::from_state`].
    pub fn resume_streaming(
        &self,
        state: StreamingCpaState,
    ) -> Result<StreamingDetection, CpaError> {
        if state.pattern != self.pattern {
            return Err(CpaError::InvalidState {
                message: format!(
                    "snapshot pattern has period {} but the detector's has {}",
                    state.pattern.len(),
                    self.pattern.len()
                ),
            });
        }
        let mut inner = StreamingCpa::from_state(state)?;
        if let Some(algo) = self.options.algo {
            inner = inner.with_algo(algo);
        }
        Ok(StreamingDetection {
            inner,
            criterion: self.options.criterion,
        })
    }

    /// Opens a sequential early-termination session: a streaming fold
    /// driven by `options`' checkpoint schedule that stops consuming as
    /// soon as the acceptance rule fires (see
    /// [`SequentialOptions`](crate::SequentialOptions) for the rule and
    /// `docs/sequential.md` for the determinism contract). The session
    /// pins this detector's kernel choice and criterion.
    pub fn detect_sequential_streaming(
        &self,
        options: crate::SequentialOptions,
    ) -> crate::SequentialDetection {
        let mut inner =
            StreamingCpa::new(&self.pattern).expect("pattern validated at Detector construction");
        if let Some(algo) = self.options.algo {
            inner = inner.with_algo(algo);
        }
        crate::SequentialDetection::from_parts(inner, self.options.criterion, options)
    }

    /// Re-opens a sequential session from a persisted fold snapshot.
    /// The checkpoint schedule needs no extra state: it is a pure
    /// function of `options` and the absolute cycle count, so the
    /// restored session evaluates exactly the checkpoints an
    /// uninterrupted run would have from here on — the campaign
    /// engine's byte-identical-resume contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`resume_streaming`](Self::resume_streaming).
    pub fn resume_sequential(
        &self,
        state: StreamingCpaState,
        options: crate::SequentialOptions,
    ) -> Result<crate::SequentialDetection, CpaError> {
        let session = self.resume_streaming(state)?;
        Ok(crate::SequentialDetection::from_parts(
            session.inner,
            self.options.criterion,
            options,
        ))
    }

    /// Runs a sequential detection over an in-memory trace, consuming
    /// samples in 8192-cycle chunks until the session decides or the
    /// trace ends. When no early stop fires this is bit-identical
    /// to [`detect`](Self::detect) on the full trace (pinned by
    /// proptest); when one does, the verdict is bit-identical to
    /// `detect` on exactly the consumed prefix.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::TraceShorterThanPeriod`] when `y` holds fewer
    /// cycles than one watermark period.
    pub fn detect_sequential(
        &self,
        y: &[f64],
        options: crate::SequentialOptions,
    ) -> Result<crate::SequentialResult, CpaError> {
        validate_inputs(&self.pattern, y)?;
        let mut session = self.detect_sequential_streaming(options);
        for chunk in y.chunks(TRACE_CHUNK) {
            session.push_chunk(chunk);
            if session.decided() {
                break;
            }
        }
        Ok(session.finalize())
    }

    /// Scores many candidate patterns against one trace at once and
    /// ranks them by peak |ρ| — the "whose watermark is this?"
    /// identification workload. The trace is folded once (the fold
    /// depends only on the period) and the fold's transform is shared
    /// across candidates; every per-candidate
    /// [`DetectionResult`](crate::DetectionResult) is bit-identical to
    /// an independent [`detect`](Self::detect) with the same kernel.
    /// Candidates must match this detector's period.
    ///
    /// Threads follow [`DetectOptions::with_threads`] (candidates are
    /// partitioned; the bytes do not depend on the thread count).
    ///
    /// # Errors
    ///
    /// Trace validation as in [`spectrum`](Self::spectrum), plus
    /// [`CpaError::PeriodMismatch`] / [`CpaError::ConstantPattern`] /
    /// [`CpaError::InvalidState`] (empty list) for invalid candidates.
    pub fn identify(
        &self,
        y: &[f64],
        candidates: &[crate::CandidatePattern],
    ) -> Result<crate::Identification, CpaError> {
        validate_inputs(&self.pattern, y)?;
        let folded = FoldedTrace::new(&self.pattern, y);
        let inputs = folded.as_inputs();
        let threads = match self.options.threads {
            Some(threads) => threads,
            None => {
                let threads = crate::thread_count();
                if threads > 1 && inputs.work() >= crate::parallel::PARALLEL_WORK_THRESHOLD {
                    threads
                } else {
                    1
                }
            }
        };
        let algo = match self.resolved_algo() {
            // A fold retains no raw trace; Naive follows the streaming
            // precedent and evaluates with the folded arithmetic.
            CpaAlgo::Naive => CpaAlgo::Folded,
            algo => algo,
        };
        crate::identify::identify_over_fold(
            inputs.nf,
            inputs.sy,
            inputs.syy,
            inputs.c,
            inputs.m,
            y.len() as u64,
            candidates,
            &self.options.criterion,
            algo,
            threads,
        )
    }

    /// Detects the watermark in a chunked trace source — a corpus `.cmt`
    /// reader, a network stream, anything implementing [`TraceInput`] —
    /// without ever materialising the full trace in memory.
    ///
    /// Reads chunks until the source reports end-of-trace, then calls
    /// [`TraceInput::finish`] so sources with trailing integrity checks
    /// (the corpus reader's CRC footer) get to validate them before a
    /// verdict is produced.
    ///
    /// # Errors
    ///
    /// [`TraceInputError::Input`] wraps the source's own errors;
    /// [`TraceInputError::Cpa`] reports [`CpaError::InsufficientCycles`]
    /// when the source ended before one full watermark period.
    pub fn detect_trace<T: TraceInput>(
        &self,
        mut input: T,
    ) -> Result<TraceDetection, TraceInputError<T::Error>> {
        let mut session = self.detect_streaming();
        let mut buf = vec![0.0f64; TRACE_CHUNK];
        loop {
            let n = input.next_chunk(&mut buf).map_err(TraceInputError::Input)?;
            if n == 0 {
                break;
            }
            session.push_chunk(&buf[..n]);
        }
        input.finish().map_err(TraceInputError::Input)?;
        let spectrum = session.spectrum().map_err(TraceInputError::Cpa)?;
        Ok(TraceDetection {
            result: spectrum.detect(&self.options.criterion),
            cycles: session.cycles(),
        })
    }
}

/// A streaming detection session opened by
/// [`Detector::detect_streaming`]: a [`StreamingCpa`] fold pinned to the
/// detector's kernel choice, paired with its decision criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingDetection {
    inner: StreamingCpa,
    criterion: DetectionCriterion,
}

impl StreamingDetection {
    /// Feeds one measured cycle.
    pub fn push(&mut self, y: f64) {
        self.inner.push(y);
    }

    /// Bulk-ingests a chunk of cycles, bit-identical to per-cycle
    /// [`push`](Self::push).
    pub fn push_chunk(&mut self, ys: &[f64]) {
        self.inner.push_chunk(ys);
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.inner.period()
    }

    /// The current spread spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::InsufficientCycles`] until one full period has
    /// been consumed.
    pub fn spectrum(&self) -> Result<SpreadSpectrum, CpaError> {
        self.inner.spectrum()
    }

    /// The current verdict under the session's criterion. Before one full
    /// period has been consumed this conservatively reports
    /// "not detected".
    pub fn result(&self) -> DetectionResult {
        self.inner.detect(&self.criterion)
    }

    /// Scores many candidate patterns against this session's fold and
    /// ranks them — see [`Detector::identify`]. Candidates must match
    /// the session period; the session's pinned kernel and criterion
    /// apply, and candidates are partitioned across the configured
    /// thread count (the bytes do not depend on it).
    ///
    /// # Errors
    ///
    /// [`CpaError::InsufficientCycles`] before one full period, plus the
    /// candidate-validation errors of [`Detector::identify`].
    pub fn identify(
        &self,
        candidates: &[crate::CandidatePattern],
    ) -> Result<crate::Identification, CpaError> {
        let threads = crate::thread_count().max(1);
        self.inner.identify(candidates, &self.criterion, threads)
    }

    /// Snapshots the fold accumulators bit-exactly, for persistence;
    /// restore with [`Detector::resume_streaming`].
    pub fn state(&self) -> StreamingCpaState {
        self.inner.state()
    }

    /// Borrows the underlying fold.
    pub fn inner(&self) -> &StreamingCpa {
        &self.inner
    }

    /// Unwraps the underlying fold.
    pub fn into_inner(self) -> StreamingCpa {
        self.inner
    }
}

/// A chunked source of measured power samples, as consumed by
/// [`Detector::detect_trace`].
///
/// Implementations exist for the corpus `.cmt` reader (in
/// `clockmark-corpus`) and for in-memory slices via [`SliceInput`].
pub trait TraceInput {
    /// The source's own error type.
    type Error;

    /// Fills `buf` with the next samples, returning how many were
    /// written. `0` means end-of-trace; short reads are otherwise fine.
    ///
    /// # Errors
    ///
    /// Whatever the source reports — I/O failures, format corruption.
    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, Self::Error>;

    /// Called once after end-of-trace, before the verdict is computed —
    /// the hook for trailing integrity checks (CRC footers, length
    /// cross-checks). The default does nothing.
    ///
    /// # Errors
    ///
    /// Whatever the integrity check reports.
    fn finish(self) -> Result<(), Self::Error>
    where
        Self: Sized,
    {
        Ok(())
    }
}

/// [`TraceInput`] over an in-memory slice — the adapter that lets
/// [`Detector::detect_trace`] be exercised without a corpus on disk.
#[derive(Debug, Clone)]
pub struct SliceInput<'a> {
    samples: &'a [f64],
}

impl<'a> SliceInput<'a> {
    /// Wraps a slice of samples.
    pub fn new(samples: &'a [f64]) -> Self {
        SliceInput { samples }
    }
}

impl TraceInput for SliceInput<'_> {
    type Error = std::convert::Infallible;

    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, Self::Error> {
        let n = self.samples.len().min(buf.len());
        buf[..n].copy_from_slice(&self.samples[..n]);
        self.samples = &self.samples[n..];
        Ok(n)
    }
}

/// The verdict of [`Detector::detect_trace`], with the trace length the
/// decision was based on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceDetection {
    /// The detection decision.
    pub result: DetectionResult,
    /// Cycles the source produced.
    pub cycles: u64,
}

/// Error of [`Detector::detect_trace`]: either the analysis failed or the
/// trace source did.
#[derive(Debug)]
pub enum TraceInputError<E> {
    /// The correlation analysis failed (e.g. the trace ended before one
    /// watermark period).
    Cpa(CpaError),
    /// The trace source failed (I/O, corruption, failed integrity check).
    Input(E),
}

impl<E> From<CpaError> for TraceInputError<E> {
    fn from(e: CpaError) -> Self {
        TraceInputError::Cpa(e)
    }
}

impl<E: fmt::Display> fmt::Display for TraceInputError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceInputError::Cpa(e) => write!(f, "cpa: {e}"),
            TraceInputError::Input(e) => write!(f, "trace input: {e}"),
        }
    }
}

impl<E: Error + 'static> Error for TraceInputError<E> {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceInputError::Cpa(e) => Some(e),
            TraceInputError::Input(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(seed: u64, period: usize, n: usize) -> (Vec<bool>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pattern: Vec<bool> = (0..period).map(|_| rng.random_bool(0.5)).collect();
        pattern[0] = true;
        if pattern.iter().all(|&b| b) {
            pattern[1] = false;
        }
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let wm = if pattern[(i + 7) % period] { 0.6 } else { 0.0 };
                wm + rng.random_range(-2.0..2.0)
            })
            .collect();
        (pattern, y)
    }

    #[test]
    fn constructor_validates_the_pattern() {
        assert!(matches!(
            Detector::new(&[true]).unwrap_err(),
            CpaError::TooShort { len: 1 }
        ));
        assert_eq!(
            Detector::new(&[true, true]).unwrap_err(),
            CpaError::ConstantPattern
        );
        assert_eq!(
            Detector::new(&[false, false, false]).unwrap_err(),
            CpaError::ConstantPattern
        );
    }

    #[test]
    fn short_trace_is_rejected_at_query_time() {
        let detector = Detector::new(&[true, false, true, false]).expect("valid");
        assert_eq!(
            detector.detect(&[1.0, 2.0]).unwrap_err(),
            CpaError::TraceShorterThanPeriod { have: 2, need: 4 }
        );
    }

    #[test]
    fn batch_streaming_and_trace_paths_agree_bit_for_bit() {
        let (pattern, y) = random_case(11, 31, 1500);
        let detector = Detector::new(&pattern).expect("valid");

        let batch = detector.detect(&y).expect("valid");

        let mut session = detector.detect_streaming();
        for chunk in y.chunks(97) {
            session.push_chunk(chunk);
        }
        let streamed = session.result();

        let traced = detector.detect_trace(SliceInput::new(&y)).expect("valid");

        assert_eq!(batch.peak_rho.to_bits(), streamed.peak_rho.to_bits());
        assert_eq!(batch.zscore.to_bits(), streamed.zscore.to_bits());
        assert_eq!(batch, streamed);
        assert_eq!(batch, traced.result);
        assert_eq!(traced.cycles, y.len() as u64);
    }

    #[test]
    fn resume_streaming_round_trips_bit_exactly() {
        let (pattern, y) = random_case(12, 63, 4000);
        let detector = Detector::with_options(
            &pattern,
            DetectOptions::default().with_algo(CpaAlgo::Folded),
        )
        .expect("valid");

        let mut uninterrupted = detector.detect_streaming();
        uninterrupted.push_chunk(&y);

        let (head, tail) = y.split_at(1711);
        let mut first = detector.detect_streaming();
        first.push_chunk(head);
        let mut resumed = detector
            .resume_streaming(first.state())
            .expect("valid snapshot");
        resumed.push_chunk(tail);

        assert_eq!(uninterrupted, resumed);
        assert_eq!(uninterrupted.result(), resumed.result());
    }

    #[test]
    fn resume_streaming_rejects_foreign_snapshots() {
        let (pattern, y) = random_case(13, 31, 500);
        let detector = Detector::new(&pattern).expect("valid");
        let mut session = detector.detect_streaming();
        session.push_chunk(&y);

        let (other, _) = random_case(14, 63, 63);
        let foreign = Detector::new(&other).expect("valid");
        assert!(matches!(
            foreign.resume_streaming(session.state()).unwrap_err(),
            CpaError::InvalidState { .. }
        ));
    }

    #[test]
    fn detect_trace_propagates_source_failures() {
        struct Failing;
        #[derive(Debug, PartialEq)]
        struct Broken;
        impl TraceInput for Failing {
            type Error = Broken;
            fn next_chunk(&mut self, _buf: &mut [f64]) -> Result<usize, Broken> {
                Err(Broken)
            }
        }
        let detector = Detector::new(&[true, false, true]).expect("valid");
        assert!(matches!(
            detector.detect_trace(Failing).unwrap_err(),
            TraceInputError::Input(Broken)
        ));
    }

    #[test]
    fn detect_trace_rejects_sources_shorter_than_one_period() {
        let detector = Detector::new(&[true, false, true, false, true]).expect("valid");
        let short = [1.0, 2.0];
        assert!(matches!(
            detector.detect_trace(SliceInput::new(&short)).unwrap_err(),
            TraceInputError::Cpa(CpaError::InsufficientCycles { have: 2, need: 5 })
        ));
    }

    #[test]
    fn options_builders_compose() {
        let options = DetectOptions::default()
            .with_algo(CpaAlgo::Fft)
            .with_threads(3)
            .with_criterion(DetectionCriterion::lenient());
        assert_eq!(options.algo, Some(CpaAlgo::Fft));
        assert_eq!(options.threads, Some(3));
        assert_eq!(options.criterion, DetectionCriterion::lenient());
        let detector = Detector::with_options(&[true, false, true], options).expect("valid");
        assert_eq!(detector.resolved_algo(), CpaAlgo::Fft);
        assert_eq!(detector.criterion(), &DetectionCriterion::lenient());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite pin: the options are resolution knobs, not
        /// alternative algorithms. The default (auto-resolved) path is
        /// bit-identical to explicitly pinning the resolved kernel, and
        /// for every kernel a pinned thread count is bit-identical to
        /// the serial run.
        #[test]
        fn facade_options_are_bit_identical_to_the_default_path(
            seed in 0u64..10_000,
            period in 3usize..48,
            n_mult in 1usize..5,
            extra in 0usize..11,
            threads in 1usize..8,
        ) {
            let n = period * n_mult + extra.min(period - 1) + period;
            let (pattern, y) = random_case(seed, period, n);

            let assert_bits = |a: &SpreadSpectrum, b: &SpreadSpectrum| {
                prop_assert_eq!(a.period(), b.period());
                for (x, y) in a.rho().iter().zip(b.rho()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                Ok(())
            };

            // Default options ≡ explicitly pinning the resolved kernel.
            let default = Detector::new(&pattern).expect("valid");
            let resolved = default.resolved_algo();
            let reference = default.spectrum(&y).expect("valid");
            let pinned = Detector::with_options(
                &pattern,
                DetectOptions::default().with_algo(resolved),
            )
            .expect("valid")
            .spectrum(&y)
            .expect("valid");
            assert_bits(&pinned, &reference)?;

            // For every kernel, threading never changes the spectrum.
            for algo in CpaAlgo::ALL {
                let serial = Detector::with_options(
                    &pattern,
                    DetectOptions::default().with_algo(algo),
                )
                .expect("valid")
                .spectrum(&y)
                .expect("valid");
                let threaded = Detector::with_options(
                    &pattern,
                    DetectOptions::default().with_algo(algo).with_threads(threads),
                )
                .expect("valid")
                .spectrum(&y)
                .expect("valid");
                assert_bits(&threaded, &serial)?;
            }
        }
    }
}
